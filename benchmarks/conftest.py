"""Shared benchmark fixtures.

The Experiment (generation + parsing + checking of ~80K LOC across six
protocol categories) is built once per session; individual benchmarks
time their own stage against fresh inputs where that is what the paper's
number measures.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import Experiment


@pytest.fixture(scope="session")
def experiment() -> Experiment:
    exp = Experiment()
    exp.check()
    return exp


@pytest.fixture
def show(capsys):
    """Print to the real terminal even under pytest capture."""
    def _show(text: str) -> None:
        with capsys.disabled():
            print(text)
    return _show
