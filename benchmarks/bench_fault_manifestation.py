"""Fault injection closes the dynamic-coverage gap the paper leans on.

§9's argument for static checking is that failure paths — allocation
failure, lane backpressure — essentially never execute under ordinary
testing, so the bugs sitting on them stay latent.  This benchmark makes
that quantitative with the fault subsystem: the same buggy handlers run
**clean** under a plain simulated workload, while a seeded
:class:`FaultPlan` forces the failure paths and the bug classes
manifest.  It also measures what injection costs in wall time.

``FAULT_BENCH_MESSAGES`` shrinks the workload for CI smoke runs.
"""

import os

from repro.faults import FaultPlan, FaultRule
from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.project import program_from_source

MESSAGES = int(os.environ.get("FAULT_BENCH_MESSAGES", "4000"))

# Both handlers are §9-buggy *only on failure paths*: AllocNoCheck
# skips the DB_IS_ERROR check, Chatty has no headroom for backpressure.
SOURCES = """
void AllocNoCheck(void) {
    unsigned buf;
    unsigned v;
    DB_FREE();
    buf = DB_ALLOC();
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}

void Chatty(void) {
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}
"""

DISPATCH = {1: "AllocNoCheck", 2: "Chatty"}

PLAN = FaultPlan(
    rules=(
        FaultRule(site="alloc_fail", every=50),
        FaultRule(site="lane_overflow", after=100, every=97),
    ),
    seed=42,
)

#: bug class -> SimStats attribute that counts its manifestations
BUG_CLASSES = {
    "alloc-fail use-after-free": "use_after_free",
    "alloc-fail double-free": "double_frees",
    "lane overflow": "lane_overruns",
}


def _machine(fault_plan=None):
    prog = program_from_source(SOURCES)
    funcs = {f.name: f for f in prog.functions()}
    return FlashMachine(funcs, DISPATCH, fault_plan=fault_plan)


def _spec():
    return WorkloadSpec(messages=MESSAGES,
                        opcode_weights=((1, 1), (2, 1)))


def _manifested(stats):
    return [name for name, attr in BUG_CLASSES.items()
            if getattr(stats, attr) > 0]


def test_fault_manifestation(benchmark, show):
    baseline = _machine().run(_spec())
    assert baseline.clean, "seeded bugs must stay latent without faults"
    assert _manifested(baseline) == []

    stats = benchmark.pedantic(
        lambda: _machine(fault_plan=PLAN).run(_spec()),
        rounds=3, iterations=1,
    )

    manifested = _manifested(stats)
    assert set(manifested) == set(BUG_CLASSES), (
        f"only {manifested} manifested under the plan")
    assert not stats.clean
    assert stats.deadlock is None, "injection degrades, it must not kill"

    # Determinism: the whole point of a *seeded* plan.
    again = _machine(fault_plan=PLAN).run(_spec())
    assert (again.use_after_free, again.double_frees, again.lane_overruns) \
        == (stats.use_after_free, stats.double_frees, stats.lane_overruns)

    show(f"\n{MESSAGES} messages: 0/{len(BUG_CLASSES)} bug classes "
         f"manifest without faults, {len(manifested)}/{len(BUG_CLASSES)} "
         f"with the seeded plan ({stats.injected_faults} injections: "
         f"{stats.faults_by_site})")
    benchmark.extra_info["messages"] = MESSAGES
    benchmark.extra_info["bug_classes_baseline"] = 0
    benchmark.extra_info["bug_classes_injected"] = len(manifested)
    benchmark.extra_info["injected_faults"] = stats.injected_faults


def test_injection_overhead(benchmark, show):
    """A plan whose rules never fire: the cost of *checking* for faults."""
    idle_plan = FaultPlan(
        rules=(FaultRule(site="alloc_fail", handler="NoSuchHandler"),),
        seed=1,
    )
    import time

    start = time.perf_counter()
    _machine().run(_spec())
    plain_s = time.perf_counter() - start

    def instrumented():
        t0 = time.perf_counter()
        result = _machine(fault_plan=idle_plan).run(_spec())
        timings.append(time.perf_counter() - t0)
        return result

    timings = []
    stats = benchmark.pedantic(instrumented, rounds=3, iterations=1)
    assert stats.clean
    assert stats.injected_faults == 0

    injected_s = min(timings)
    overhead = injected_s / plain_s if plain_s else float("inf")
    show(f"\nidle-plan overhead: {overhead:.2f}x "
         f"({plain_s * 1000:.0f} ms plain vs "
         f"{injected_s * 1000:.0f} ms instrumented)")
    benchmark.extra_info["overhead_x"] = round(overhead, 2)
