"""Supervision overhead: the supervised pool priced against itself.

The supervisor (``repro.mc.supervisor``) adds machinery to every
parallel run — per-item dispatch over private pipes, watchdog polling,
and a fsynced journal append per completed item.  This benchmark
measures what that costs on the *fault-free* path, where the
machinery must be pure overhead: one protocol's sweep at ``jobs=2``
with no supervision extras versus the same sweep with the extras on
(run journal + an armed per-item watchdog).

The acceptance budget is **<= 5% added wall time** (with slack for
timer noise on small runs, asserted against the min-of-N timing).
Results land in ``BENCH_supervisor_overhead.json`` together with a
``metrics`` snapshot of one untimed observed sweep, so the overhead
number can be read next to the workload (items, engine work, reports).

Also runnable standalone:
``python benchmarks/bench_supervisor_overhead.py``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from _timing import (
    materialize_protocols,
    observed_snapshot,
    timed,
    write_results,
)

from repro.mc import RunJournal, SupervisorPolicy, check_files

PROTOCOL = "bitvector"
JOBS = 2
REPEATS = 3
OUTPUT = "BENCH_supervisor_overhead.json"
#: Allowed overhead of journal + watchdog on the fault-free path.
BUDGET = 0.05
#: Timer-noise floor: on sub-second sweeps a 5% band is smaller than
#: scheduler jitter, so the assertion uses max(5%, this many seconds).
NOISE_FLOOR_SECONDS = 0.25


def _timed_sweep(paths: list[str], *, journal_root: Path | None,
                 item_timeout: float | None) -> float:
    """One sweep's wall time (min over REPEATS, cache disabled)."""
    best = float("inf")
    for _ in range(REPEATS):
        journal = (RunJournal.create(journal_root)
                   if journal_root is not None else None)
        policy = (SupervisorPolicy(item_timeout=item_timeout)
                  if item_timeout is not None else None)
        elapsed, run = timed(
            lambda: check_files(paths, jobs=JOBS, keep_going=True,
                                journal=journal, policy=policy))
        best = min(best, elapsed)
        if journal is not None:
            journal.close()
        assert run.results, "no checker results"
        assert not run.interrupted
    return best


def run_benchmark(output: str = OUTPUT) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-supervisor-"))
    try:
        paths = materialize_protocols(workdir, (PROTOCOL,))[PROTOCOL]
        plain = _timed_sweep(paths, journal_root=None, item_timeout=None)
        supervised = _timed_sweep(paths, journal_root=workdir / "runs",
                                  item_timeout=600.0)
        metrics = observed_snapshot(
            lambda obs: check_files(paths, jobs=JOBS, keep_going=True,
                                    observation=obs))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    overhead = supervised - plain
    results = {
        "benchmark": "supervisor_overhead",
        "protocol": PROTOCOL,
        "jobs": JOBS,
        "repeats": REPEATS,
        "plain_seconds": round(plain, 4),
        "supervised_seconds": round(supervised, 4),
        "overhead_seconds": round(overhead, 4),
        "overhead_fraction": round(overhead / max(plain, 1e-9), 4),
        "budget_fraction": BUDGET,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
    }
    return write_results(output, results, metrics=metrics)


def test_supervisor_overhead(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))
    allowed = max(results["plain_seconds"] * BUDGET, NOISE_FLOOR_SECONDS)
    assert results["overhead_seconds"] <= allowed, (
        "journal + watchdog must cost <= 5% of the plain parallel run "
        f"(or the {NOISE_FLOOR_SECONDS}s noise floor): "
        f"{results['overhead_seconds']}s over {results['plain_seconds']}s")
    counters = results["metrics"]["counters"]
    assert counters.get("fleet.items", 0) > 0
    assert counters.get("reports.emitted", 0) == (
        counters.get("reports.errors", 0)
        + counters.get("reports.warnings", 0))


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
