"""Figure 2 — the published buffer-race metal checker, run verbatim.

The benchmark times compiling the published listing and applying it to
the bitvector protocol (where Table 2 reports its 4 errors).
"""

from repro.checkers.metal_sources import FIGURE_2
from repro.mc.engine import run_machine
from repro.metal import ReportSink, parse_metal


def test_fig2_runs_verbatim(experiment, benchmark, show):
    gp = experiment.generate()["bitvector"]
    program = gp.program()
    cfgs = program.cfgs()

    def compile_and_run():
        sm = parse_metal(FIGURE_2)
        sink = ReportSink()
        for cfg in cfgs:
            run_machine(sm, cfg, sink)
        return sink

    sink = benchmark.pedantic(compile_and_run, rounds=3, iterations=1)
    show(f"\nFigure 2 checker (verbatim): {len(sink)} diagnostics on "
         "bitvector (paper: 4 errors)")
    # The published listing (without the legacy-macro extension) finds
    # the same 4 seeded race errors.
    assert len(sink) == 4
    expected = {
        s.key for s in gp.sites_for("buffer-race") if s.expects_report
    }
    got = {(r.location.filename, r.location.line) for r in sink}
    assert got == expected
