"""Table 7 — the summary: every checker, every protocol, 34 bugs.

The timed section is the complete evaluation — all nine checkers over
all six protocol categories — which is the run Table 7 summarizes.
"""

from repro.bench.formatting import render_table
from repro.checkers import run_all


def test_table7_summary(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def full_evaluation():
        return [run_all(program) for program in programs]

    benchmark.pedantic(full_evaluation, rounds=1, iterations=1)
    table = experiment.table7()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    totals = table.row("total")
    assert totals["errors"].measured == 34
    assert totals["false_pos"].measured == 69
    assert totals["metal_loc"].measured == 553
    assert experiment.unmatched_reports() == 0
