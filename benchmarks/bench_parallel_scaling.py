"""Fleet and cache scaling: wall time at jobs x {cold, warm}.

Measures the full five-protocol sweep (the paper's evaluation corpus)
through ``check_files`` at ``jobs`` in {1, 2, 4}, cold (empty cache)
and warm (immediately rerun against the cache the cold run filled),
and writes ``BENCH_parallel_scaling.json`` next to the working
directory.  The JSON also carries a ``metrics`` snapshot (one observed
warm sweep: corpus size, reports emitted, cache traffic) so the timing
numbers can be read next to the work the sweep performs.

Two acceptance claims ride on these numbers:

* warm reruns are >= 5x faster than cold — a pure cache property,
  asserted unconditionally;
* ``--jobs 4`` cold is >= 2x faster than ``--jobs 1`` cold — a
  hardware property, asserted only when the runner actually has >= 4
  usable cores (``cpus`` is recorded in the JSON so a one-core
  container's numbers are not misread as a fleet regression).

Also runnable standalone: ``python benchmarks/bench_parallel_scaling.py``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from _timing import (
    materialize_protocols,
    observed_snapshot,
    timed,
    usable_cpus,
    write_results,
)

from repro.mc import ResultCache, check_files

PROTOCOLS = ("bitvector", "dyn_ptr", "sci", "coma", "rac")
JOB_COUNTS = (1, 2, 4)
OUTPUT = "BENCH_parallel_scaling.json"


def _timed_sweep(paths: dict[str, list[str]], jobs: int,
                 cache_root: Path | None) -> tuple[float, dict[str, float]]:
    per_protocol: dict[str, float] = {}
    for name, files in paths.items():
        cache = ResultCache(cache_root) if cache_root else None
        per_protocol[name], run = timed(
            lambda: check_files(files, jobs=jobs, cache=cache,
                                keep_going=True))
        assert run.results, f"{name}: no checker results"
    return sum(per_protocol.values()), per_protocol


def _observed_sweep(paths: dict[str, list[str]], cache_root: Path) -> dict:
    """Metrics for the whole corpus, against the warm jobs=1 cache —
    prices the workload (items, reports, cache hits) without re-running
    the engine."""
    merged: dict = {}
    for name, files in paths.items():
        snapshot = observed_snapshot(
            lambda obs: check_files(files, jobs=1,
                                    cache=ResultCache(cache_root),
                                    keep_going=True, observation=obs))
        for counter, value in snapshot["counters"].items():
            merged[counter] = merged.get(counter, 0) + value
    return {"schema": 1, "counters": dict(sorted(merged.items()))}


def run_benchmark(output: str = OUTPUT) -> dict:
    cpus = usable_cpus()
    workdir = Path(tempfile.mkdtemp(prefix="bench-parallel-"))
    results: dict = {
        "benchmark": "parallel_scaling",
        "cpus": cpus,
        "protocols": list(PROTOCOLS),
        "runs": [],
    }
    try:
        paths = materialize_protocols(workdir, PROTOCOLS)
        for jobs in JOB_COUNTS:
            cache_root = workdir / f"cache-jobs{jobs}"
            for phase in ("cold", "warm"):
                total, per_protocol = _timed_sweep(paths, jobs, cache_root)
                results["runs"].append({
                    "jobs": jobs,
                    "phase": phase,
                    "wall_seconds": round(total, 4),
                    "per_protocol_seconds": {
                        k: round(v, 4) for k, v in per_protocol.items()
                    },
                })
        metrics = _observed_sweep(paths, workdir / "cache-jobs1")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    by_key = {(r["jobs"], r["phase"]): r["wall_seconds"]
              for r in results["runs"]}
    results["warm_speedup_jobs1"] = round(
        by_key[(1, "cold")] / max(by_key[(1, "warm")], 1e-9), 2)
    results["parallel_speedup_cold_j4"] = round(
        by_key[(1, "cold")] / max(by_key[(4, "cold")], 1e-9), 2)
    return write_results(output, results, metrics=metrics)


def test_parallel_scaling(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))

    assert results["warm_speedup_jobs1"] >= 5.0, (
        "warm rerun must be >= 5x faster than cold: "
        f"{results['warm_speedup_jobs1']}x")
    if results["cpus"] >= 4:
        assert results["parallel_speedup_cold_j4"] >= 2.0, (
            "jobs=4 cold must be >= 2x faster than jobs=1 cold on a "
            f">=4-core machine: {results['parallel_speedup_cold_j4']}x")
    counters = results["metrics"]["counters"]
    assert counters.get("fleet.items", 0) > 0
    assert counters.get("cache.hits", 0) > 0, (
        "observed sweep ran against the warm cache; hits expected")


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
