"""Fleet and cache scaling: wall time at jobs x {cold, warm}.

Measures the full five-protocol sweep (the paper's evaluation corpus)
through ``check_files`` at ``jobs`` in {1, 2, 4}, cold (empty cache)
and warm (immediately rerun against the cache the cold run filled),
and writes ``BENCH_parallel_scaling.json`` next to the working
directory.

Two acceptance claims ride on these numbers:

* warm reruns are >= 5x faster than cold — a pure cache property,
  asserted unconditionally;
* ``--jobs 4`` cold is >= 2x faster than ``--jobs 1`` cold — a
  hardware property, asserted only when the runner actually has >= 4
  usable cores (``cpus`` is recorded in the JSON so a one-core
  container's numbers are not misread as a fleet regression).

Also runnable standalone: ``python benchmarks/bench_parallel_scaling.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.flash.codegen import generate_protocol
from repro.lang import clear_memo
from repro.mc import ResultCache, check_files

PROTOCOLS = ("bitvector", "dyn_ptr", "sci", "coma", "rac")
JOB_COUNTS = (1, 2, 4)
OUTPUT = "BENCH_parallel_scaling.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _materialize(workdir: Path) -> dict[str, list[str]]:
    """Write every protocol's sources to disk; paths per protocol."""
    paths: dict[str, list[str]] = {}
    for name in PROTOCOLS:
        pdir = workdir / name
        pdir.mkdir(parents=True)
        gp = generate_protocol(name)
        for filename, text in gp.files.items():
            (pdir / filename).write_text(text)
        paths[name] = sorted(str(pdir / f) for f in gp.files)
    return paths


def _timed_sweep(paths: dict[str, list[str]], jobs: int,
                 cache_root: Path | None) -> tuple[float, dict[str, float]]:
    # The per-process parse memo outlives check_files calls (and fork
    # workers inherit it); clear it so every sweep's "cold" is honest.
    clear_memo()
    per_protocol: dict[str, float] = {}
    for name, files in paths.items():
        cache = ResultCache(cache_root) if cache_root else None
        start = time.perf_counter()
        run = check_files(files, jobs=jobs, cache=cache, keep_going=True)
        per_protocol[name] = time.perf_counter() - start
        assert run.results, f"{name}: no checker results"
    return sum(per_protocol.values()), per_protocol


def run_benchmark(output: str = OUTPUT) -> dict:
    cpus = _usable_cpus()
    workdir = Path(tempfile.mkdtemp(prefix="bench-parallel-"))
    results: dict = {
        "benchmark": "parallel_scaling",
        "cpus": cpus,
        "protocols": list(PROTOCOLS),
        "runs": [],
    }
    try:
        paths = _materialize(workdir)
        for jobs in JOB_COUNTS:
            cache_root = workdir / f"cache-jobs{jobs}"
            for phase in ("cold", "warm"):
                total, per_protocol = _timed_sweep(paths, jobs, cache_root)
                results["runs"].append({
                    "jobs": jobs,
                    "phase": phase,
                    "wall_seconds": round(total, 4),
                    "per_protocol_seconds": {
                        k: round(v, 4) for k, v in per_protocol.items()
                    },
                })
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    by_key = {(r["jobs"], r["phase"]): r["wall_seconds"]
              for r in results["runs"]}
    results["warm_speedup_jobs1"] = round(
        by_key[(1, "cold")] / max(by_key[(1, "warm")], 1e-9), 2)
    results["parallel_speedup_cold_j4"] = round(
        by_key[(1, "cold")] / max(by_key[(4, "cold")], 1e-9), 2)
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_parallel_scaling(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))

    assert results["warm_speedup_jobs1"] >= 5.0, (
        "warm rerun must be >= 5x faster than cold: "
        f"{results['warm_speedup_jobs1']}x")
    if results["cpus"] >= 4:
        assert results["parallel_speedup_cold_j4"] >= 2.0, (
            "jobs=4 cold must be >= 2x faster than jobs=1 cold on a "
            f">=4-core machine: {results['parallel_speedup_cold_j4']}x")


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
