"""Ablation 2 — §7's fixed-point rule for send-free cycles.

"This simple modification completely eliminates all recursion based
false-positives."  The generated protocols each contain a send-free
recursive helper; with the fixed-point rule the lane checker emits no
cycle diagnostics for them, and disabling the rule (treating every
cycle as unboundable) would flag one per protocol.
"""

from repro.cfg.callgraph import CallGraph
from repro.cfg import emit_flowgraph
from repro.checkers import LaneChecker
from repro.checkers.lanes import annotate_lanes, summarize_lanes
from repro.mc.interproc import bottom_up


def _cycle_census(program):
    """(send-free cycles, sending cycles) in one protocol's call graph."""
    graphs = [
        emit_flowgraph(program.cfg(f), annotate=annotate_lanes)
        for f in program.functions()
    ]
    callgraph = CallGraph(graphs)
    sendfree, sending = 0, 0
    seen = set()

    def summarize(graph, summaries, cycle_peers):
        nonlocal sendfree, sending
        summary = summarize_lanes(graph, summaries, cycle_peers)
        if cycle_peers:
            key = frozenset(cycle_peers)
            if key not in seen:
                seen.add(key)
                if summary.sends_any:
                    sending += 1
                else:
                    sendfree += 1
        return summary

    bottom_up(callgraph, summarize)
    return sendfree, sending


def test_fixpoint_eliminates_recursion_false_positives(
        experiment, benchmark, show):
    programs = {name: gp.program()
                for name, gp in experiment.generate().items()}

    def census_all():
        return {name: _cycle_census(p) for name, p in programs.items()}

    census = benchmark.pedantic(census_all, rounds=1, iterations=1)
    total_sendfree = sum(sf for sf, _ in census.values())
    total_sending = sum(s for _, s in census.values())
    show(f"\nlane fixed-point ablation: {total_sendfree} send-free cycles "
         f"silently absorbed (would be {total_sendfree} false positives "
         f"without the rule); {total_sending} sending cycles (real warnings)")
    # Every protocol carries one send-free recursive helper by
    # construction, and the checker keeps all of them quiet.
    assert total_sendfree == len(programs)
    assert total_sending == 0

    for name, program in programs.items():
        result = LaneChecker().check(program)
        assert not any("cycle" in r.message for r in result.reports), name
