"""Ablation 1 — the engine's (block, state) cache vs. naive enumeration.

xgcc-style caching makes path-sensitive checking linear in practice;
without it the engine walks exponentially many paths.  Both engines are
run over the same branch-heavy functions with the Figure 2 machine and
must produce identical diagnostics; the benchmark reports the wall-clock
gap and the number of paths the naive engine had to walk.
"""

import time

import pytest

from repro.cfg import build_cfg
from repro.checkers.metal_sources import FIGURE_2
from repro.lang import annotate, parse
from repro.metal import ReportSink, parse_metal
from repro.mc.engine import run_machine, run_machine_naive


def _branchy_function(branches: int):
    body = "\n".join(
        f"if (c{i}) {{ t{i} = {i}; }}" for i in range(branches)
    )
    src = f"""
    void h(void) {{
        unsigned v;
        {body}
        v = MISCBUS_READ_DB(addr, 0);
    }}
    """
    unit = parse(src)
    annotate(unit)
    return build_cfg(unit.function("h"))


@pytest.mark.parametrize("branches", [8, 12, 16])
def test_cached_engine(benchmark, branches):
    cfg = _branchy_function(branches)

    def cached():
        sm = parse_metal(FIGURE_2)
        sink = ReportSink()
        run_machine(sm, cfg, sink)
        return sink

    sink = benchmark(cached)
    assert len(sink) == 1
    benchmark.extra_info["paths_in_function"] = 2 ** branches


@pytest.mark.parametrize("branches", [8, 12, 16])
def test_naive_engine(benchmark, branches):
    cfg = _branchy_function(branches)

    def naive():
        sm = parse_metal(FIGURE_2)
        sink = ReportSink()
        walked = run_machine_naive(sm, cfg, sink, max_paths=10 ** 7)
        return sink, walked

    (sink, walked) = benchmark.pedantic(naive, rounds=1, iterations=1)
    assert len(sink) == 1  # identical result, exponential cost
    assert walked >= 2 ** branches


def test_ablation_summary(show):
    rows = ["state-cache ablation (identical diagnostics, wall-clock):"]
    for branches in (8, 12, 16):
        cfg = _branchy_function(branches)
        sm = parse_metal(FIGURE_2)

        start = time.perf_counter()
        run_machine(sm, cfg, ReportSink())
        cached_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        walked = run_machine_naive(sm, cfg, ReportSink(), max_paths=10 ** 7)
        naive_ms = (time.perf_counter() - start) * 1000
        rows.append(
            f"  {branches:2d} branches ({walked:6d} paths): cached "
            f"{cached_ms:7.2f} ms, naive {naive_ms:9.2f} ms "
            f"({naive_ms / max(cached_ms, 0.001):7.1f}x)"
        )
    show("\n" + "\n".join(rows))
