"""§7 — the inter-procedural lane checker over all protocols.

The paper gives its results in prose: two serious bugs (one in dyn_ptr
from a hardware-bug workaround, one typo in bitvector), no false
positives, and zero recursion false positives thanks to the fixed-point
rule.  The timed section includes both passes: local flow-graph
emission and the global bottom-up traversal.
"""

from repro.bench.formatting import render_table
from repro.checkers import LaneChecker


def test_lanes_deadlock(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [LaneChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    table = experiment.table_lanes()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    errors = [r for result in results for r in result.errors]
    assert len(errors) == 2
    # Both reports carry the paper's "precise textual back traces".
    for report in errors:
        assert report.location.line > 0
