"""Table 1 — protocol size: LOC, path counts, path lengths.

Regenerates the paper's protocol-size table.  The timed section is the
path-statistics pass (CFG construction + DP path counting) over all six
protocol categories, i.e. the measurement the table reports.
"""

from repro.bench.formatting import render_table
from repro.cfg import path_stats


def test_table1_protocol_size(experiment, benchmark, show):
    protocols = experiment.generate()

    def measure():
        rows = {}
        for name, gp in protocols.items():
            prog = gp.program()
            stats = [path_stats(prog.cfg(f)) for f in prog.functions()]
            rows[name] = (
                gp.loc(),
                sum(s.path_count for s in stats),
                max(s.max_length for s in stats),
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    table = experiment.table1()
    show("\n" + render_table(table))

    for row in table.rows:
        for column in ("loc", "paths", "avg_path", "max_path"):
            cell = row[column]
            rel = abs(cell.measured - cell.paper) / max(cell.paper, 1)
            assert rel < 0.15, (row["label"], column, str(cell))
    benchmark.extra_info["total_paths"] = sum(r[1] for r in rows.values())
    benchmark.extra_info["total_loc"] = sum(r[0] for r in rows.values())
