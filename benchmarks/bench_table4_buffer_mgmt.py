"""Table 4 — the buffer management checker over all protocols."""

from repro.bench.formatting import render_table
from repro.checkers import BufferMgmtChecker


def test_table4_buffer_mgmt(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [BufferMgmtChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    table = experiment.table4()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    annotations = sum(len(r.annotations) for r in results)
    assert annotations == 18 + 25  # useful + useless in the paper
