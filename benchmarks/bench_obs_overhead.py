"""Observability overhead: the flight recorder priced against itself.

PR 4's contract is that observation is free to ignore and cheap to
carry: a run with ``--trace`` + ``--metrics-out`` must produce
**byte-identical reports** to a plain run, and the recording machinery
(span emission in every worker, per-worker trace files, the parent-side
merge, the metrics registry) must cost **<= 5% added wall time** on the
fault-free path (with a noise floor for sub-second sweeps, asserted
against min-of-N timings).

This benchmark measures both halves on one generated protocol at
``jobs=2``: the purity assertion is exact string equality of the
``run_to_json`` documents, the overhead gate is
``observed - plain <= max(plain * 5%, 0.3s)``.  Results land in
``BENCH_obs_overhead.json`` with a metrics snapshot and the ledger run
id that makes the artifact joinable against ``ledger.jsonl``.

Also runnable standalone: ``python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from _timing import (
    materialize_protocols,
    observed_snapshot,
    timed,
    write_results,
)

from repro.mc import check_files, run_to_json
from repro.obs import Observation

PROTOCOL = "bitvector"
JOBS = 2
REPEATS = 3
OUTPUT = "BENCH_obs_overhead.json"
#: Allowed overhead of full observation (trace + metrics) on a run.
BUDGET = 0.05
#: Timer-noise floor: on sub-second sweeps a 5% band is smaller than
#: scheduler jitter, so the assertion uses max(5%, this many seconds).
NOISE_FLOOR_SECONDS = 0.3


def _timed_sweep(paths: list[str], scratch: Path, *,
                 observed: bool) -> tuple[float, str]:
    """Min-of-N wall time and the (stable) report document string."""
    best = float("inf")
    doc = None
    for attempt in range(REPEATS):
        observation = None
        if observed:
            obs_dir = scratch / f"obs-{attempt}"
            obs_dir.mkdir(parents=True, exist_ok=True)
            observation = Observation(
                trace_path=str(obs_dir / "trace.jsonl"),
                metrics_path=str(obs_dir / "metrics.json"))
        elapsed, run = timed(
            lambda: check_files(paths, jobs=JOBS, keep_going=True,
                                observation=observation))
        if observation is not None:
            # Finalize (merge + write) is part of what observation
            # costs, so it stays inside the priced region.
            elapsed_finalize, _ = timed(lambda: observation.finalize(run))
            elapsed += elapsed_finalize
        best = min(best, elapsed)
        rendered = json.dumps(run_to_json(run), indent=2)
        assert doc is None or doc == rendered, "unstable reports"
        doc = rendered
        assert run.results and not run.interrupted
    return best, doc


def run_benchmark(output: str = OUTPUT) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-obs-"))
    try:
        paths = materialize_protocols(workdir, (PROTOCOL,))[PROTOCOL]
        plain, plain_doc = _timed_sweep(paths, workdir, observed=False)
        observed, observed_doc = _timed_sweep(paths, workdir, observed=True)
        metrics = observed_snapshot(
            lambda obs: check_files(paths, jobs=JOBS, keep_going=True,
                                    observation=obs))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    overhead = observed - plain
    results = {
        "benchmark": "obs_overhead",
        "protocol": PROTOCOL,
        "jobs": JOBS,
        "repeats": REPEATS,
        "plain_seconds": round(plain, 4),
        "observed_seconds": round(observed, 4),
        "overhead_seconds": round(overhead, 4),
        "overhead_fraction": round(overhead / max(plain, 1e-9), 4),
        "budget_fraction": BUDGET,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        "reports_identical": plain_doc == observed_doc,
    }
    return write_results(output, results, metrics=metrics)


def test_obs_overhead(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))
    assert results["reports_identical"], (
        "a traced+metered run must render byte-identical reports")
    allowed = max(results["plain_seconds"] * BUDGET, NOISE_FLOOR_SECONDS)
    assert results["overhead_seconds"] <= allowed, (
        "observation must cost <= 5% of the plain run "
        f"(or the {NOISE_FLOOR_SECONDS}s noise floor): "
        f"{results['overhead_seconds']}s over {results['plain_seconds']}s")
    counters = results["metrics"]["counters"]
    assert counters.get("engine.functions", 0) > 0
    assert counters.get("fleet.items", 0) > 0


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
