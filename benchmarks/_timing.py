"""Shared plumbing for the standalone benchmark scripts.

Extracted from ``bench_parallel_scaling`` and
``bench_supervisor_overhead``, which had grown identical copies of the
CPU probe, the protocol materializer, and the memo-clearing stopwatch.

Every ``BENCH_*.json`` written through :func:`write_results` also
carries a ``"metrics"`` section — a :mod:`repro.obs` counter snapshot
taken from one *untimed* observed sweep of the same workload — so a
regression in the timing numbers can be read next to what the run
actually did (functions executed, paths walked, reports emitted, cache
traffic) instead of wall time alone.  The observed sweep runs outside
every timed section; observation never prices the measurement.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.flash.codegen import generate_protocol
from repro.lang import clear_memo
from repro.obs import Observation


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def materialize_protocols(workdir: Path, protocols) -> dict[str, list[str]]:
    """Write each protocol's generated sources to disk; paths per protocol."""
    paths: dict[str, list[str]] = {}
    for name in protocols:
        pdir = workdir / name
        pdir.mkdir(parents=True)
        gp = generate_protocol(name)
        for filename, text in gp.files.items():
            (pdir / filename).write_text(text)
        paths[name] = sorted(str(pdir / f) for f in gp.files)
    return paths


def timed(fn):
    """``(wall_seconds, result)`` for one call, parse memo cleared first.

    The per-process parse memo outlives ``check_files`` calls (and fork
    workers inherit it); clearing it keeps every measured sweep's
    "cold" honest.
    """
    clear_memo()
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def observed_snapshot(run_fn) -> dict:
    """One untimed observed sweep's metrics snapshot.

    ``run_fn(observation)`` must execute the sweep with the observation
    threaded through ``check_files``/``metal_files`` and return the run.
    """
    clear_memo()
    observation = Observation()
    run = run_fn(observation)
    return observation.finalize(run)["metrics"]


def _ledger_record(output: Path, results: dict,
                   metrics: dict | None) -> str | None:
    """Append one ``command="bench"`` record to the default run ledger.

    Benchmark artifacts and analysis runs land in the same
    ``ledger.jsonl`` (see :mod:`repro.obs.ledger`), so ``mc-check
    history`` shows benchmark sweeps next to the runs they price and
    every ``BENCH_*.json`` is joinable against the ledger by run id.
    An unwritable ledger never fails the benchmark."""
    from repro.mc.supervisor import new_run_id
    from repro.obs.ledger import RunLedger, ledger_path, make_record

    run_id = new_run_id()
    wall = max((v for k, v in results.items()
                if k.endswith("_seconds") and isinstance(v, (int, float))),
               default=0.0)
    config = {k: v for k, v in results.items()
              if isinstance(v, (str, int, float, bool))}
    record = make_record(
        run_id=run_id, command="bench", files=[],
        config={"bench": output.stem, **config},
        wall=float(wall), exit_code=0, reports={},
        counters=(metrics or {}).get("counters"),
    )
    if RunLedger(ledger_path()).append(record):
        return run_id
    return None


def write_results(output: str | Path, results: dict,
                  metrics: dict | None = None) -> dict:
    """Write a ``BENCH_*.json``, folding in the metrics snapshot and
    the benchmark's ledger run id (``None`` if the ledger is
    unwritable)."""
    if metrics is not None:
        results["metrics"] = metrics
    results["run_id"] = _ledger_record(Path(output), results, metrics)
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    return results
