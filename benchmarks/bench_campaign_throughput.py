"""Campaign throughput: simulations per second per core, and scaling.

A campaign's unit of work is one simulation run — workload generation,
handler interpretation, fault injection, and (for failing runs) the
delta-debugging shrink.  This benchmark prices that unit on a fixed
two-handler protocol whose runs are a realistic mix of clean and
crashing, then sweeps ``jobs`` to measure how shard dispatch over the
supervised pool scales.

Reported per jobs level (min-of-N wall time, cache and journal off so
every simulation actually executes):

- ``seconds`` — wall time for the whole campaign
- ``sims_per_sec`` — campaign runs completed per second
- ``sims_per_sec_per_core`` — the headline normalized throughput
- ``speedup`` / ``efficiency`` — against the ``jobs=1`` inline baseline

Results land in ``BENCH_campaign_throughput.json``.  Also runnable
standalone: ``python benchmarks/bench_campaign_throughput.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from _timing import timed, usable_cpus, write_results

from repro.campaign import CampaignSpec, cross_tabulate, run_campaign

RUNS = 60
SHARD_SIZE = 5
MESSAGES = 15
REPEATS = 2
OUTPUT = "BENCH_campaign_throughput.json"

#: The measured protocol: one handler leaks under alloc-fail pressure
#: and double-frees, the other floods a lane — so the campaign's mix of
#: clean runs, counter-only crashes, and shrink work is representative.
PROTOCOL = """
void PILocalGet(void) {
    HANDLER_DEFS();
    long db = DB_ALLOC();
    MISCBUS_READ_DB(HANDLER_GLOBALS(header.nh.addr), 0);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 0, 0);
    DB_FREE(db);
    DB_FREE(db);
}
void NILocalPut(void) {
    HANDLER_DEFS();
    long db = DB_ALLOC();
    WAIT_FOR_DB_FULL(HANDLER_GLOBALS(header.nh.addr));
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(NI_REPLY, F_DATA, 1, 0, 0, 0);
    NI_SEND(NI_REQUEST, F_DATA, 1, 0, 0, 0);
    DB_FREE(db);
}
"""


def _spec(source: Path) -> CampaignSpec:
    return CampaignSpec(
        files=(str(source),),
        dispatch=((1, "PILocalGet"), (2, "NILocalPut")),
        runs=RUNS, shard_size=SHARD_SIZE, seed=11,
        messages=MESSAGES, lane_capacity=2,
    )


def _timed_campaign(spec: CampaignSpec, jobs: int):
    best = float("inf")
    camp = None
    for _ in range(REPEATS):
        elapsed, camp = timed(lambda: run_campaign(spec, jobs=jobs))
        assert camp.complete, camp.incomplete_shards
        best = min(best, elapsed)
    return best, camp


def main() -> dict:
    cpus = usable_cpus()
    # jobs=1 is the inline baseline; jobs=2 always measures the
    # supervised-pool dispatch path even on one core; larger levels
    # only when the cores exist to back them.
    jobs_levels = sorted({1, 2} | {min(4, cpus), cpus} - {0})

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        source = Path(tmp) / "protocol.c"
        source.write_text(PROTOCOL)
        spec = _spec(source)

        curve = []
        baseline = None
        counters = None
        for jobs in jobs_levels:
            seconds, camp = _timed_campaign(spec, jobs)
            if baseline is None:
                baseline = seconds
                counters = cross_tabulate([], camp.outcomes).counters
            sims_per_sec = RUNS / seconds
            curve.append({
                "jobs": jobs,
                "seconds": round(seconds, 4),
                "sims_per_sec": round(sims_per_sec, 2),
                "sims_per_sec_per_core": round(sims_per_sec / jobs, 2),
                "speedup": round(baseline / seconds, 2),
                "efficiency": round(baseline / seconds / jobs, 2),
            })

    results = {
        "benchmark": "campaign_throughput",
        "protocol_loc": len([ln for ln in PROTOCOL.splitlines()
                             if ln.strip()]),
        "runs": RUNS,
        "shard_size": SHARD_SIZE,
        "messages_per_run": MESSAGES,
        "usable_cpus": cpus,
        "campaign_counters": counters,
        "scaling": curve,
    }
    return write_results(OUTPUT, results)


if __name__ == "__main__":
    out = main()
    for point in out["scaling"]:
        print(f"jobs={point['jobs']}: {point['seconds']}s, "
              f"{point['sims_per_sec']} sims/s "
              f"({point['sims_per_sec_per_core']}/core, "
              f"speedup {point['speedup']}x)")
