"""§6/§11 dynamic claims — buffer bugs deadlock only after long runs.

The paper motivates static checking with the failure profile of these
bugs under testing/simulation: a low-grade leak "only deadlocks the
system after several days".  This benchmark measures how much simulated
work it takes the FlashLite-lite machine to expose a rare leak
dynamically, versus the milliseconds the static checker needs.
"""

import time

from repro.checkers import BufferMgmtChecker
from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.project import HandlerInfo, ProtocolInfo, program_from_source

LEAKY = """
void NIRemotePut(void) {
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if ((addr & 511) == 24) {
        return;
    }
    DB_FREE();
    return;
}
"""


def _machine():
    prog = program_from_source(LEAKY)
    funcs = {f.name: f for f in prog.functions()}
    return FlashMachine(funcs, {1: "NIRemotePut"}, n_buffers=8)


def test_simulation_to_deadlock(benchmark, show):
    spec = WorkloadSpec(messages=200000, opcode_weights=((1, 1),))

    def run_until_deadlock():
        return _machine().run(spec)

    stats = benchmark.pedantic(run_until_deadlock, rounds=3, iterations=1)
    assert stats.deadlock is not None
    assert stats.handlers_run > 500

    # Static detection of the same bug, for the comparison the paper makes.
    info = ProtocolInfo(name="demo", handlers={
        "NIRemotePut": HandlerInfo("NIRemotePut", "hw"),
    })
    start = time.perf_counter()
    result = BufferMgmtChecker().check(program_from_source(LEAKY, info))
    static_ms = (time.perf_counter() - start) * 1000
    assert len(result.errors) == 1

    show(f"\nsimulation needed {stats.handlers_run} handler executions "
         f"to deadlock; the static checker found the leak in "
         f"{static_ms:.1f} ms")
    benchmark.extra_info["handlers_to_deadlock"] = stats.handlers_run
    benchmark.extra_info["static_checker_ms"] = round(static_ms, 2)
