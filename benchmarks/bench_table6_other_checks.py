"""Table 6 — allocation-failure, directory, and send-wait checkers."""

from repro.bench.formatting import render_table
from repro.checkers import AllocFailChecker, DirectoryChecker, SendWaitChecker


def test_table6_other_checks(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checkers():
        out = []
        for program in programs:
            out.append((
                AllocFailChecker().check(program),
                DirectoryChecker().check(program),
                SendWaitChecker().check(program),
            ))
        return out

    results = benchmark.pedantic(run_checkers, rounds=3, iterations=1)
    table = experiment.table6()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    # Paper totals for the Applied columns.
    assert sum(alloc.applied for alloc, _d, _s in results) == 97
    assert sum(d.applied for _a, d, _s in results) == 1768
    assert sum(s.applied for _a, _d, s in results) == 125
