"""Table 2 — the buffer race condition checker over all protocols."""

from repro.bench.formatting import render_table
from repro.checkers import BufferRaceChecker


def test_table2_buffer_race(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [BufferRaceChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    table = experiment.table2()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    benchmark.extra_info["errors"] = sum(len(r.errors) for r in results)
