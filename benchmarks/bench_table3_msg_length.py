"""Table 3 — the message length checker over all protocols."""

from repro.bench.formatting import render_table
from repro.checkers import MsgLengthChecker


def test_table3_msg_length(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [MsgLengthChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    table = experiment.table3()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    assert sum(r.applied for r in results) == 1550  # paper total
