"""Figure 3 — the published message-length metal checker, run verbatim.

Times compiling the listing and applying it to dyn_ptr (7 errors in
Table 3) and rac (8 errors).
"""

from repro.checkers.metal_sources import FIGURE_3
from repro.mc.engine import run_machine
from repro.metal import ReportSink, parse_metal


def test_fig3_runs_verbatim(experiment, benchmark, show):
    protocols = experiment.generate()
    targets = {
        "dyn_ptr": 7,
        "rac": 8,
        "bitvector": 3,
    }
    cfg_sets = {
        name: protocols[name].program().cfgs() for name in targets
    }

    def compile_and_run():
        counts = {}
        for name, cfgs in cfg_sets.items():
            sm = parse_metal(FIGURE_3)
            sink = ReportSink()
            for cfg in cfgs:
                run_machine(sm, cfg, sink)
            counts[name] = len(sink)
        return counts

    counts = benchmark.pedantic(compile_and_run, rounds=1, iterations=1)
    show(f"\nFigure 3 checker (verbatim) errors: {counts} "
         f"(paper: {targets})")
    assert counts == targets
