"""Tolerant frontend over the real-world and adversarial corpora.

The paper's checkers only earned their keep because xg++ could be
pointed at a whole, messy codebase; this benchmark holds the
reproduction to the same bar.  It sweeps ``examples/realworld/``
(hand-written systems C mixing subset-clean code with GNU extensions,
K&R definitions, and C++ leakage) and ``examples/realworld/garbage/``
(byte soup, truncated source, raw binary) through the full fleet under
``--frontend tolerant`` and writes ``BENCH_tolerant_corpus.json``:

* ``functions_parsed`` — function definitions the tolerant parser
  produced real ASTs for, corpus-wide;
* ``functions_quarantined`` — unrecoverable regions turned into
  per-function ``phase="input"`` quarantines;
* ``reports_emitted`` — diagnostics the checkers still produced;
* ``crash_count`` — sweeps that escaped as exceptions.  **The gate:
  this must be 0.**  Tolerant mode's whole contract is that no input,
  however hostile, crashes the run.

Two sanity gates ride along: the clean real-world code must actually
parse (``functions_parsed > 0`` with reports emitted), and the
garbage must actually exercise recovery (``functions_quarantined >
0``), so a frontend that "never crashes" by parsing nothing cannot
pass.  Also runnable standalone:
``python benchmarks/bench_tolerant_corpus.py``.
"""

from __future__ import annotations

import json
import sys
import traceback
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _timing import write_results  # noqa: E402

from repro.lang import clear_memo, parse, set_default_mode

OUTPUT = "BENCH_tolerant_corpus.json"
CORPUS = Path(__file__).resolve().parent.parent / "examples" / "realworld"


def _corpus_files() -> list[Path]:
    files = sorted(CORPUS.glob("*.c")) + sorted((CORPUS / "garbage").glob("*.c"))
    assert files, f"corpus missing under {CORPUS}"
    return files


def _parse_stats(path: Path) -> dict:
    """Tolerant-parse one file; every exception is a counted crash."""
    from repro.project import read_sources

    stats = {"file": path.name, "functions_parsed": 0,
             "functions_quarantined": 0, "recovered_statements": 0,
             "opaque_expressions": 0, "crashes": 0}
    try:
        text = read_sources([str(path)])[str(path)]
        unit = parse(text, str(path), mode="tolerant")
        stats["functions_parsed"] = len(unit.functions())
        stats["functions_quarantined"] = len(unit.quarantined)
        frontend = getattr(unit, "frontend_stats", {})
        stats["recovered_statements"] = frontend.get("recovered_statements", 0)
        stats["opaque_expressions"] = frontend.get("opaque_expressions", 0)
    except Exception:
        traceback.print_exc()
        stats["crashes"] = 1
    return stats


def _fleet_stats(paths: list[Path]) -> dict:
    """One tolerant fleet sweep over the whole corpus at once."""
    from repro.mc import check_files

    stats = {"reports_emitted": 0, "quarantined_regions": 0, "crashes": 0}
    try:
        run = check_files([str(p) for p in paths], keep_going=True,
                          cache=None, frontend="tolerant")
        for result in run.results.values():
            stats["reports_emitted"] += len(result.reports)
            stats["quarantined_regions"] += sum(
                1 for q in result.quarantines if q.phase == "input")
    except Exception:
        traceback.print_exc()
        stats["crashes"] = 1
    return stats


def run_benchmark() -> dict:
    clear_memo()
    previous = set_default_mode("strict")
    try:
        files = _corpus_files()
        per_file = [_parse_stats(p) for p in files]
        fleet = _fleet_stats(files)
    finally:
        set_default_mode(previous)
    results = {
        "corpus_files": len(per_file),
        "functions_parsed": sum(s["functions_parsed"] for s in per_file),
        "functions_quarantined": sum(s["functions_quarantined"]
                                     for s in per_file),
        "recovered_statements": sum(s["recovered_statements"]
                                    for s in per_file),
        "opaque_expressions": sum(s["opaque_expressions"] for s in per_file),
        "reports_emitted": fleet["reports_emitted"],
        "crash_count": (sum(s["crashes"] for s in per_file)
                        + fleet["crashes"]),
        "per_file": per_file,
        "fleet": fleet,
    }
    return write_results(OUTPUT, results)


def _assert_gates(results: dict) -> None:
    assert results["crash_count"] == 0, (
        f"tolerant frontend crashed {results['crash_count']} time(s) "
        "over the corpus — it must survive every input")
    assert results["functions_parsed"] > 0, (
        "nothing parsed: the real-world corpus should yield ASTs")
    assert results["functions_quarantined"] > 0, (
        "nothing quarantined: the adversarial corpus should exercise "
        "recovery")
    assert results["reports_emitted"] > 0, (
        "no diagnostics: the parsed half of the corpus should still "
        "be analysed")


def test_tolerant_corpus(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))
    _assert_gates(results)


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
    _assert_gates(out)
