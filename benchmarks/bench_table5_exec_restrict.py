"""Table 5 — the execution restriction checker over all protocols."""

from repro.bench.formatting import render_table
from repro.checkers import ExecRestrictChecker, NoFloatChecker


def test_table5_exec_restrict(experiment, benchmark, show):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [ExecRestrictChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    table = experiment.table5()
    show("\n" + render_table(table))
    match, total = table.exact_cells()
    assert match == total
    assert sum(r.extra["handlers_checked"] for r in results) == 1064
    assert sum(r.extra["vars_checked"] for r in results) == 3765


def test_no_float_over_all_protocols(experiment, benchmark):
    programs = [gp.program() for gp in experiment.generate().values()]

    def run_checker():
        return [NoFloatChecker().check(p) for p in programs]

    results = benchmark.pedantic(run_checker, rounds=3, iterations=1)
    # The paper's protocols contain no floating point; neither do ours.
    assert sum(len(r.reports) for r in results) == 0
    assert sum(r.applied for r in results) > 100000  # tree nodes visited
