"""Ablation 3 — §6's twelve-line value-sensitivity refinement.

"We eliminated over twenty useless annotations by adding twelve lines to
the SM to make it sensitive to the value of four routines that ...
returned a 0 or 1 depending on whether or not they freed a buffer.
Without this addition, the more naive extension marked the buffer as
freed (or not freed) on both paths, giving a small cascade of errors."

The benchmark runs the refined and the naive checker over a corpus of
handlers built around frees-if-true helpers and DB_IS_ERROR checks, and
reports the diagnostic cascade the refinement removes.
"""

from repro.checkers import BufferMgmtChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def _corpus(handlers: int = 24):
    info = ProtocolInfo(name="ablation", handlers={
        f"H{i}": HandlerInfo(f"H{i}", "hw") for i in range(handlers)
    })
    info.frees_if_true.add("try_forward")
    pieces = []
    for i in range(handlers):
        pieces.append(f"""
        void H{i}(void) {{
            unsigned b;
            if (try_forward()) {{
                return;
            }}
            DB_FREE();
            b = DB_ALLOC();
            if (DB_IS_ERROR(b)) {{
                return;
            }}
            HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
            NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            DB_FREE();
            return;
        }}
        """)
    return program_from_source("\n".join(pieces), info)


def test_refined_checker(benchmark, show):
    program = _corpus()

    def refined():
        return BufferMgmtChecker(use_branch_refinement=True).check(program)

    result = benchmark(refined)
    assert result.reports == []


def test_naive_checker_cascades(benchmark, show):
    program = _corpus()

    def naive():
        return BufferMgmtChecker(use_branch_refinement=False).check(program)

    result = benchmark(naive)
    refined = BufferMgmtChecker(use_branch_refinement=True).check(program)
    show(f"\nvalue-sensitivity ablation over 24 handlers: refined checker "
         f"{len(refined.reports)} diagnostics, naive checker "
         f"{len(result.reports)} (the paper's 'small cascade of errors')")
    # The cascade the paper describes: >20 spurious diagnostics appear.
    assert len(result.reports) > 20
    assert refined.reports == []
