"""Ablation 3 — §6's twelve-line value-sensitivity refinement.

"We eliminated over twenty useless annotations by adding twelve lines to
the SM to make it sensitive to the value of four routines that ...
returned a 0 or 1 depending on whether or not they freed a buffer.
Without this addition, the more naive extension marked the buffer as
freed (or not freed) on both paths, giving a small cascade of errors."

The benchmark runs the refined and the naive checker over a corpus of
handlers built around the paper's *four* frees-if-true helpers (each
handler tests one of them, plus a DB_IS_ERROR allocation check) and
asserts the cascade the refinement removes clears §6's "over twenty"
bar — both numbers via ``repro.bench.paper_data`` constants.
"""

from repro.bench import paper_data
from repro.checkers import BufferMgmtChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source

#: The four §6 routines "that returned a 0 or 1 depending on whether or
#: not they freed a buffer" (names ours; the paper does not print them).
FREES_IF_TRUE_HELPERS = (
    "try_forward", "try_reply", "try_nack", "try_writeback",
)

assert len(FREES_IF_TRUE_HELPERS) == paper_data.SECTION6_FREES_IF_TRUE_ROUTINES


def _corpus(handlers: int = 24, helpers=FREES_IF_TRUE_HELPERS):
    info = ProtocolInfo(name="ablation", handlers={
        f"H{i}": HandlerInfo(f"H{i}", "hw") for i in range(handlers)
    })
    info.frees_if_true.update(helpers)
    pieces = []
    for i in range(handlers):
        helper = helpers[i % len(helpers)]
        pieces.append(f"""
        void H{i}(void) {{
            unsigned b;
            if ({helper}()) {{
                return;
            }}
            DB_FREE();
            b = DB_ALLOC();
            if (DB_IS_ERROR(b)) {{
                return;
            }}
            HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
            NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            DB_FREE();
            return;
        }}
        """)
    return program_from_source("\n".join(pieces), info)


def test_refined_checker(benchmark, show):
    program = _corpus()

    def refined():
        return BufferMgmtChecker(use_branch_refinement=True).check(program)

    result = benchmark(refined)
    assert result.reports == []


def test_naive_checker_cascades(benchmark, show):
    program = _corpus()

    def naive():
        return BufferMgmtChecker(use_branch_refinement=False).check(program)

    result = benchmark(naive)
    refined = BufferMgmtChecker(use_branch_refinement=True).check(program)
    helpers = len(FREES_IF_TRUE_HELPERS)
    show(f"\nvalue-sensitivity ablation over 24 handlers x {helpers} "
         f"frees-if-true helpers: refined checker "
         f"{len(refined.reports)} diagnostics, naive checker "
         f"{len(result.reports)} (the paper's 'small cascade of errors')")
    # The cascade the paper describes: "over twenty" spurious
    # diagnostics appear without the twelve-line refinement.
    assert len(result.reports) > paper_data.SECTION6_USELESS_ANNOTATIONS
    assert refined.reports == []
