"""Path-feasibility pruning: false positives, paths walked, and cost.

Three measurements, all gated (the CI job fails if any regresses):

1. **FP suppression with recall unchanged** — the full paper corpus is
   checked twice through :class:`repro.bench.tables.Experiment`, with
   feasibility off (the paper's engine) and on.  Every ground-truth
   *true* report (errors, minor, violations) must survive pruning
   unchanged; manifest-labelled false positives and §6's useless
   annotations must strictly drop.

2. **Paths walked reduced** — the naive enumeration engine counts
   syntactic paths directly; over a corpus of correlated-branch
   handlers (the Table 2 shape) pruning must walk strictly fewer,
   while keeping the one real bug seeded in the corpus.

3. **Overhead when nothing prunes ≤ 10%** — on handlers whose branch
   conditions are all satisfiable-together (distinct one-shot locals),
   the relevance GC must keep the `(block, state, store)` visited set
   close enough to the off-run's `(block, state)` set that the cached
   engine costs at most 10% more wall time (min-of-N, with a noise
   floor for sub-second sweeps).

Results land in ``BENCH_feasibility_fp.json``.  Also runnable
standalone: ``python benchmarks/bench_feasibility_fp.py``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _timing import write_results  # noqa: E402

from repro.bench.tables import Experiment
from repro.lang import clear_memo
from repro.mc.engine import run_machine, run_machine_naive
from repro.metal.parser import parse_metal
from repro.metal.runtime import ReportSink
from repro.checkers.metal_sources import BUFFER_RACE_FULL
from repro.obs.metrics import MetricsRegistry, activate_metrics
from repro.project import program_from_source

OUTPUT = "BENCH_feasibility_fp.json"
REPEATS = 5
OVERHEAD_BUDGET = 0.10
#: Sub-second sweeps sit inside scheduler jitter; the overhead gate
#: allows max(10%, this many seconds) — wide enough for CI neighbours,
#: narrow enough to catch the unmemoized store ops (~50% overhead).
NOISE_FLOOR_SECONDS = 0.08

#: Correlated-branch handlers (the Table 2 FP shape): wait and read
#: guarded by the same already-tested local — the unguarded-read path
#: is syntactic only.  One seeded true bug: a read on a feasible path.
_CORRELATED_HANDLER = """
void Corr{i}(void) {{
    unsigned addr;
    unsigned buf;
    unsigned has_data;
    addr = HANDLER_GLOBALS(header.nh.addr);
    has_data = HANDLER_GLOBALS(header.nh.len);
    if (has_data) {{
        WAIT_FOR_DB_FULL(addr);
    }}
    if (has_data) {{
        MISCBUS_READ_DB(addr, buf);
    }}
    DB_FREE();
    return;
}}
"""

_TRUE_BUG_HANDLER = """
void RealBug(void) {
    unsigned addr;
    unsigned buf;
    addr = HANDLER_GLOBALS(header.nh.addr);
    MISCBUS_READ_DB(addr, buf);
    return;
}
"""

#: No-prune handlers: every branch tests a distinct local used exactly
#: once, so no condition can contradict an earlier one and every fact
#: dies at its branch (the relevance GC's best case — and the honest
#: worst case for pure overhead, since facts *are* tracked).
_NO_PRUNE_HANDLER = """
void Plain{i}(void) {{
    unsigned addr;
    unsigned buf;
    unsigned c0;
    unsigned c1;
    unsigned c2;
    unsigned c3;
    addr = HANDLER_GLOBALS(header.nh.addr);
    c0 = HANDLER_GLOBALS(header.nh.len);
    c1 = HANDLER_GLOBALS(header.nh.src);
    c2 = HANDLER_GLOBALS(header.nh.dst);
    c3 = HANDLER_GLOBALS(header.nh.op);
    if (c0) {{
        WAIT_FOR_DB_FULL(addr);
    }}
    if (c1) {{
        MISCBUS_READ_DB(addr, buf);
    }}
    if (c2) {{
        MISCBUS_READ_DB(addr, buf);
    }}
    if (c3) {{
        DB_FREE();
    }}
    return;
}}
"""


def _experiment_counts(feasibility: bool) -> dict:
    """One full paper-corpus run's classification + engine counters."""
    registry = MetricsRegistry()
    previous = activate_metrics(registry)
    try:
        experiment = Experiment(feasibility=feasibility)
        experiment.check()
    finally:
        activate_metrics(previous)
    totals = {"errors": 0, "minor": 0, "violations": 0, "fps": 0,
              "useless_annotations": 0, "unmatched": 0}
    for cls in experiment._classified.values():
        for key in totals:
            totals[key] += getattr(cls, key)
    counters = registry.snapshot()["counters"]
    totals["true_reports"] = (totals["errors"] + totals["minor"]
                              + totals["violations"])
    totals["engine_states"] = counters.get("engine.states", 0)
    totals["pruned_edges"] = counters.get("engine.pruned_edges", 0)
    return totals


def _naive_paths(feasibility: bool, handlers: int = 12) -> tuple[int, int]:
    """(paths walked, reports) for the correlated corpus, naive engine."""
    source = "\n".join(
        [_CORRELATED_HANDLER.format(i=i) for i in range(handlers)]
        + [_TRUE_BUG_HANDLER])
    program = program_from_source(source)
    sm = parse_metal(BUFFER_RACE_FULL)
    sink = ReportSink()
    paths = 0
    for function in program.functions():
        paths += run_machine_naive(sm, program.cfg(function), sink,
                                   feasibility=feasibility)
    return paths, len(sink.reports)


def _no_prune_overhead(handlers: int = 60,
                       sweeps: int = 16) -> tuple[float, float, int]:
    """(best off seconds, best on seconds, pruned edges), interleaved.

    Off and on sweeps alternate within each repeat so machine noise
    (frequency scaling, neighbours) hits both sides alike; each side
    takes its min over all repeats.
    """
    source = "\n".join(_NO_PRUNE_HANDLER.format(i=i)
                       for i in range(handlers))
    clear_memo()
    program = program_from_source(source)
    cfgs = [program.cfg(f) for f in program.functions()]
    sm = parse_metal(BUFFER_RACE_FULL)

    def sweep(feasibility: bool) -> float:
        start = time.perf_counter()
        for _ in range(sweeps):
            sink = ReportSink()
            for cfg in cfgs:
                run_machine(sm, cfg, sink, feasibility=feasibility)
        return time.perf_counter() - start

    sweep(True)  # warm parse/CFG/feasibility caches out of the timing
    best_off = best_on = float("inf")
    registry = MetricsRegistry()
    previous = activate_metrics(registry)
    try:
        for _ in range(REPEATS):
            best_off = min(best_off, sweep(False))
            best_on = min(best_on, sweep(True))
    finally:
        activate_metrics(previous)
    pruned = registry.snapshot()["counters"].get("engine.pruned_edges", 0)
    return best_off, best_on, pruned


def run_benchmark(output: str = OUTPUT) -> dict:
    off = _experiment_counts(feasibility=False)
    on = _experiment_counts(feasibility=True)

    naive_paths_off, naive_reports_off = _naive_paths(feasibility=False)
    naive_paths_on, naive_reports_on = _naive_paths(feasibility=True)

    plain_seconds, feas_seconds, pruned_no_prune = _no_prune_overhead()
    overhead = feas_seconds - plain_seconds

    results = {
        "benchmark": "feasibility_fp",
        "paper_corpus": {
            "feasibility_off": off,
            "feasibility_on": on,
            "fps_suppressed": off["fps"] - on["fps"],
            "useless_annotations_suppressed":
                off["useless_annotations"] - on["useless_annotations"],
        },
        "naive_paths": {
            "handlers": 12,
            "paths_off": naive_paths_off,
            "paths_on": naive_paths_on,
            "reports_off": naive_reports_off,
            "reports_on": naive_reports_on,
        },
        "no_prune_overhead": {
            "repeats": REPEATS,
            "plain_seconds": round(plain_seconds, 4),
            "feasibility_seconds": round(feas_seconds, 4),
            "overhead_seconds": round(overhead, 4),
            "overhead_fraction": round(overhead / max(plain_seconds, 1e-9),
                                       4),
            "budget_fraction": OVERHEAD_BUDGET,
            "noise_floor_seconds": NOISE_FLOOR_SECONDS,
            "pruned_edges": pruned_no_prune,
        },
    }
    return write_results(output, results)


def _assert_gates(results: dict) -> None:
    corpus = results["paper_corpus"]
    off, on = corpus["feasibility_off"], corpus["feasibility_on"]
    # Recall unchanged: every ground-truth true report survives pruning.
    assert on["true_reports"] == off["true_reports"], (
        f"pruning lost true reports: {off['true_reports']} -> "
        f"{on['true_reports']}")
    assert on["unmatched"] == 0 and off["unmatched"] == 0
    # Strictly fewer FPs (Table 2 correlated branches + §6 cascade).
    assert on["fps"] < off["fps"], (
        f"no FP suppressed: {off['fps']} -> {on['fps']}")
    assert on["useless_annotations"] < off["useless_annotations"], (
        "the §6 useless-annotation cascade did not shrink: "
        f"{off['useless_annotations']} -> {on['useless_annotations']}")
    assert on["pruned_edges"] > 0 and off["pruned_edges"] == 0

    naive = results["naive_paths"]
    assert naive["paths_on"] < naive["paths_off"], (
        f"paths walked not reduced: {naive['paths_off']} -> "
        f"{naive['paths_on']}")
    # The corpus seeds exactly one real bug; pruning keeps it and
    # drops every correlated FP.
    assert naive["reports_on"] == 1
    assert naive["reports_off"] == naive["handlers"] + 1

    cost = results["no_prune_overhead"]
    assert cost["pruned_edges"] == 0, "the no-prune corpus pruned something"
    allowed = max(cost["plain_seconds"] * OVERHEAD_BUDGET,
                  NOISE_FLOOR_SECONDS)
    assert cost["overhead_seconds"] <= allowed, (
        f"feasibility costs {cost['overhead_seconds']}s over "
        f"{cost['plain_seconds']}s when nothing prunes "
        f"(> {OVERHEAD_BUDGET:.0%} and > {NOISE_FLOOR_SECONDS}s)")


def test_feasibility_fp(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))
    _assert_gates(results)


if __name__ == "__main__":
    out = run_benchmark()
    print(json.dumps(out, indent=2))
    _assert_gates(out)
