"""Engine scaling: the summary engine vs the exhaustive paths engine.

Two claims ride on these numbers (see ``docs/engine.md``):

* **Corpus speedup** — checking the paper's five-protocol corpus with
  the six state-machine checkers under ``--engine summary`` is several
  times faster than under ``--engine paths``, with *byte-identical*
  reports (the paths engine is the oracle).  Parse time is recorded
  separately — both engines consume the same parsed programs, so the
  ratio prices the analysis, not the frontend.  ``engine_seconds``
  counts time inside :func:`repro.mc.engine.run_machine` only (slicing,
  feasibility, and the walk itself); ``check_seconds`` adds the
  checkers' own applied-site counting around it.

* **Branch-depth sweep** — on a synthetic handler with a report site at
  the top and ``d`` tested-then-retested variables after it, the paths
  engine grows exponentially in ``d`` (feasibility stores diverge per
  branch combination, defeating the visited-set merge) while the
  summary engine stays flat: the machine's slice proves the whole tail
  dead and merges it away.  Paths timing is capped; depths past the cap
  record ``null``.

Writes ``BENCH_engine_scaling.json`` (checked in at the repo root).
Also runnable standalone: ``python benchmarks/bench_engine_scaling.py``.
"""

from __future__ import annotations

import gc
import importlib
import json
import time
from contextlib import contextmanager

from _timing import write_results

from repro.checkers import get_checker
from repro.checkers.metal_sources import FIGURE_2
from repro.flash.codegen import generate_protocol
from repro.lang import clear_memo
from repro.mc import clear_function_summaries
from repro.mc.engine import run_machine
from repro.mc.summary import set_default_engine
from repro.metal.parser import parse_metal
from repro.metal.runtime import ReportSink
from repro.obs.metrics import MetricsRegistry, activate_metrics
from repro.project import Program

PROTOCOLS = ("bitvector", "dyn_ptr", "sci", "coma", "rac")
SM_CHECKERS = ("alloc-fail", "buffer-mgmt", "buffer-race", "directory",
               "msg-length", "send-wait")
#: The checker modules that bind ``run_machine`` by name; patched with a
#: stopwatch so ``engine_seconds`` isolates engine time from the
#: checkers' own applied-site counting.
_CHECKER_MODULES = ("alloc_fail", "buffer_mgmt", "buffer_race",
                    "directory", "msg_length", "send_wait")

OUTPUT = "BENCH_engine_scaling.json"
#: The CI perf gate: the best cold speedup (corpus or deep-branch
#: sweep) must clear this.
GATE_RATIO = 3.0
#: Regression floor for the corpus ratio alone (noise-safe: the corpus
#: is dominated by the merge-resistant path-end checkers; see
#: docs/engine.md).
CORPUS_FLOOR = 2.0
#: The acceptance target; met by the deep-branch sweep.
TARGET_RATIO = 5.0
#: Timed passes per engine, interleaved; minima are reported so one
#: noisy pass cannot sink the ratio.
ROUNDS = 2

SWEEP_DEPTHS = tuple(range(4, 21, 2))
#: Stop timing the paths engine once one depth exceeds this.
SWEEP_PATHS_CAP = 2.0


@contextmanager
def _engine_stopwatch(acc: list):
    """Accumulate time spent inside ``run_machine`` into ``acc[0]``."""
    mods = [importlib.import_module(f"repro.checkers.{name}")
            for name in _CHECKER_MODULES]
    originals = [mod.run_machine for mod in mods]

    def wrap(original):
        def timed_run_machine(*args, **kwargs):
            start = time.perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                acc[0] += time.perf_counter() - start
        return timed_run_machine

    for mod, original in zip(mods, originals):
        mod.run_machine = wrap(original)
    try:
        yield
    finally:
        for mod, original in zip(mods, originals):
            mod.run_machine = original


def _corpus_pass(engine: str) -> tuple[dict, dict]:
    """One cold corpus run: parse the five protocols, run the six SM
    checkers, capture every report byte.  Returns (timings, output)."""
    clear_memo()
    clear_function_summaries()
    gc.collect()
    previous = set_default_engine(engine)
    try:
        parse_seconds = 0.0
        programs = []
        for name in PROTOCOLS:
            start = time.perf_counter()
            gp = generate_protocol(name)
            program = Program(dict(gp.files), info=gp.info)
            program.cfgs()
            parse_seconds += time.perf_counter() - start
            programs.append((name, program))

        engine_acc = [0.0]
        output: dict = {}
        with _engine_stopwatch(engine_acc):
            start = time.perf_counter()
            for name, program in programs:
                per_checker = {}
                for checker_name in SM_CHECKERS:
                    result = get_checker(checker_name).check(program)
                    per_checker[checker_name] = {
                        "applied": result.applied,
                        "reports": [str(r) for r in result.reports],
                        "suppressed": [[str(r), why]
                                       for r, why in result.suppressed],
                    }
                output[name] = per_checker
            check_seconds = time.perf_counter() - start
    finally:
        set_default_engine(previous)

    timings = {
        "parse_seconds": round(parse_seconds, 4),
        "check_seconds": round(check_seconds, 4),
        "engine_seconds": round(engine_acc[0], 4),
    }
    return timings, output


def _sweep_source(depth: int) -> str:
    """A handler whose only checkable site is at the top: an unwaited
    data-buffer read, followed by ``depth`` variables each tested,
    conditionally reassigned, and tested again — so every feasibility
    fact stays relevant across the middle of the function and the paths
    engine's visited set sees ``2^depth`` distinct stores."""
    lines = ["void sweep_handler(long addr, long len) {",
             "    MISCBUS_READ_DB(addr, len);"]
    lines += [f"    int f{i};" for i in range(1, depth + 1)]
    for value in (0, 1):
        lines += [f"    if (f{i} != 0) {{ f{i} = {value}; }}"
                  for i in range(1, depth + 1)]
    lines.append("}")
    return "\n".join(lines) + "\n"


def _sweep() -> dict:
    sm = parse_metal(FIGURE_2)
    rows = []
    paths_live = True
    for depth in SWEEP_DEPTHS:
        row: dict = {"depth": depth}
        for engine in ("paths", "summary"):
            if engine == "paths" and not paths_live:
                row["paths_seconds"] = None
                continue
            clear_function_summaries()
            program = Program({"sweep.c": _sweep_source(depth)})
            cfg = program.cfg(program.functions()[0])
            sink = ReportSink()
            start = time.perf_counter()
            run_machine(sm, cfg, sink, feasibility=True, engine=engine)
            row[f"{engine}_seconds"] = round(time.perf_counter() - start, 5)
            row[f"{engine}_reports"] = len(sink.reports)
            if engine == "paths" and row["paths_seconds"] > SWEEP_PATHS_CAP:
                paths_live = False
        rows.append(row)

    measured = [r for r in rows if r["paths_seconds"] is not None]
    first, last = measured[0], measured[-1]
    return {
        "machine": "figure-2 (buffer fill race)",
        "depths": list(SWEEP_DEPTHS),
        "paths_cap_seconds": SWEEP_PATHS_CAP,
        "rows": rows,
        "paths_measured_through_depth": last["depth"],
        "paths_growth_measured": round(
            last["paths_seconds"] / max(first["paths_seconds"], 1e-9), 1),
        "summary_growth_full_range": round(
            rows[-1]["summary_seconds"]
            / max(rows[0]["summary_seconds"], 1e-9), 1),
        # The cold-run speedup at the deepest depth the paths engine
        # still finished — a lower bound: past the cap it is unbounded.
        "speedup_at_deepest_measured": round(
            last["paths_seconds"] / max(last["summary_seconds"], 1e-9), 1),
    }


def _observed_metrics() -> dict:
    """Engine counters from one untimed observed summary run (bitvector):
    summary cache traffic and join-point merges land next to the
    timings."""
    clear_memo()
    clear_function_summaries()
    registry = MetricsRegistry()
    previous = activate_metrics(registry)
    try:
        gp = generate_protocol("bitvector")
        program = Program(dict(gp.files), info=gp.info)
        for checker_name in SM_CHECKERS:
            get_checker(checker_name).check(program)
    finally:
        activate_metrics(previous)
    counters = {name: value
                for name, value in registry.snapshot()["counters"].items()
                if name.startswith("engine.")}
    return {"schema": 1, "counters": counters}


def run_benchmark(output: str = OUTPUT) -> dict:
    results: dict = {
        "benchmark": "engine_scaling",
        "protocols": list(PROTOCOLS),
        "sm_checkers": list(SM_CHECKERS),
        "gate_ratio": GATE_RATIO,
        "corpus_floor": CORPUS_FLOOR,
        "target_ratio": TARGET_RATIO,
        "rounds": ROUNDS,
    }

    # Interleaved cold passes; per-engine minima price out machine
    # noise, and every pass's reports must agree with every other's.
    corpus: dict = {"paths": None, "summary": None}
    outputs: dict = {}
    identical = True
    for _ in range(ROUNDS):
        for engine in ("paths", "summary"):
            timings, captured = _corpus_pass(engine)
            best = corpus[engine]
            if best is None:
                corpus[engine] = timings
            else:
                for field in best:
                    best[field] = min(best[field], timings[field])
            if engine in outputs and outputs[engine] != captured:
                identical = False
            outputs[engine] = captured
    identical = identical and outputs["paths"] == outputs["summary"]
    report_count = sum(
        len(c["reports"])
        for per_checker in outputs["summary"].values()
        for c in per_checker.values())
    corpus["reports_identical"] = identical
    corpus["report_count"] = report_count
    corpus["check_speedup"] = round(
        corpus["paths"]["check_seconds"]
        / max(corpus["summary"]["check_seconds"], 1e-9), 2)
    corpus["engine_speedup"] = round(
        corpus["paths"]["engine_seconds"]
        / max(corpus["summary"]["engine_seconds"], 1e-9), 2)
    results["corpus"] = corpus
    sweep = _sweep()
    results["sweep"] = sweep
    # The cold-run speedup the CI gate holds: best of the corpus ratio
    # and the deep-branch sweep ratio.  The corpus is dominated by
    # small functions and the merge-resistant path-end checkers
    # (docs/engine.md); the sweep is where branch depth lets the
    # summary engine's merging actually bite.
    results["cold_speedup_gate"] = max(
        corpus["engine_speedup"], sweep["speedup_at_deepest_measured"])

    metrics = None
    try:
        metrics = _observed_metrics()
    except Exception:
        # Metrics are annotation, not measurement; never fail the
        # benchmark over the observation layer.
        pass
    return write_results(output, results, metrics=metrics)


def test_engine_scaling(show):
    results = run_benchmark()
    show(json.dumps(results, indent=2))

    corpus = results["corpus"]
    assert corpus["reports_identical"], (
        "summary engine must reproduce the paths engine's reports "
        "byte for byte on the paper corpus")
    assert corpus["report_count"] > 0
    assert corpus["engine_speedup"] >= CORPUS_FLOOR, (
        f"summary engine must be >= {CORPUS_FLOOR}x faster than paths on "
        f"the corpus: measured {corpus['engine_speedup']}x")
    assert results["cold_speedup_gate"] >= GATE_RATIO, (
        f"best cold speedup (corpus or sweep) must be >= {GATE_RATIO}x: "
        f"measured {results['cold_speedup_gate']}x")

    sweep = results["sweep"]
    rows = sweep["rows"]
    # Paths mode is exponential: it must either blow the cap before the
    # deepest sweep point or have grown enormously across the range.
    assert (sweep["paths_measured_through_depth"] < sweep["depths"][-1]
            or sweep["paths_growth_measured"] >= 50.0), sweep
    # Summary mode is flat-to-linear across the whole range.
    assert sweep["summary_growth_full_range"] <= 20.0, sweep
    assert all(r["summary_reports"] == 1 for r in rows)


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
