"""Engine throughput: checking scales linearly with protocol size.

The paper's practical pitch is that checkers run "in seconds" over tens
of thousands of lines.  This benchmark measures the full nine-checker
evaluation per protocol and reports lines checked per second, so the
linear-scaling claim of the (block, state)-cached engine is visible in
the timings (dyn_ptr at ~18.4K LOC costs ~1.8x bitvector at ~10.3K).
"""

import pytest

from repro.checkers import run_all


@pytest.mark.parametrize("protocol", ["bitvector", "dyn_ptr", "common"])
def test_nine_checkers_per_protocol(experiment, benchmark, protocol):
    gp = experiment.generate()[protocol]
    program = gp.program()

    def evaluate():
        return run_all(program)

    results = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert results
    benchmark.extra_info["loc"] = gp.loc()
    benchmark.extra_info["routines"] = len(program.functions())


def test_parse_and_annotate_throughput(experiment, benchmark):
    """Frontend throughput over the largest protocol (~18.4K LOC)."""
    from repro.project import Program
    gp = experiment.generate()["dyn_ptr"]
    files = dict(gp.files)

    def parse_all():
        return Program(files, info=gp.info)

    program = benchmark.pedantic(parse_all, rounds=2, iterations=1)
    assert len(program.functions()) == gp.targets.routines
    benchmark.extra_info["loc"] = gp.loc()
