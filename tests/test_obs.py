"""Observability invariants: purity, span trees, metrics, provenance.

The load-bearing property is **purity**: a traced/metered run must
produce byte-identical reports to a plain one — observation is strictly
read-only on the analysis.  The rest pins the trace format (schema
validity, well-formed span trees, full item coverage even when workers
crash), the metrics accounting (counters must equal report totals), and
the ``stats``/``explain`` CLI surfaces end to end.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, FaultRule
from repro.mc import ResultCache, SupervisorPolicy, check_files, run_to_json
from repro.obs import Observation, merge_trace, read_trace, span_record
from repro.obs.schema import validate_trace_file

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

FILE_A = """
void HandlerA(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

FILE_B = """
void HandlerB(void) {
    SUBROUTINE_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    return;
}
"""

#: The Table 2 correlated-branch false positive: wait and read guarded
#: by the same header field, so the unguarded-read path the engine
#: explores is infeasible.  ``docs/observability.md`` walks through it.
CORRELATED = """
void NILocalGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    unsigned buf;
    unsigned has_data;
    addr = HANDLER_GLOBALS(header.nh.addr);
    has_data = HANDLER_GLOBALS(header.nh.len);
    if (has_data) {
        WAIT_FOR_DB_FULL(addr);
    }
    if (has_data) {
        MISCBUS_READ_DB(addr, buf);
    }
    DB_FREE();
    return;
}
"""


@pytest.fixture
def two_files(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(FILE_A)
    b.write_text(FILE_B)
    return [str(a), str(b)]


def run_cli(*argv, timeout=120, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["MC_CHECK_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


# -- purity: observation never changes the analysis ---------------------------

#: Statement pool for generated handlers: buffer traffic, sends, and
#: arithmetic, optionally under a branch — enough to drive every engine
#: checker down multiple paths.
_STMTS = st.sampled_from([
    "WAIT_FOR_DB_FULL(addr);",
    "v = MISCBUS_READ_DB(addr, 0);",
    "HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);",
    "NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);",
    "DB_FREE();",
    "v = v + 1;",
])


@st.composite
def handler_source(draw):
    body: list[str] = []
    for _ in range(draw(st.integers(1, 5))):
        stmt = draw(_STMTS)
        if draw(st.booleans()):
            body.append(f"    if (v & {draw(st.integers(1, 7))}) {{")
            body.append(f"        {stmt}")
            body.append("    }")
        else:
            body.append(f"    {stmt}")
    return "\n".join([
        "void Generated(void) {",
        "    SUBROUTINE_PROLOGUE();",
        "    unsigned addr;",
        "    unsigned v;",
        "    addr = HANDLER_GLOBALS(header.nh.addr);",
        *body,
        "    return;",
        "}",
    ])


class TestPurity:
    @given(source=handler_source())
    @settings(max_examples=10, deadline=None)
    def test_reports_byte_identical_with_tracing_on_and_off(self, source):
        workdir = Path(tempfile.mkdtemp(prefix="obs-purity-"))
        try:
            unit = workdir / "gen.c"
            unit.write_text(source)
            plain = check_files([str(unit)], jobs=1, keep_going=True)
            observation = Observation(
                trace_path=str(workdir / "trace.jsonl"),
                metrics_path=str(workdir / "metrics.json"))
            observed = check_files([str(unit)], jobs=1, keep_going=True,
                                   observation=observation)
            observation.finalize(observed)
            plain_doc = json.dumps(run_to_json(plain), indent=2)
            observed_doc = json.dumps(run_to_json(observed), indent=2)
            assert plain_doc == observed_doc
        finally:
            import shutil
            shutil.rmtree(workdir, ignore_errors=True)

    def test_parallel_traced_matches_serial_plain(self, two_files, tmp_path):
        plain = check_files(two_files, jobs=1, keep_going=True)
        observation = Observation(trace_path=str(tmp_path / "t.jsonl"))
        observed = check_files(two_files, jobs=2, keep_going=True,
                               observation=observation)
        observation.finalize(observed)
        plain_doc, observed_doc = run_to_json(plain), run_to_json(observed)
        assert plain_doc.pop("jobs") == 1 and observed_doc.pop("jobs") == 2
        assert json.dumps(plain_doc) == json.dumps(observed_doc)

    def test_cached_payloads_identical_with_tracing(self, two_files,
                                                    tmp_path):
        # The "obs" payload section must never reach the cache: a warm
        # traced run and a warm plain run read the same entries.
        cache_root = tmp_path / "cache"
        observation = Observation(trace_path=str(tmp_path / "t.jsonl"))
        check_files(two_files, jobs=1, keep_going=True,
                    cache=ResultCache(cache_root), observation=observation)
        for payload_file in cache_root.rglob("*.json"):
            payload = json.loads(payload_file.read_text())
            assert "obs" not in payload, payload_file


# -- the trace itself ---------------------------------------------------------

class TestTrace:
    def _traced_run(self, files, tmp_path, *, jobs=2, policy=None):
        observation = Observation(
            trace_path=str(tmp_path / "trace.jsonl"),
            metrics_path=str(tmp_path / "metrics.json"))
        run = check_files(files, jobs=jobs, keep_going=True,
                          policy=policy, observation=observation)
        observation.finalize(run)
        return run, observation, read_trace(tmp_path / "trace.jsonl")

    def _assert_well_formed(self, records, expect_items):
        ids = {r["id"] for r in records}
        runs = [r for r in records if r["kind"] == "run"]
        assert len(runs) == 1 and records[0] is runs[0]
        for r in records:
            if r["parent"] is not None:
                assert r["parent"] in ids, f"dangling parent in {r['id']}"
            else:
                # Per-worker files root their item spans at null; only
                # the run span and item spans may float.
                assert r["kind"] in ("run", "checker")
        covered = {r["item"] for r in records
                   if r["kind"] == "checker" and r["item"] is not None
                   and "orphan" not in r["attrs"]}
        assert covered == set(range(expect_items))

    def test_spans_cover_every_item_and_validate(self, two_files, tmp_path):
        run, observation, records = self._traced_run(two_files, tmp_path)
        assert validate_trace_file(tmp_path / "trace.jsonl") == []
        items = observation.metrics.counters["fleet.items"]
        assert items == run.supervision.completed
        self._assert_well_formed(records, items)
        # Engine work is attributed: function spans carry counters.
        functions = [r for r in records if r["kind"] == "function"]
        assert functions
        assert all(r["counters"].get("steps", 0) > 0 for r in functions)

    def test_crashing_workers_leave_a_valid_stitched_trace(
            self, two_files, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="worker_crash", after=0, every=2, count=3),))
        run, observation, records = self._traced_run(
            two_files, tmp_path, policy=SupervisorPolicy(fault_plan=plan))
        assert run.supervision.crashes == 3
        assert validate_trace_file(tmp_path / "trace.jsonl") == []
        self._assert_well_formed(
            records, observation.metrics.counters["fleet.items"])
        # Retried items close their final attempt; the run span records
        # the stitch accounting.
        assert (records[0]["attrs"]["items_covered"]
                == observation.metrics.counters["fleet.items"])

    def test_merge_flags_orphans_and_superseded(self, tmp_path):
        # Synthetic per-worker file: attempt 0 crashed after closing one
        # child (item span never closed), attempt 1 completed.
        def rec(span_id, parent, kind, item, attempt, seq):
            return span_record(
                span_id=span_id, parent=parent, kind=kind, name="x",
                item=item, attempt=attempt, seq=seq, t0=0.0, wall=0.0,
                cpu=0.0, status="ok", counters={}, attrs={})

        worker_dir = tmp_path / "workers"
        worker_dir.mkdir()
        lines = [
            rec("i0a0.2", "i0a0", "function", 0, 0, 2),   # crashed attempt
            rec("i0a1.2", "i0a1", "function", 0, 1, 2),
            rec("i0a1", None, "checker", 0, 1, 1),
            rec("i1a0", None, "checker", 1, 0, 1),
        ]
        (worker_dir / "worker-1.jsonl").write_text(
            "\n".join(json.dumps(l) for l in lines) + "\n"
            + '{"schema": 1, "truncated'            # torn tail line
        )
        run = rec("run", None, "run", None, None, 0)
        out = tmp_path / "merged.jsonl"
        stats = merge_trace(worker_dir, [run], out)
        assert stats == {"spans": 5, "orphan_spans": 1,
                         "superseded_spans": 0, "items_covered": 2}
        merged = read_trace(out)
        flags = {r["id"]: r["attrs"] for r in merged}
        assert flags["i0a0.2"].get("orphan") is True
        assert "orphan" not in flags["i0a1.2"]
        assert merged[0]["kind"] == "run"
        assert validate_trace_file(out) == []

    def test_resumed_run_traces_replayed_items(self, two_files, tmp_path):
        from repro.mc import RunJournal
        journal = RunJournal.create(tmp_path / "runs")
        check_files(two_files, jobs=1, keep_going=True, journal=journal)
        run_id = journal.run_id
        journal.close()
        resumed = RunJournal.resume(tmp_path / "runs", run_id)
        observation = Observation(trace_path=str(tmp_path / "t2.jsonl"))
        run = check_files(two_files, jobs=1, keep_going=True,
                          journal=resumed, observation=observation)
        resumed.close()
        observation.finalize(run)
        records = read_trace(tmp_path / "t2.jsonl")
        replayed = [r for r in records if r["status"] == "replayed"]
        assert replayed, "second run must replay from the journal"
        assert len(replayed) == observation.metrics.counters["fleet.items"]
        assert (observation.metrics.counters["fleet.items_replayed"]
                == len(replayed))
        assert validate_trace_file(tmp_path / "t2.jsonl") == []


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_counters_match_report_totals(self, two_files, tmp_path):
        cache_root = tmp_path / "cache"
        observation = Observation(
            metrics_path=str(tmp_path / "metrics.json"))
        run = check_files(two_files, jobs=2, keep_going=True,
                          cache=ResultCache(cache_root),
                          observation=observation)
        observation.finalize(run)
        snapshot = json.loads((tmp_path / "metrics.json").read_text())
        counters = snapshot["counters"]
        reports = [r for result in run.results.values()
                   for r in result.reports]
        assert counters["reports.emitted"] == len(reports)
        assert counters["reports.errors"] == sum(
            1 for r in reports if r.severity == "error")
        assert (counters["reports.emitted"]
                == counters["reports.errors"]
                + counters.get("reports.warnings", 0))
        assert counters["fleet.items"] == (counters["fleet.items_fresh"]
                                           + counters.get("cache.hits", 0))
        assert counters["cache.stores"] == counters["fleet.items_fresh"]
        assert counters["engine.functions"] > 0
        assert snapshot["gauges"]["run.jobs"] == 2
        assert snapshot["histograms"]["item.wall_seconds"]["count"] == (
            counters["fleet.items_fresh"])

    def test_warm_run_counts_hits_not_engine_work(self, two_files,
                                                  tmp_path):
        cache = ResultCache(tmp_path / "cache")
        check_files(two_files, jobs=1, keep_going=True, cache=cache)
        observation = Observation()
        run = check_files(two_files, jobs=1, keep_going=True,
                          cache=ResultCache(tmp_path / "cache"),
                          observation=observation)
        snapshot = observation.finalize(run)["metrics"]
        counters = snapshot["counters"]
        assert counters["cache.hits"] == counters["fleet.items"]
        assert counters["fleet.items_cached"] == counters["fleet.items"]
        assert counters.get("engine.functions", 0) == 0
        # Reports still counted: the totals come from the merged run,
        # not from worker-side increments.
        assert counters["reports.emitted"] > 0


# -- CLI surfaces -------------------------------------------------------------

class TestCLI:
    def test_json_mode_keeps_stdout_pure(self, tmp_path):
        unit = tmp_path / "corr.c"
        unit.write_text(CORRELATED)
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        proc = run_cli("check", str(unit), "--format", "json",
                       "--feasibility", "off",
                       "--trace", str(trace), "--metrics-out", str(metrics),
                       cache_dir=tmp_path / "cachedir")
        assert proc.returncode == 1                 # the false positive
        doc = json.loads(proc.stdout)               # pure JSON on stdout
        assert doc["schema"] == 4
        assert "run: id=" in proc.stderr            # chatter on stderr
        assert "trace:" in proc.stderr
        assert "metrics: wrote" in proc.stderr
        assert validate_trace_file(trace) == []
        assert metrics.exists()

    def test_explain_renders_the_correlated_branch_path(self, tmp_path):
        unit = tmp_path / "corr.c"
        unit.write_text(CORRELATED)
        report = tmp_path / "report.json"
        # The FP path only exists with feasibility pruning off — the
        # default engine prunes it (see tests/test_feasibility.py).
        proc = run_cli("check", str(unit), "--no-cache",
                       "--feasibility", "off",
                       "--checker", "buffer-race", "--format", "json")
        report.write_text(proc.stdout)
        doc = json.loads(proc.stdout)
        [finding] = doc["reports"]
        assert finding["provenance"], "engine diagnostics carry provenance"
        explained = run_cli("explain", str(report), finding["id"])
        assert explained.returncode == 0
        out = explained.stdout
        assert "Buffer not synchronized" in out
        assert "enter NILocalGet" in out
        assert "branch taken: false" in out      # skipped the wait...
        assert "branch taken: true" in out       # ...but took the read
        assert "ERROR here" in out
        # Prefix match works too.
        assert run_cli("explain", str(report),
                       finding["id"][:6]).returncode == 0

    def test_explain_unknown_id_lists_candidates(self, tmp_path):
        unit = tmp_path / "corr.c"
        unit.write_text(CORRELATED)
        report = tmp_path / "report.json"
        proc = run_cli("check", str(unit), "--no-cache",
                       "--feasibility", "off", "--format", "json")
        report.write_text(proc.stdout)
        missing = run_cli("explain", str(report), "ffffffffffff")
        assert missing.returncode != 0
        assert "known ids" in missing.stderr

    def test_stats_renders_the_metrics_table(self, tmp_path):
        unit = tmp_path / "corr.c"
        unit.write_text(CORRELATED)
        metrics = tmp_path / "m.json"
        run_cli("check", str(unit), "--no-cache", "--feasibility", "off",
                "--metrics-out", str(metrics))
        proc = run_cli("stats", str(metrics))
        assert proc.returncode == 0
        assert "reports.emitted" in proc.stdout
        assert "engine.functions" in proc.stdout
        assert "item.wall_seconds" in proc.stdout


# -- histogram percentiles ----------------------------------------------------

class TestHistogramPercentiles:
    """Nearest-rank percentiles must be exact on the tiny sample sets a
    per-run histogram actually holds (the pre-fix interpolation rounded
    p99 of small sets down to a middling sample)."""

    def _hist(self, *values):
        from repro.obs.metrics import Histogram
        h = Histogram()
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_is_all_zeros(self):
        h = self._hist()
        assert h.percentile(50) == 0.0 and h.percentile(99) == 0.0
        snap = h.snapshot()
        assert snap == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_single_sample_is_every_percentile(self):
        h = self._hist(7.5)
        for q in (0, 1, 50, 90, 99, 100):
            assert h.percentile(q) == 7.5

    def test_two_samples(self):
        h = self._hist(10.0, 1.0)
        assert h.percentile(50) == 1.0      # rank ceil(1.0)=1 -> min
        assert h.percentile(51) == 10.0
        assert h.percentile(90) == 10.0
        assert h.percentile(99) == 10.0     # p99 of a tiny set is max

    def test_three_samples_p99_is_max(self):
        h = self._hist(3.0, 1.0, 2.0)
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 3.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_nearest_rank_on_even_spread(self):
        h = self._hist(*range(1, 101))      # 1..100
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0.5) == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=40),
           st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_is_always_a_sample_within_bounds(self, values, q):
        h = self._hist(*values)
        p = h.percentile(q)
        assert p in values
        assert min(values) <= p <= max(values)
        # Monotone in q.
        assert h.percentile(q) >= h.percentile(max(1, q - 10))


class TestSnapshotValidation:
    def test_accepts_a_real_snapshot(self):
        from repro.obs.metrics import validate_metrics_snapshot
        registry = Observation().metrics
        registry.inc("a")
        registry.gauge("g", 1.5)
        registry.observe("h", 0.25)
        assert validate_metrics_snapshot(registry.snapshot()) is None

    @pytest.mark.parametrize("doc,fragment", [
        ([], "not a JSON object"),
        ({"schema": 999}, "schema"),
        ({"schema": 1, "counters": [], "gauges": {}, "histograms": {}},
         "counters"),
        ({"schema": 1, "counters": {"x": "y"}, "gauges": {},
          "histograms": {}}, "x"),
        ({"schema": 1, "counters": {"x": True}, "gauges": {},
          "histograms": {}}, "x"),
        ({"schema": 1, "counters": {}, "gauges": {},
          "histograms": {"h": {"count": 1}}}, "h"),
    ])
    def test_rejects_malformed_documents(self, doc, fragment):
        from repro.obs.metrics import validate_metrics_snapshot
        problem = validate_metrics_snapshot(doc)
        assert problem is not None and fragment in problem


class TestPrometheus:
    DATA = Path(__file__).parent / "data"

    def test_exposition_matches_the_golden_file(self):
        """CI diffs the CLI output against the same golden; this pins
        the formatter itself so a drift names the culprit precisely."""
        from repro.obs.metrics import format_prometheus
        snapshot = json.loads((self.DATA / "metrics_sample.json").read_text())
        golden = (self.DATA / "stats_prometheus_golden.txt").read_text()
        assert format_prometheus(snapshot) == golden

    def test_cli_stats_prometheus_matches_the_golden_file(self):
        proc = run_cli("stats", str(self.DATA / "metrics_sample.json"),
                       "--format", "prometheus")
        assert proc.returncode == 0
        golden = (self.DATA / "stats_prometheus_golden.txt").read_text()
        assert proc.stdout == golden

    def test_live_snapshot_renders_cleanly(self, two_files, tmp_path):
        from repro.obs.metrics import format_prometheus
        observation = Observation()
        run = check_files(two_files, jobs=1, keep_going=True,
                          observation=observation)
        snapshot = observation.finalize(run)["metrics"]
        text = format_prometheus(snapshot)
        assert "# TYPE mc_check_reports_emitted_total counter" in text
        assert 'mc_check_checker_wall_seconds{checker=' in text
        assert text.endswith("\n")
        # Well-formed exposition: every non-comment line is `name value`
        # or `name{labels} value`.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name.startswith("mc_check_")
