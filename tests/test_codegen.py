"""Code generator tests: determinism, structural targets, manifest."""

import pytest

from repro.flash.codegen import (
    CATALOG,
    IDIOMS,
    TARGETS,
    generate_protocol,
)
from repro.flash.codegen.emit import Emitter


class TestEmitter:
    def test_line_numbers(self):
        e = Emitter("x.c")
        assert e.next_line == 1
        assert e.line("a;") == 1
        assert e.line("b;") == 2
        assert e.next_line == 3

    def test_indentation(self):
        e = Emitter("x.c")
        e.open_block("void f(void)")
        e.line("x = 1;")
        e.close_block()
        text = e.text()
        assert "void f(void) {" in text
        assert "    x = 1;" in text

    def test_lines_returns_first(self):
        e = Emitter("x.c")
        assert e.lines("a;", "b;", "c;") == 1


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = generate_protocol("sci")
        b = generate_protocol("sci")
        assert a.files == b.files
        assert [(s.checker, s.label, s.file, s.line) for s in a.manifest] == \
            [(s.checker, s.label, s.file, s.line) for s in b.manifest]

    def test_different_seed_different_output(self):
        a = generate_protocol("sci")
        b = generate_protocol("sci", seed=12345)
        assert a.files != b.files

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            generate_protocol("nonexistent")


class TestStructure:
    @pytest.fixture(scope="class")
    def gp(self):
        return generate_protocol("rac")

    def test_loc_close_to_target(self, gp):
        assert abs(gp.loc() - gp.targets.loc) / gp.targets.loc < 0.05

    def test_routine_count_exact(self, gp):
        assert len(gp.program().functions()) == gp.targets.routines

    def test_hw_handler_count(self, gp):
        hw = [h for h in gp.info.handlers.values() if h.kind == "hw"]
        assert len(hw) == gp.targets.hw_handlers

    def test_every_file_parses(self, gp):
        prog = gp.program()
        assert len(prog.units) == 5

    def test_manifest_lines_point_at_real_lines(self, gp):
        for site in gp.manifest:
            text = gp.files[site.file]
            lines = text.splitlines()
            assert 1 <= site.line <= len(lines), site
            assert lines[site.line - 1].strip(), site

    def test_manifest_matches_catalog_counts(self, gp):
        expected = {}
        for spec in CATALOG["rac"]:
            idiom = IDIOMS[spec.idiom]
            # msglen-runtime-flag produces two sites per instance
            per = 2 if spec.idiom == "msglen-runtime-flag" else 1
            key = (spec.label,)
            expected[key] = expected.get(key, 0) + spec.count * per
        actual = {}
        for site in gp.manifest:
            key = (site.label,)
            actual[key] = actual.get(key, 0) + 1
        assert actual == expected

    def test_handler_tables_populated(self, gp):
        assert gp.info.free_routines
        assert gp.info.buffer_use_routines
        assert all(len(h.lane_allowance) == 4
                   for h in gp.info.handlers.values())

    def test_nostack_handlers_exist(self, gp):
        assert any(h.nostack for h in gp.info.handlers.values())


class TestAllProtocolManifests:
    @pytest.mark.parametrize("name", list(TARGETS))
    def test_manifest_sites_exist_and_are_unique_lines(self, name):
        gp = generate_protocol(name)
        seen = set()
        for site in gp.manifest:
            text = gp.files[site.file]
            lines = text.splitlines()
            assert 1 <= site.line <= len(lines), site
            # Sites that expect reports must be unique per (file, line)
            # per checker, or the classification join is ambiguous.
            key = (site.checker, site.file, site.line)
            assert key not in seen, site
            seen.add(key)

    @pytest.mark.parametrize("name", list(TARGETS))
    def test_catalog_expansion_matches_manifest(self, name):
        gp = generate_protocol(name)
        expected = 0
        for spec in CATALOG[name]:
            per = 2 if spec.idiom == "msglen-runtime-flag" else 1
            expected += spec.count * per
        assert len(gp.manifest) == expected

    @pytest.mark.parametrize("name", list(TARGETS))
    def test_handler_counts(self, name):
        gp = generate_protocol(name)
        hw = sum(1 for h in gp.info.handlers.values() if h.kind == "hw")
        assert hw == gp.targets.hw_handlers


class TestTargetsTable:
    def test_all_six_protocols_defined(self):
        assert set(TARGETS) == {
            "bitvector", "dyn_ptr", "sci", "coma", "rac", "common"
        }

    def test_common_has_no_handlers(self):
        gp = generate_protocol("common")
        assert gp.info.handlers == {}

    def test_catalog_totals_match_paper(self):
        # 34 errors, 69 false positives (25 of them useless annotations),
        # 6 minor, 11 violations, 3 uncounted, 18 useful annotations.
        totals = {}
        for proto, specs in CATALOG.items():
            for spec in specs:
                per = 2 if spec.idiom == "msglen-runtime-flag" else 1
                totals[spec.label] = totals.get(spec.label, 0) + spec.count * per
        assert totals["error"] == 34
        assert totals["fp"] + totals["useless-annotation"] == 69
        assert totals["minor"] == 6
        assert totals["violation"] == 11
        assert totals["uncounted"] == 3
        assert totals["useful-annotation"] == 18
