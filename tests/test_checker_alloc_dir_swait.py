"""§9 checker unit tests: allocation failure, directory, send-wait."""

from repro.checkers import AllocFailChecker, DirectoryChecker, SendWaitChecker
from repro.project import program_from_source


def run_alloc(src):
    return AllocFailChecker().check(program_from_source(src))


def run_dir(src):
    return DirectoryChecker().check(program_from_source(src))


def run_swait(src):
    return SendWaitChecker().check(program_from_source(src))


class TestAllocFail:
    def test_checked_allocation_clean(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                if (DB_IS_ERROR(b)) { return; }
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            }
        """)
        assert result.reports == []

    def test_unchecked_use_flagged(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            }
        """)
        assert len(result.errors) == 1

    def test_debug_print_before_check_flagged(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                DEBUG_PRINT(b);
                if (DB_IS_ERROR(b)) { return; }
            }
        """)
        assert len(result.errors) == 1

    def test_free_before_check_flagged(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                DB_FREE();
            }
        """)
        assert len(result.errors) == 1

    def test_check_on_one_path_only(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                if (c) {
                    if (DB_IS_ERROR(b)) { return; }
                }
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            }
        """)
        assert len(result.errors) == 1

    def test_applied_counts_alloc_sites(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                if (DB_IS_ERROR(b)) { return; }
                b = DB_ALLOC();
                if (DB_IS_ERROR(b)) { return; }
            }
        """)
        assert result.applied == 2

    def test_one_report_per_path(self):
        result = run_alloc("""
            void h(void) {
                unsigned b;
                b = DB_ALLOC();
                DEBUG_PRINT(b);
                DEBUG_PRINT(b);
            }
        """)
        # after the first report the path resets to OK
        assert len(result.errors) == 1


class TestDirectory:
    def test_full_transaction_clean(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(HANDLER_GLOBALS(header.nh.addr));
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                DIR_WRITEBACK(HANDLER_GLOBALS(header.nh.addr), HANDLER_GLOBALS(dirEntry));
                return;
            }
        """)
        assert result.reports == []

    def test_read_only_transaction_clean(self):
        result = run_dir("""
            void h(void) {
                unsigned t;
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                t = HANDLER_GLOBALS(dirEntry) & 7;
                return;
            }
        """)
        assert result.reports == []

    def test_modify_without_writeback_flagged(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                return;
            }
        """)
        assert len(result.errors) == 1
        assert "never written back" in result.errors[0].message

    def test_read_before_load_flagged(self):
        result = run_dir("""
            void h(void) {
                unsigned t;
                t = HANDLER_GLOBALS(dirEntry) & 3;
                return;
            }
        """)
        assert len(result.errors) == 1
        assert "before DIR_LOAD" in result.errors[0].message

    def test_modify_before_load_flagged(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 1;
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_writeback_without_load_flagged(self):
        result = run_dir("""
            void h(void) {
                unsigned t;
                t = (addr << 3) + 64;
                DIR_WRITEBACK(t, v);
                return;
            }
        """)
        assert len(result.errors) == 1
        assert "explicitly" in result.errors[0].message

    def test_nak_excuses_missing_writeback(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                if (race) {
                    HANDLER_GLOBALS(header.nh.op) = MSG_NAK;
                    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
                    return;
                }
                DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
                return;
            }
        """)
        assert result.reports == []

    def test_speculative_backout_without_nak_flagged(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                if (race) { return; }
                DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_modify_after_writeback_needs_another_writeback(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 8;
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_reload_after_writeback_clean(self):
        result = run_dir("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(a1);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                DIR_WRITEBACK(a1, HANDLER_GLOBALS(dirEntry));
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(a2);
                return;
            }
        """)
        assert result.reports == []

    def test_applied_counts_operation_lines(self):
        result = run_dir("""
            void h(void) {
                unsigned t;
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
                t = HANDLER_GLOBALS(dirEntry) & 7;
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
                return;
            }
        """)
        assert result.applied == 4


class TestSendWait:
    def test_wait_send_then_wait_clean(self):
        result = run_swait("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                WAIT_FOR_PI_REPLY();
                return;
            }
        """)
        assert result.reports == []

    def test_wait_send_never_waited_flagged(self):
        result = run_swait("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                return;
            }
        """)
        assert len(result.errors) == 1
        assert "never waited" in result.errors[0].message

    def test_wrong_interface_wait_flagged(self):
        result = run_swait("""
            void h(void) {
                NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);
                WAIT_FOR_PI_REPLY();
                return;
            }
        """)
        assert len(result.errors) == 1
        assert "wrong" in result.errors[0].message or "needs" in result.errors[0].message

    def test_second_send_before_wait_flagged(self):
        result = run_swait("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
                WAIT_FOR_PI_REPLY();
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_async_sends_unconstrained(self):
        result = run_swait("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 0, 1, 0);
                NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
                return;
            }
        """)
        assert result.reports == []

    def test_stray_wait_is_legal(self):
        result = run_swait("void h(void) { WAIT_FOR_NI_REPLY(); return; }")
        assert result.reports == []

    def test_fall_off_end_while_waiting_flagged(self):
        result = run_swait("""
            void h(void) { IO_SEND(F_DATA, 1, 0, 1, 1, 0); }
        """)
        assert len(result.errors) == 1

    def test_wait_on_one_path_only(self):
        result = run_swait("""
            void h(void) {
                NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);
                if (c) { WAIT_FOR_NI_REPLY(); }
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_spin_wait_is_reported(self):
        # The §9 false-positive idiom: a real wait the checker cannot see.
        result = run_swait("""
            void h(void) {
                NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);
                while (!NI_REPLY_READY()) { SPIN(); }
                return;
            }
        """)
        assert len(result.errors) == 1

    def test_applied_counts_wait_ops(self):
        result = run_swait("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                WAIT_FOR_PI_REPLY();
                PI_SEND(F_DATA, 1, 0, 0, 1, 0);
                WAIT_FOR_NI_REPLY();
                return;
            }
        """)
        # wait-bit send + two wait macros; async send not counted
        assert result.applied == 3
