"""Deterministic fault injection: plans, injector mechanics, manifestation.

The acceptance criterion: with a seeded FaultPlan the §9 alloc-failure
and §7 lane-overflow bug classes *manifest* (non-clean SimStats) on a
workload that runs clean without the plan, and the whole thing is
reproducible from the seed alone.
"""

import json

import pytest

from repro.errors import FaultPlanError, InjectedFault
from repro.faults import (
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)
from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.project import program_from_source


def machine_for(src, dispatch, **kwargs):
    prog = program_from_source(src)
    funcs = {f.name: f for f in prog.functions()}
    return FlashMachine(funcs, dispatch, **kwargs)


# A handler that allocates a fresh buffer but never checks for failure —
# the §9 bug class.  Clean while allocation always succeeds.
ALLOC_NOCHECK = """
void AllocNoCheck(void) {
    unsigned buf;
    unsigned v;
    DB_FREE();
    buf = DB_ALLOC();
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

# The same handler with the correct DB_IS_ERROR guard.
ALLOC_CHECKED = """
void AllocChecked(void) {
    unsigned buf;
    unsigned v;
    DB_FREE();
    buf = DB_ALLOC();
    if (DB_IS_ERROR(buf)) { return; }
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

# Two sends per handler: fine at normal capacity, overruns when the
# injector forces a lane full.
CHATTY = """
void Chatty(void) {
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}
"""

ALLOC_PLAN = FaultPlan(
    rules=(FaultRule(site="alloc_fail", every=5),), seed=42)
OVERFLOW_PLAN = FaultPlan(
    rules=(FaultRule(site="lane_overflow", after=10, every=7),), seed=7)
WORKLOAD = WorkloadSpec(messages=50, opcode_weights=((1, 1),))


class TestPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultRule(site="cosmic_ray")

    def test_bad_every_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="alloc_fail", every=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="alloc_fail", probability=1.5)

    def test_bad_cycle_window_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="alloc_fail", from_cycle=10, until_cycle=5)

    def test_sites_is_closed_set(self):
        assert "alloc_fail" in SITES
        assert "lane_overflow" in SITES
        assert "handler_crash" in SITES

    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="alloc_fail", node=1, every=3, count=2),
                FaultRule(site="msg_dup", lane=2, probability=0.5),
            ),
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_fault_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(ALLOC_PLAN.to_json())
        assert load_fault_plan(str(path)) == ALLOC_PLAN

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": [{"site": "nope"}]}))
        with pytest.raises(FaultPlanError):
            load_fault_plan(str(path))


class TestInjectorMechanics:
    def test_after_and_every_gating(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail",
                                          after=2, every=3),))
        inj = FaultInjector(plan)
        fired = [inj.fires("alloc_fail") for _ in range(11)]
        # occurrences 1,2 skipped; then every 3rd eligible one fires.
        assert fired == [False, False, True, False, False, True,
                         False, False, True, False, False]

    def test_count_limits_firings(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail", count=2),))
        inj = FaultInjector(plan)
        assert sum(inj.fires("alloc_fail") for _ in range(10)) == 2

    def test_probability_is_seeded(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail",
                                          probability=0.3),), seed=5)
        first = [FaultInjector(plan).fires("alloc_fail")
                 for _ in range(1)]
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert ([a.fires("alloc_fail") for _ in range(64)]
                == [b.fires("alloc_fail") for _ in range(64)])
        assert first  # seeded draws, not time-dependent

    def test_handler_filter(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail",
                                          handler="Target"),))
        inj = FaultInjector(plan)
        inj.begin_handler(0, "Other")
        assert not inj.fires("alloc_fail")
        inj.begin_handler(0, "Target")
        assert inj.fires("alloc_fail")

    def test_lane_filter(self):
        plan = FaultPlan(rules=(FaultRule(site="msg_dup", lane=2),))
        inj = FaultInjector(plan)
        assert not inj.fires("msg_dup", lane=1)
        assert inj.fires("msg_dup", lane=2)

    def test_handler_crash_raises_on_tick(self):
        plan = FaultPlan(rules=(FaultRule(site="handler_crash",
                                          after=3),))
        inj = FaultInjector(plan)
        inj.begin_handler(0, "H")
        for _ in range(3):
            inj.tick(None)
        with pytest.raises(InjectedFault):
            inj.tick(None)

    def test_events_are_recorded(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail", every=2),))
        inj = FaultInjector(plan)
        inj.begin_handler(1, "H")
        for _ in range(4):
            inj.fires("alloc_fail")
        assert len(inj.events) == 2
        assert inj.counts_by_site() == {"alloc_fail": 2}
        assert all(e.node == 1 and e.handler == "H" for e in inj.events)


class TestManifestation:
    """Acceptance criterion 3: bug classes manifest under a plan."""

    def test_alloc_fail_clean_without_plan(self):
        m = machine_for(ALLOC_NOCHECK, {1: "AllocNoCheck"})
        stats = m.run(WORKLOAD)
        assert stats.clean
        assert stats.injected_faults == 0

    def test_alloc_fail_manifests_with_plan(self):
        m = machine_for(ALLOC_NOCHECK, {1: "AllocNoCheck"},
                        fault_plan=ALLOC_PLAN)
        stats = m.run(WORKLOAD)
        assert not stats.clean
        assert stats.use_after_free > 0
        assert stats.double_frees > 0
        assert stats.faults_by_site.get("alloc_fail", 0) > 0
        assert stats.fault_events

    def test_checked_handler_survives_the_same_plan(self):
        # The §9 fix: DB_IS_ERROR guard makes injected failures benign.
        m = machine_for(ALLOC_CHECKED, {1: "AllocChecked"},
                        fault_plan=ALLOC_PLAN)
        stats = m.run(WORKLOAD)
        assert stats.use_after_free == 0
        assert stats.double_frees == 0
        assert stats.faults_by_site.get("alloc_fail", 0) > 0

    def test_alloc_fail_deterministic_per_seed(self):
        def once():
            m = machine_for(ALLOC_NOCHECK, {1: "AllocNoCheck"},
                            fault_plan=ALLOC_PLAN)
            s = m.run(WORKLOAD)
            return (s.use_after_free, s.double_frees,
                    tuple(s.fault_events))
        assert once() == once()

    def test_lane_overflow_clean_without_plan(self):
        m = machine_for(CHATTY, {1: "Chatty"})
        stats = m.run(WORKLOAD)
        assert stats.clean
        assert stats.lane_overruns == 0

    def test_lane_overflow_manifests_with_plan(self):
        m = machine_for(CHATTY, {1: "Chatty"}, fault_plan=OVERFLOW_PLAN)
        stats = m.run(WORKLOAD)
        assert not stats.clean
        assert stats.lane_overruns > 0
        assert stats.lane_overflow_events > 0
        assert stats.deadlock is None          # degraded, not dead
        assert stats.faults_by_site.get("lane_overflow", 0) > 0

    def test_lane_overflow_deterministic_per_seed(self):
        def once():
            m = machine_for(CHATTY, {1: "Chatty"},
                            fault_plan=OVERFLOW_PLAN)
            s = m.run(WORKLOAD)
            return (s.lane_overruns, tuple(s.fault_events))
        assert once() == once()

    def test_msg_dup_and_delay_disturb_delivery(self):
        plan = FaultPlan(rules=(
            FaultRule(site="msg_dup", after=5, every=9),
            FaultRule(site="msg_delay", after=3, every=11),
        ), seed=13)
        m = machine_for(ALLOC_CHECKED, {1: "AllocChecked"},
                        fault_plan=plan)
        stats = m.run(WORKLOAD)
        assert stats.faults_by_site.get("msg_dup", 0) >= 0
        counts = stats.faults_by_site
        assert set(counts) <= SITES

    def test_handler_crash_is_survived_and_counted(self):
        plan = FaultPlan(rules=(FaultRule(site="handler_crash",
                                          after=40, every=50),), seed=3)
        m = machine_for(ALLOC_CHECKED, {1: "AllocChecked"},
                        fault_plan=plan)
        stats = m.run(WORKLOAD)
        assert stats.deadlock is None
        assert stats.injected_crashes > 0
        # a crashed handler is aborted, not counted as run
        assert stats.handlers_run + stats.injected_crashes == 50
