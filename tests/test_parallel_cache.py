"""The parallel checker fleet and the content-hash result cache.

Covers the PR's contract: a warm-cache run reproduces cold-run reports
exactly; editing one file, bumping a checker's source, or changing the
engine version invalidates exactly the affected entries; quarantines
and degradation notes survive the worker serialisation round-trip; and
``--jobs N`` output is byte-identical to serial output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro.mc.cache as cache_mod
from repro.checkers.base import CheckerResult, checker_names, run_all
from repro.lang.source import Location
from repro.mc import (
    Budget,
    Quarantine,
    Report,
    ReportSink,
    ResultCache,
    check_files,
    format_reports,
    merge_parts,
    metal_files,
    resolve_jobs,
    result_from_payload,
    result_to_payload,
    sink_from_payload,
    sink_to_payload,
)
from repro.project import Program

FILE_A = """
void HandlerA(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

FILE_B = """
void HandlerB(void) {
    SUBROUTINE_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    return;
}
"""


@pytest.fixture
def two_files(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(FILE_A)
    b.write_text(FILE_B)
    return [str(a), str(b)]


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _report_set(results):
    return {
        (r.checker, r.message, r.location, r.function, r.severity)
        for result in results.values()
        for r in result.reports
    }


def _formatted(results):
    return "\n".join(
        format_reports(result.reports, heading=name)
        for name, result in results.items()
    )


class TestParallelMatchesSerial:
    def test_fleet_equals_run_all(self, two_files):
        run = check_files(two_files, jobs=1)
        files = {p: Path(p).read_text() for p in two_files}
        serial = run_all(Program(files))
        assert set(run.results) == set(serial)
        assert _report_set(run.results) == _report_set(serial)
        for name in serial:
            assert run.results[name].applied == serial[name].applied

    def test_jobs2_byte_identical_to_jobs1(self, two_files):
        one = check_files(two_files, jobs=1)
        two = check_files(two_files, jobs=2)
        assert _formatted(one.results) == _formatted(two.results)

    def test_merge_is_partition_independent(self):
        loc1 = Location("z.c", 9, 1)
        loc2 = Location("a.c", 2, 5)
        r1 = Report(checker="c", message="m1", location=loc1)
        r2 = Report(checker="c", message="m2", location=loc2)
        part1 = CheckerResult(checker="c", reports=[r1], applied=2)
        part2 = CheckerResult(checker="c", reports=[r2, r1], applied=3)
        ab = merge_parts("c", [part1, part2])
        ba = merge_parts("c", [part2, part1])
        assert ab.reports == ba.reports  # sorted + deduplicated
        assert ab.reports[0].location.filename == "a.c"
        assert ab.applied == ba.applied == 5


class TestCacheCorrectness:
    def test_warm_run_reproduces_cold_reports_exactly(self, two_files, cache):
        cold = check_files(two_files, cache=cache)
        assert cache.stats.hits == 0 and cache.stats.misses > 0
        warm_cache = ResultCache(cache.root)
        warm = check_files(two_files, cache=warm_cache)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == cache.stats.misses
        assert _formatted(cold.results) == _formatted(warm.results)
        for name in cold.results:
            assert (cold.results[name].applied
                    == warm.results[name].applied)
            assert (cold.results[name].extra
                    == warm.results[name].extra)

    def test_editing_one_file_invalidates_only_its_entries(
            self, two_files, cache):
        check_files(two_files, cache=cache)
        Path(two_files[1]).write_text(FILE_B + "\nvoid extra(void) { return; }\n")
        second = ResultCache(cache.root)
        check_files(two_files, cache=second)
        unit_parallel = sum(
            1 for n in checker_names()
            if getattr(__import__("repro.checkers.base",
                                  fromlist=["get_checker"]).get_checker(n),
                       "unit_parallel"))
        global_items = len(checker_names()) - unit_parallel
        # Per-unit items over the *edited* unit miss, as does every
        # whole-program item (their key covers all files); items over
        # the untouched unit all hit.
        assert second.stats.misses == unit_parallel + global_items
        assert second.stats.hits == unit_parallel

    def test_checker_source_bump_invalidates_only_that_checker(
            self, two_files, cache, monkeypatch):
        check_files(two_files, cache=cache)
        original = cache_mod.checker_fingerprint

        def bumped(name):
            fp = original(name)
            return fp + "v2" if name == "buffer-race" else fp

        monkeypatch.setattr(cache_mod, "checker_fingerprint", bumped)
        import repro.mc.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod, "checker_fingerprint", bumped)
        second = ResultCache(cache.root)
        check_files(two_files, cache=second)
        assert second.stats.misses == len(two_files)  # buffer-race per unit
        assert second.stats.hits > 0

    def test_engine_version_change_invalidates_everything(
            self, two_files, cache, monkeypatch):
        check_files(two_files, cache=cache)
        import repro
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        second = ResultCache(cache.root)
        check_files(two_files, cache=second)
        assert second.stats.hits == 0
        assert second.stats.misses == cache.stats.misses

    def test_degraded_results_are_never_stored(self, two_files, cache):
        import time
        run = check_files(two_files, cache=cache,
                          deadline=time.time() - 1.0)
        assert all(r.degraded for r in run.results.values())
        assert cache.stats.stores == 0
        # and nothing partial can be served to a later unbudgeted run
        second = ResultCache(cache.root)
        clean = check_files(two_files, cache=second)
        assert second.stats.hits == 0
        assert not any(r.degraded for r in clean.results.values())

    def test_corrupt_entry_is_a_miss(self, two_files, cache):
        check_files(two_files, cache=cache)
        victim = next(cache.root.rglob("*.json"))
        victim.write_text("{not json")
        second = ResultCache(cache.root)
        check_files(two_files, cache=second)
        assert second.stats.misses == 1


class TestPayloadRoundTrip:
    def test_result_payload_round_trips_quarantines_and_notes(self):
        result = CheckerResult(checker="c")
        result.reports = [Report(
            checker="c", message="boom at %x", function="f",
            location=Location("x.c", 3, 7), severity="warning",
            backtrace=("f:3", "g:9"),
        )]
        result.applied = 42
        result.annotations = [Location("x.c", 1, 1)]
        result.extra = {"handlers_checked": 7}
        result.quarantines = [Quarantine(
            checker="c", function="f", phase="path-walk",
            error_type="RuntimeError", message="deliberate")]
        result.degraded = True
        result.degradation_notes = ["[c] f: exploration stopped"]
        back = result_from_payload(result_to_payload(result))
        assert back.reports == result.reports
        assert back.applied == result.applied
        assert back.annotations == result.annotations
        assert back.extra == result.extra
        assert back.quarantines == result.quarantines
        assert back.degraded is True
        assert back.degradation_notes == result.degradation_notes

    def test_sink_payload_round_trips(self):
        sink = ReportSink()
        sink.add(Report(checker="m", message="msg",
                        location=Location("y.c", 5, 2)))
        sink.add_quarantine(Quarantine(
            checker="m", function="g", phase="cfg-build",
            error_type="ValueError", message="bad"))
        sink.degradation_notes.append("[m] g: stopped")
        back = sink_from_payload(sink_to_payload(sink))
        assert back.reports == sink.reports
        assert back.quarantines == sink.quarantines
        assert back.degraded == sink.degraded
        assert back.degradation_notes == sink.degradation_notes

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_quarantine_survives_worker_round_trip(self, two_files, jobs):
        # End to end: a crashing checker is quarantined inside the work
        # item (possibly in a forked worker) and the parent still sees
        # the Quarantine record and degradation after the payload
        # round-trip.  The class lives in this file, so it has source on
        # disk and fork workers inherit its registration.
        from repro.checkers import base as checkers_base

        class BoomChecker(checkers_base.Checker):
            name = "boom-test"
            description = "always crashes"

            def check(self, program):
                raise RuntimeError("deliberate crash")

        checkers_base._REGISTRY[BoomChecker.name] = BoomChecker
        try:
            run = check_files(two_files, names=["boom-test"],
                              jobs=jobs, keep_going=True)
        finally:
            del checkers_base._REGISTRY[BoomChecker.name]
        result = run.results["boom-test"]
        assert result.degraded
        assert result.quarantines
        assert result.quarantines[0].error_type == "RuntimeError"
        assert "deliberate crash" in result.quarantines[0].message


class TestResolveJobsAndBudget:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs("1") == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs("8") == 8
        assert resolve_jobs("auto") >= 1

    def test_deadline_skips_are_noted(self, two_files):
        import time
        run = check_files(two_files, deadline=time.time() - 5)
        for result in run.results.values():
            assert result.degraded
            assert any("deadline" in n for n in result.degradation_notes)
            assert not result.reports

    def test_budgeted_metal_marks_degraded(self, two_files, tmp_path):
        from repro.checkers.metal_sources import FIGURE_2
        metal = tmp_path / "wait.metal"
        metal.write_text(FIGURE_2)
        run = metal_files(str(metal), two_files, budget_steps=1)
        assert any(sink.degraded for _p, sink in run.sinks)
        assert run.budget is not None and run.budget.exhausted
