"""Unit tests for the Experiment classification join (reports x manifest)."""

from repro.bench.tables import Experiment
from repro.flash.codegen.model import GeneratedProtocol, SeededSite
from repro.flash.codegen.protocols import TARGETS
from repro.project import ProtocolInfo


def make_protocol(source: str, manifest: list[SeededSite]):
    return GeneratedProtocol(
        name="tiny",
        files={"tiny.c": source},
        info=ProtocolInfo(name="tiny"),
        manifest=manifest,
        targets=TARGETS["common"],
    )


def classify(source, manifest):
    from repro.checkers import run_all
    experiment = Experiment()
    gp = make_protocol(source, manifest)
    results = run_all(gp.program())
    experiment._classify("tiny", gp, results)
    return experiment


RACY = """
void util(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    return;
}
"""


def test_report_matching_manifest_classified_by_label():
    site = SeededSite(checker="buffer-race", label="error", note="seeded",
                      file="tiny.c", line=5)
    experiment = classify(RACY, [site])
    cls = experiment._classified[("tiny", "buffer-race")]
    assert cls.errors == 1
    assert cls.unmatched == 0


def test_fp_label_counted_as_fp():
    site = SeededSite(checker="buffer-race", label="fp", note="debug",
                      file="tiny.c", line=5)
    experiment = classify(RACY, [site])
    cls = experiment._classified[("tiny", "buffer-race")]
    assert cls.fps == 1 and cls.errors == 0


def test_report_without_manifest_entry_is_unmatched():
    experiment = classify(RACY, [])
    cls = experiment._classified[("tiny", "buffer-race")]
    assert cls.unmatched == 1


def test_manifest_entry_for_wrong_checker_does_not_match():
    site = SeededSite(checker="msg-length", label="error", note="wrong",
                      file="tiny.c", line=5)
    experiment = classify(RACY, [site])
    cls = experiment._classified[("tiny", "buffer-race")]
    assert cls.unmatched == 1
    assert cls.errors == 0


def test_seeded_site_properties():
    error = SeededSite(checker="x", label="error", note="n",
                       file="f.c", line=3)
    annotation = SeededSite(checker="x", label="useful-annotation",
                            note="n", file="f.c", line=4)
    assert error.expects_report
    assert not annotation.expects_report
    assert error.key == ("f.c", 3)


def test_manifest_by_key_groups_sites():
    a = SeededSite(checker="x", label="error", note="", file="f.c", line=3)
    b = SeededSite(checker="y", label="fp", note="", file="f.c", line=3)
    gp = make_protocol("void util(void) { SUBROUTINE_PROLOGUE(); }", [a, b])
    index = gp.manifest_by_key()
    assert len(index[("f.c", 3)]) == 2
    assert gp.sites_for("x") == [a]
