"""Checker-pack lifecycle: discovery, manifest hardening, sandboxing,
cache keying, and the flagship *consistency* pack end to end.

The pack layer's contracts under test:

* a malformed pack is a structured ``pack error`` + exit 2, never a
  traceback and never a half-loaded registry;
* a loaded pack whose checkers find nothing changes **zero bytes** of
  the run's output (purity);
* a pack checker that raises is quarantined (``phase="pack"``), never
  a fleet crash, and a ``--resume`` of that run reproduces the same
  quarantine;
* pack identity (name@version + source bytes) is folded into cache
  keys, so a version bump invalidates exactly that pack's entries and
  builtin keys never move.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import repro.checkers  # noqa: F401  - registers the builtin checkers
from repro import cli
from repro.checkers.base import checker_names, checker_origin
from repro.flash.spec import SpecError, dump_spec, parse_spec
from repro.mc.cache import _CHECKER_FP, checker_fingerprint
from repro.packs import (
    PackError,
    clear_packs,
    discover_pack_dirs,
    load_manifest,
    load_pack,
    load_packs,
    loaded_packs,
)
from repro.packs.manifest import _parse_toml_subset, check_engine_constraint

REPO = Path(__file__).resolve().parent.parent
FLAGSHIP = REPO / "src" / "repro" / "packs" / "consistency"
DRIFT_C = REPO / "examples" / "consistency" / "drift_protocol.c"
DRIFT_SPEC = REPO / "examples" / "consistency" / "drift.spec"

CLEAN_C = """
void util(void) {
    SUBROUTINE_PROLOGUE();
    unsigned a;
    a = 1 + 2;
    return;
}
"""

QUIET_CHECKER = '''
from repro.checkers.base import Checker

class QuietChecker(Checker):
    name = "{name}"
    metal_loc = 0
    unit_parallel = False

    def check(self, program):
        result, sink = self._new_result()
        return self._finish(result, sink)
'''

BOOM_CHECKER = '''
from repro.checkers.base import Checker

class BoomChecker(Checker):
    name = "boom"
    metal_loc = 0
    unit_parallel = False

    def check(self, program):
        raise RuntimeError("kaboom")
'''


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    """Every test gets its own cache dir and a clean pack registry."""
    monkeypatch.setenv("MC_CHECK_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("MC_CHECK_PACK_PATH", raising=False)
    clear_packs()
    yield
    clear_packs()


def write_pack(root: Path, name="demo", version="1.0.0",
               checker_src=None, metal_src=None, engine="") -> Path:
    """A minimal on-disk pack; returns its directory."""
    root.mkdir(parents=True, exist_ok=True)
    python_line = 'python = ["checker.py"]\n' if checker_src else ""
    metal_line = 'metal = ["machine.metal"]\n' if metal_src else ""
    engine_line = f'engine = "{engine}"\n' if engine else ""
    (root / "pack.toml").write_text(
        f'[pack]\nname = "{name}"\nversion = "{version}"\n{engine_line}'
        f'\n[pack.checkers]\n{python_line}{metal_line}')
    if checker_src:
        (root / "checker.py").write_text(checker_src)
    if metal_src:
        (root / "machine.metal").write_text(metal_src)
    return root


def clean_file(tmp_path: Path) -> Path:
    path = tmp_path / "clean.c"
    path.write_text(CLEAN_C)
    return path


def check_json(*argv) -> tuple[int, dict]:
    """Run ``mc-check check ... --format json`` in-process and parse."""
    import io
    from contextlib import redirect_stdout
    out = io.StringIO()
    with redirect_stdout(out):
        code = cli.main(["check", *argv, "--format", "json"])
    return code, json.loads(out.getvalue())


# -- manifest hardening (satellite: never a traceback) -----------------------

class TestManifestHardening:

    def test_missing_manifest(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = cli.main(["check", str(clean_file(tmp_path)),
                         "--pack-dir", str(empty),
                         "--no-cache", "--jobs", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "pack error" in err
        assert "Traceback" not in err

    def test_corrupt_toml(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "pack.toml").write_text("name = [unclosed\n")
        code = cli.main(["check", str(clean_file(tmp_path)),
                         "--pack-dir", str(bad),
                         "--no-cache", "--jobs", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "pack error" in err
        assert "Traceback" not in err

    def test_bad_name_and_version(self, tmp_path):
        with pytest.raises(PackError, match="name"):
            load_manifest(write_pack(tmp_path / "a", name="Not Valid",
                                     checker_src=QUIET_CHECKER))
        with pytest.raises(PackError, match="version"):
            load_manifest(write_pack(tmp_path / "b", version="one",
                                     checker_src=QUIET_CHECKER))

    def test_engine_mismatch(self, tmp_path, capsys):
        pack = write_pack(tmp_path / "future", engine=">=99.0",
                          checker_src=QUIET_CHECKER.format(name="quiet"))
        code = cli.main(["check", str(clean_file(tmp_path)),
                         "--pack-dir", str(pack),
                         "--no-cache", "--jobs", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "requires engine" in err

    def test_engine_constraint_precision(self):
        # ">=1.0" accepts 1.0.3; "<2" rejects 2.0.0; lists are ANDed.
        check_engine_constraint(">=1.0", "1.0.3")
        check_engine_constraint(">=1.0, <2", "1.5.0")
        with pytest.raises(PackError):
            check_engine_constraint("<2", "2.0.0")
        with pytest.raises(PackError, match="bad engine constraint"):
            check_engine_constraint("~=1.0", "1.0.0")

    def test_listed_checker_missing(self, tmp_path):
        pack = write_pack(tmp_path / "p", checker_src=QUIET_CHECKER)
        (pack / "checker.py").unlink()
        with pytest.raises(PackError, match="does not exist"):
            load_manifest(pack)

    def test_no_checkers_at_all(self, tmp_path):
        root = tmp_path / "none"
        root.mkdir()
        (root / "pack.toml").write_text(
            '[pack]\nname = "none"\nversion = "1.0"\n')
        with pytest.raises(PackError, match="no checkers"):
            load_manifest(root)

    def test_toml_subset_parser_matches_flagship(self):
        # The 3.10 fallback must read the shipped manifest identically.
        text = (FLAGSHIP / "pack.toml").read_text()
        doc = _parse_toml_subset(text, "pack.toml")
        assert doc["pack"]["name"] == "consistency"
        assert doc["pack"]["checkers"]["python"] == ["consistency.py"]
        assert doc["pack"]["checkers"]["metal"] == ["len_reassign.metal"]
        try:
            import tomllib
        except ImportError:
            return
        assert doc == tomllib.loads(text)


# -- discovery ---------------------------------------------------------------

class TestDiscovery:

    def test_cli_env_project_precedence(self, tmp_path):
        a = write_pack(tmp_path / "a", name="aa",
                       checker_src=QUIET_CHECKER.format(name="q-a"))
        b = write_pack(tmp_path / "b", name="bb",
                       checker_src=QUIET_CHECKER.format(name="q-b"))
        project = tmp_path / "proj"
        c = write_pack(project / "packs" / "c", name="cc",
                       checker_src=QUIET_CHECKER.format(name="q-c"))
        (project / "mc-check.toml").write_text(
            '[packs]\ndirs = ["packs/c"]\n')
        dirs = discover_pack_dirs(
            [a], env={"MC_CHECK_PACK_PATH": str(b)}, project_root=project)
        assert [d.resolve() for d in dirs] == [
            a.resolve(), b.resolve(), c.resolve()]

    def test_container_dir_expands_sorted(self, tmp_path):
        write_pack(tmp_path / "zoo" / "z", name="zz",
                   checker_src=QUIET_CHECKER.format(name="q-z"))
        write_pack(tmp_path / "zoo" / "a", name="az",
                   checker_src=QUIET_CHECKER.format(name="q-az"))
        dirs = discover_pack_dirs([tmp_path / "zoo"], env={})
        assert [d.name for d in dirs] == ["a", "z"]

    def test_duplicate_dirs_deduped(self, tmp_path):
        a = write_pack(tmp_path / "a", name="aa",
                       checker_src=QUIET_CHECKER.format(name="q-a"))
        dirs = discover_pack_dirs(
            [a], env={"MC_CHECK_PACK_PATH": str(a)})
        assert len(dirs) == 1


# -- loading lifecycle -------------------------------------------------------

class TestLoading:

    def test_idempotent_reload(self, tmp_path):
        pack = write_pack(tmp_path / "p",
                          checker_src=QUIET_CHECKER.format(name="quiet"))
        first = load_pack(pack)
        assert load_pack(pack) is first
        assert [p.label for p in loaded_packs()] == ["demo@1.0.0"]

    def test_version_bump_is_an_upgrade(self, tmp_path):
        pack = write_pack(tmp_path / "p",
                          checker_src=QUIET_CHECKER.format(name="quiet"))
        load_pack(pack)
        write_pack(tmp_path / "p", version="2.0.0",
                   checker_src=QUIET_CHECKER.format(name="quiet"))
        load_pack(pack)
        assert [p.label for p in loaded_packs()] == ["demo@2.0.0"]
        assert checker_origin("quiet").version == "2.0.0"

    def test_duplicate_pack_name_different_root(self, tmp_path):
        load_pack(write_pack(tmp_path / "one",
                             checker_src=QUIET_CHECKER.format(name="q1")))
        other = write_pack(tmp_path / "two",
                           checker_src=QUIET_CHECKER.format(name="q2"))
        with pytest.raises(PackError, match="duplicate pack name"):
            load_pack(other)

    def test_collision_with_builtin_rolls_back(self, tmp_path):
        # Two classes: a fresh name then a collision with a builtin.
        # The load must fail AND unregister the fresh name (no residue).
        src = QUIET_CHECKER.format(name="fresh-name") + (
            "\n\nclass Impostor(QuietChecker):\n"
            '    name = "buffer-race"\n')
        pack = write_pack(tmp_path / "p", checker_src=src)
        before = set(checker_names())
        with pytest.raises(PackError, match="collides"):
            load_pack(pack)
        assert set(checker_names()) == before
        assert checker_origin("buffer-race").builtin
        assert loaded_packs() == []

    def test_module_without_checker_subclass(self, tmp_path):
        pack = write_pack(tmp_path / "p", checker_src="x = 1\n")
        with pytest.raises(PackError, match="no Checker subclass"):
            load_pack(pack)

    def test_module_that_raises_on_import(self, tmp_path):
        pack = write_pack(tmp_path / "p",
                          checker_src='raise ValueError("nope")\n')
        with pytest.raises(PackError, match="import failed"):
            load_pack(pack)

    def test_lint_dirty_metal_is_refused(self, tmp_path):
        # "orphan" is unreachable from start: the checker-of-checkers
        # must refuse the machine at load time.
        dirty = (
            "sm dirty_machine {\n"
            "    pat p = { FOO() } ;\n"
            "    start: p ==> stop ;\n"
            "    orphan: p ==> stop ;\n"
            "}\n")
        pack = write_pack(tmp_path / "p", metal_src=dirty)
        with pytest.raises(PackError, match="lint"):
            load_pack(pack)
        assert loaded_packs() == []

    def test_flagship_pack_loads(self):
        pack = load_pack(FLAGSHIP)
        assert pack.label == "consistency@1.0.0"
        assert set(pack.checkers) == {"consistency", "len-reassign"}


# -- cache keying ------------------------------------------------------------

class TestCacheKeys:

    def test_builtin_fingerprints_unmoved_by_pack_load(self):
        baseline = {n: checker_fingerprint(n) for n in checker_names()}
        load_pack(FLAGSHIP)
        _CHECKER_FP.clear()
        assert all(checker_fingerprint(n) == fp
                   for n, fp in baseline.items())

    def test_version_bump_invalidates_exactly_that_pack(self, tmp_path):
        pack = write_pack(tmp_path / "p",
                          checker_src=QUIET_CHECKER.format(name="quiet"))
        load_pack(pack)
        pack_fp = checker_fingerprint("quiet")
        builtin_fp = checker_fingerprint("buffer-race")
        write_pack(tmp_path / "p", version="1.0.1",
                   checker_src=QUIET_CHECKER.format(name="quiet"))
        load_pack(pack)
        assert checker_fingerprint("quiet") != pack_fp
        assert checker_fingerprint("buffer-race") == builtin_fp

    def test_source_edit_invalidates_too(self, tmp_path):
        pack = write_pack(tmp_path / "p",
                          checker_src=QUIET_CHECKER.format(name="quiet"))
        load_pack(pack)
        fp = checker_fingerprint("quiet")
        (pack / "checker.py").write_text(
            QUIET_CHECKER.format(name="quiet") + "\n# edited\n")
        _CHECKER_FP.clear()
        assert checker_fingerprint("quiet") != fp


# -- CLI surfaces ------------------------------------------------------------

class TestCliSurfaces:

    def test_checkers_text_listing(self, capsys):
        code = cli.main(["checkers", "--pack-dir", str(FLAGSHIP)])
        out = capsys.readouterr().out
        assert code == 0
        assert "builtin@1.0.0" in out
        assert "consistency@1.0.0" in out
        assert "len-reassign" in out

    def test_checkers_json_listing(self, capsys):
        code = cli.main(["checkers", "--pack-dir", str(FLAGSHIP),
                         "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["schema"] == 1
        by_name = {c["name"]: c for c in doc["checkers"]}
        assert by_name["buffer-race"]["builtin"] is True
        assert by_name["consistency"] == {
            "name": "consistency", "pack": "consistency",
            "version": "1.0.0", "builtin": False, "metal_loc": 0,
            "unit_parallel": False,
            "source": by_name["consistency"]["source"]}
        assert by_name["consistency"]["source"].endswith("consistency.py")
        packs = {p["name"]: p for p in doc["packs"]}
        assert sorted(packs["consistency"]["checkers"]) == [
            "consistency", "len-reassign"]

    def test_checker_flag_selects_pack_checker(self, tmp_path):
        code, doc = check_json(
            str(DRIFT_C), "--spec", str(DRIFT_SPEC),
            "--pack-dir", str(FLAGSHIP), "--checker", "consistency",
            "--no-cache", "--jobs", "1")
        assert code == 1
        assert {r["checker"] for r in doc["reports"]} == {"consistency"}

    def test_unknown_checker_is_structured_error(self, tmp_path, capsys):
        code = cli.main(["check", str(clean_file(tmp_path)),
                         "--checker", "no-such-checker",
                         "--no-cache", "--jobs", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no-such-checker" in err
        assert "Traceback" not in err

    def test_lint_covers_packs(self, tmp_path, capsys):
        assert cli.main(["lint", "--pack-dir", str(FLAGSHIP)]) == 0
        capsys.readouterr()
        dirty = (
            "sm dirty_machine {\n"
            "    pat p = { FOO() } ;\n"
            "    start: p ==> stop ;\n"
            "    orphan: p ==> stop ;\n"
            "}\n")
        pack = write_pack(tmp_path / "dirty", name="dirty",
                          metal_src=dirty)
        code = cli.main(["lint", "--pack-dir", str(pack)])
        out = capsys.readouterr().out
        assert code == 1
        assert "dirty@1.0.0:machine.metal" in out


# -- flagship pack end to end ------------------------------------------------

class TestFlagshipConsistency:

    def run_drift(self):
        return check_json(
            str(DRIFT_C), "--spec", str(DRIFT_SPEC),
            "--pack-dir", str(FLAGSHIP), "--no-cache", "--jobs", "1")

    def test_finds_every_seeded_drift_bug(self):
        code, doc = self.run_drift()
        assert code == 1
        messages = [r["message"] for r in doc["reports"]
                    if r["checker"] == "consistency"]
        assert any("PILocalGet sends LEN_NODATA" in m for m in messages)
        assert any("NIRemoteGet has a handler prologue" in m
                   for m in messages)
        assert any("handler table entry NILocalPut" in m for m in messages)
        assert any("dispatch config entry NILocalPut" in m
                   for m in messages)
        reassign = [r for r in doc["reports"]
                    if r["checker"] == "len_reassign"]
        assert len(reassign) == 1
        assert reassign[0]["function"] == "SWHandlerFlush"

    def test_pack_provenance_in_json(self):
        _code, doc = self.run_drift()
        pack_reports = [r for r in doc["reports"]
                        if r["checker"] in ("consistency", "len_reassign")]
        assert pack_reports
        assert all(r["pack"] == {"name": "consistency",
                                 "version": "1.0.0"}
                   for r in pack_reports)
        builtin_reports = [r for r in doc["reports"]
                           if r["checker"] not in ("consistency",
                                                   "len_reassign")]
        assert all(r.get("pack", {}).get("name") in (None, "builtin")
                   for r in builtin_reports)

    def test_explain_attributes_to_pack(self, tmp_path, capsys):
        _code, doc = self.run_drift()
        report = next(r for r in doc["reports"]
                      if r["checker"] == "consistency")
        path = tmp_path / "drift.json"
        path.write_text(json.dumps(doc))
        capsys.readouterr()
        assert cli.main(["explain", str(path), report["id"]]) == 0
        assert "from pack consistency@1.0.0" in capsys.readouterr().out

    def test_quiet_pack_is_byte_invisible(self, tmp_path):
        # The purity guarantee: a loaded pack that matches nothing
        # changes no byte of the run's JSON (modulo the random run id).
        target = clean_file(tmp_path)
        code_a, without = check_json(str(target), "--no-cache",
                                     "--jobs", "1")
        code_b, withpack = check_json(str(target), "--no-cache",
                                      "--jobs", "1",
                                      "--pack-dir", str(FLAGSHIP))
        assert code_a == code_b
        without.pop("run_id", None)
        withpack.pop("run_id", None)
        assert json.dumps(without, sort_keys=True) == \
            json.dumps(withpack, sort_keys=True)


# -- sandbox + resume --------------------------------------------------------

class TestSandbox:

    def test_raising_pack_checker_is_quarantined(self, tmp_path, capsys):
        pack = write_pack(tmp_path / "boom", name="boom",
                          checker_src=BOOM_CHECKER)
        code, doc = check_json(str(clean_file(tmp_path)),
                               "--pack-dir", str(pack),
                               "--no-cache", "--jobs", "1")
        assert code == 2
        quarantined = [q for q in doc["quarantines"]
                       if q["checker"] == "boom"]
        assert quarantined and quarantined[0]["phase"] == "pack"
        assert "kaboom" in quarantined[0]["message"]

    def test_quarantine_survives_resume(self, tmp_path):
        pack = write_pack(tmp_path / "boom", name="boom",
                          checker_src=BOOM_CHECKER)
        target = clean_file(tmp_path)
        code, doc = check_json(str(target), "--pack-dir", str(pack),
                               "--jobs", "1")
        assert code == 2
        run_id = doc["run_id"]
        code2, doc2 = check_json(str(target), "--pack-dir", str(pack),
                                 "--jobs", "1", "--resume", run_id)
        assert code2 == 2
        again = [q for q in doc2["quarantines"]
                 if q["checker"] == "boom"]
        assert again and again[0]["phase"] == "pack"

    def test_serial_run_all_sandboxes_packs_without_keep_going(self,
                                                               tmp_path):
        # Even `keep_going=False` (builtins crash the run) must not let
        # a pack checker escape its sandbox.
        from repro.checkers.base import run_all
        from repro.project import program_from_source
        pack = write_pack(tmp_path / "boom", name="boom",
                          checker_src=BOOM_CHECKER)
        load_pack(pack)
        program = program_from_source(CLEAN_C)
        results = run_all(program, names=["boom"], keep_going=False)
        result = results["boom"]
        assert result.quarantines
        assert result.quarantines[0].phase == "pack"
        assert result.degraded


# -- spec directives the flagship pack reads ---------------------------------

class TestSpecDirectives:

    def test_message_and_dispatch_roundtrip(self):
        info = parse_spec(DRIFT_SPEC.read_text())
        assert info.messages["PILocalGet"] == "LEN_NODATA"
        assert info.dispatch[3] == "NILocalPut"
        again = parse_spec(dump_spec(info))
        assert again.messages == info.messages
        assert again.dispatch == info.dispatch

    def test_duplicate_dispatch_opcode_rejected(self):
        text = ("protocol p\n"
                "dispatch 1 A\n"
                "dispatch 1 B\n")
        with pytest.raises(SpecError, match="dispatch"):
            parse_spec(text)
