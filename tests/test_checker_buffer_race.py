"""§4 buffer race checker unit tests."""

from repro.checkers import BufferRaceChecker
from repro.project import program_from_source


def run(src):
    return BufferRaceChecker().check(program_from_source(src))


def test_read_without_wait_flagged():
    result = run("""
        void h(void) { unsigned v; v = MISCBUS_READ_DB(addr, 0); }
    """)
    assert len(result.errors) == 1


def test_read_after_wait_clean():
    result = run("""
        void h(void) {
            unsigned v;
            WAIT_FOR_DB_FULL(addr);
            v = MISCBUS_READ_DB(addr, 0);
        }
    """)
    assert result.reports == []


def test_wait_on_one_path_only():
    result = run("""
        void h(void) {
            unsigned v;
            if (c) { WAIT_FOR_DB_FULL(addr); }
            v = MISCBUS_READ_DB(addr, 0);
        }
    """)
    assert len(result.errors) == 1


def test_wait_on_both_paths_clean():
    result = run("""
        void h(void) {
            unsigned v;
            if (c) { WAIT_FOR_DB_FULL(addr); } else { WAIT_FOR_DB_FULL(addr); }
            v = MISCBUS_READ_DB(addr, 0);
        }
    """)
    assert result.reports == []


def test_legacy_macro_checked():
    result = run("""
        void h(void) { unsigned v; v = MISCBUS_READ(addr, 0); }
    """)
    assert len(result.errors) == 1


def test_wait_late_on_path_still_race():
    result = run("""
        void h(void) {
            unsigned v;
            v = MISCBUS_READ_DB(addr, 0);
            WAIT_FOR_DB_FULL(addr);
        }
    """)
    assert len(result.errors) == 1


def test_applied_counts_unique_read_sites():
    result = run("""
        void h1(void) {
            unsigned v;
            WAIT_FOR_DB_FULL(addr);
            v = MISCBUS_READ_DB(addr, 0);
            v = MISCBUS_READ_DB(addr, 4);
        }
        void h2(void) {
            unsigned v;
            WAIT_FOR_DB_FULL(addr);
            v = MISCBUS_READ(addr, 8);
        }
    """)
    assert result.applied == 3


def test_multiple_functions_independent():
    result = run("""
        void good(void) {
            unsigned v;
            WAIT_FOR_DB_FULL(addr);
            v = MISCBUS_READ_DB(addr, 0);
        }
        void bad(void) { unsigned v; v = MISCBUS_READ_DB(addr, 0); }
    """)
    assert len(result.errors) == 1
    assert result.errors[0].function == "bad"


def test_read_in_condition_detected():
    result = run("""
        void h(void) {
            if (MISCBUS_READ_DB(addr, 0) == 5) { f(); }
        }
    """)
    assert len(result.errors) == 1


def test_two_reads_one_report_each_path_continues():
    # The checker stays in start after reporting ("to catch further
    # violations along the path").
    result = run("""
        void h(void) {
            unsigned v;
            v = MISCBUS_READ_DB(addr, 0);
            v = MISCBUS_READ_DB(addr, 4);
        }
    """)
    assert len(result.errors) == 2
