"""Unparser tests, including hypothesis round-trip properties."""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse, parse_expression, parse_statement
from repro.lang.unparse import unparse_expr, unparse_stmt, unparse_unit


class TestExprUnparse:
    def test_simple(self):
        assert unparse_expr(parse_expression("a + b")) == "a + b"

    def test_minimal_parens_precedence(self):
        assert unparse_expr(parse_expression("(a + b) * c")) == "(a + b) * c"
        assert unparse_expr(parse_expression("a + b * c")) == "a + b * c"

    def test_nested_calls(self):
        text = "f(g(x), y + 1)"
        assert unparse_expr(parse_expression(text)) == text

    def test_member_and_index(self):
        text = "a.b[i]->c"
        assert unparse_expr(parse_expression(text)) == "a.b[i]->c"

    def test_assignment(self):
        assert unparse_expr(parse_expression("a = b + 1")) == "a = b + 1"

    def test_ternary(self):
        assert unparse_expr(parse_expression("a ? b : c")) == "a ? b : c"

    def test_unary(self):
        assert unparse_expr(parse_expression("-x + !y")) == "-x + !y"

    def test_handler_globals_lvalue(self):
        text = "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA"
        assert unparse_expr(parse_expression(text)) == text


class TestStmtUnparse:
    def test_if_else(self):
        stmt = parse_statement("if (a) { f(); } else { g(); }")
        text = unparse_stmt(stmt)
        assert "if (a)" in text and "else" in text

    def test_for_loop(self):
        stmt = parse_statement("for (i = 0; i < 10; i++) { f(); }")
        assert "for (i = 0; i < 10; i++)" in unparse_stmt(stmt)

    def test_switch(self):
        stmt = parse_statement("switch (x) { case 1: break; default: break; }")
        text = unparse_stmt(stmt)
        assert "switch (x)" in text and "case 1:" in text


# -- round-trip property: parse(unparse(parse(x))) == parse(x) -------------

_EXPRESSIONS = st.sampled_from([
    "a", "1", "a + b * c", "f(a, b)", "a.b->c[2]", "(a + b) << 2",
    "a ? b + 1 : c", "!(a && b) || c", "x = y = z + 1", "p = &v",
    "*p + a[i]", "(unsigned)x + 1", "sizeof(x)", "a % b / c",
    "HANDLER_GLOBALS(header.nh.len) = LEN_WORD",
    "NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0)",
    "a & 0xff | b ^ 3", "~mask >> 4", "x += y -= 2", "a, b, c",
])


@given(_EXPRESSIONS)
def test_expression_round_trip(text):
    first = parse_expression(text)
    rendered = unparse_expr(first)
    second = parse_expression(rendered)
    assert first == second


_atoms = st.sampled_from(["a", "b", "c", "x", "1", "2", "42"])
_binops = st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", "==", "<"])


@st.composite
def random_expr_text(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(_atoms)
    form = draw(st.integers(0, 3))
    if form == 0:
        left = draw(random_expr_text(depth=depth - 1))
        right = draw(random_expr_text(depth=depth - 1))
        op = draw(_binops)
        return f"({left}) {op} ({right})"
    if form == 1:
        inner = draw(random_expr_text(depth=depth - 1))
        return f"f({inner})"
    if form == 2:
        inner = draw(random_expr_text(depth=depth - 1))
        return f"!({inner})"
    cond = draw(random_expr_text(depth=depth - 1))
    a = draw(random_expr_text(depth=depth - 1))
    b = draw(random_expr_text(depth=depth - 1))
    return f"({cond}) ? ({a}) : ({b})"


@given(random_expr_text())
@settings(max_examples=200)
def test_generated_expression_round_trip(text):
    first = parse_expression(text)
    second = parse_expression(unparse_expr(first))
    assert first == second


def test_unit_round_trip_on_flash_style_code():
    src = """\
struct Header { unsigned len; unsigned op; };
static unsigned counter = 0;
void handler(void)
{
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if (addr > 16) {
        WAIT_FOR_DB_FULL(addr);
        counter = MISCBUS_READ_DB(addr, 4);
    } else {
        counter += 1;
    }
    for (addr = 0; addr < 4; addr++) {
        counter = counter << 1;
    }
    switch (counter) {
    case 0:
        PI_SEND(F_DATA, 1, 0, 1, 1, 0);
        break;
    default:
        break;
    }
    DB_FREE();
    return;
}
"""
    unit1 = parse(src, "a.c")
    text = unparse_unit(unit1)
    unit2 = parse(text, "b.c")
    assert len(unit1.decls) == len(unit2.decls)
    body1 = unit1.function("handler").body
    body2 = unit2.function("handler").body
    assert body1 == body2


def test_unit_round_trip_on_generated_protocol(bitvector):
    # Every generated file must survive unparse -> reparse structurally.
    prog = bitvector.program()
    unit = prog.units["bitvector_sw.c"]
    text = unparse_unit(unit)
    reparsed = parse(text, "rt.c")
    assert [f.name for f in reparsed.functions()] == \
        [f.name for f in unit.functions()]
