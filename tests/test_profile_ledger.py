"""Flight-recorder invariants: profiler, run ledger, live progress.

Three pillars, one correctness rule each:

* **profile** — a crash-plan run with retries must profile to the same
  deterministic cost tree as its clean re-run (orphan/superseded spans
  are excluded from attribution);
* **ledger** — two byte-identical runs must diff to "no drift, exit 0",
  while an injected report change or slowdown must exit nonzero;
* **progress** — ``--progress`` is stderr-only chatter computed *from*
  the run; stdout (the reports) stays byte-identical with it on or off.

Plus hardening: every read-a-file verb (``stats``, ``explain``,
``profile``, ``history``, ``diff``) must turn corrupt/truncated/missing
input into a structured exit-2 error, never a traceback.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule
from repro.mc import SupervisorPolicy, check_files
from repro.obs import Observation, read_trace, span_record
from repro.obs.ledger import (
    RunLedger,
    config_fingerprint,
    diff_runs,
    find_run,
    format_diff,
    format_history,
    make_record,
    read_ledger,
    reports_digest,
    reports_from_doc,
)
from repro.obs.profile import build_profile, deterministic_view, format_profile
from repro.obs.progress import (
    ProgressReporter,
    read_heartbeats,
    write_heartbeat,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

FILE_A = """
void HandlerA(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

FILE_B = """
void HandlerB(void) {
    SUBROUTINE_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    return;
}
"""

#: A handler with a real diagnostic (read with no wait), used to inject
#: report drift between two ledger records.
BUGGY = """
void HandlerBug(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    return;
}
"""


@pytest.fixture
def two_files(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(FILE_A)
    b.write_text(FILE_B)
    return [str(a), str(b)]


def run_cli(*argv, timeout=120, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["MC_CHECK_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def _run_id_from(proc) -> str:
    for line in proc.stderr.splitlines():
        if line.startswith("run: id="):
            return line.split("=", 1)[1].strip()
    raise AssertionError(f"no run id on stderr:\n{proc.stderr}")


# -- the profiler -------------------------------------------------------------

class TestProfile:
    def _traced(self, files, tmp_path, *, name, jobs=2, policy=None):
        trace = tmp_path / f"{name}.jsonl"
        observation = Observation(trace_path=str(trace))
        run = check_files(files, jobs=jobs, keep_going=True, policy=policy,
                          observation=observation)
        observation.finalize(run)
        return run, read_trace(trace)

    def test_profile_structure_and_accounting(self, two_files, tmp_path):
        run, records = self._traced(two_files, tmp_path, name="t")
        profile = build_profile(records)
        assert profile["schema"] == 1
        assert set(profile["phases"]) == {"parse", "engine", "dispatch"}
        # Every fleet item is attributed to exactly one checker bucket.
        items = sum(agg["items"] for agg in profile["checkers"].values())
        assert items == run.supervision.completed
        assert profile["cache"]["items_fresh"] == items
        # Engine work shows up as functions with their counters summed.
        assert profile["functions"]
        assert all(f["counters"].get("steps", 0) > 0
                   for f in profile["functions"])
        assert profile["hotspots"] == sorted(
            profile["functions"],
            key=lambda a: (-a["wall"], a["checker"], a["function"]))[:10]
        # The critical path descends from the run span into one item.
        path = profile["critical_path"]
        assert path[0]["kind"] == "run"
        assert path[1]["kind"] == "checker"
        assert profile["run"]["jobs"] == 2
        text = format_profile(profile)
        assert "critical path" in text and "hotspots" in text

    def test_crash_plan_profiles_to_the_clean_cost_tree(self, two_files,
                                                        tmp_path):
        """The ISSUE acceptance test: orphan/superseded attempts are
        excluded, so a run that crashed and retried attributes exactly
        the surviving work — equal to a clean re-run's tree."""
        plan = FaultPlan(rules=(
            FaultRule(site="worker_crash", after=0, every=2, count=3),))
        crashed, crash_records = self._traced(
            two_files, tmp_path, name="crash",
            policy=SupervisorPolicy(fault_plan=plan))
        assert crashed.supervision.crashes == 3
        clean, clean_records = self._traced(two_files, tmp_path,
                                            name="clean")
        crash_view = deterministic_view(build_profile(crash_records))
        clean_view = deterministic_view(build_profile(clean_records))
        assert crash_view == clean_view
        # The raw traces differ (extra attempts), the views must not.
        assert len(crash_records) >= len(clean_records)

    def test_orphan_and_superseded_spans_are_dropped(self):
        def rec(span_id, parent, kind, name, item, wall, attrs=None,
                counters=None):
            return span_record(
                span_id=span_id, parent=parent, kind=kind, name=name,
                item=item, attempt=0, seq=0, t0=0.0, wall=wall, cpu=wall,
                status="ok", counters=counters or {}, attrs=attrs or {})

        records = [
            rec("run", None, "run", "mc-check", None, 9.0),
            rec("i0a0", None, "checker", "buffer-race", 0, 5.0,
                attrs={"superseded": True}),
            rec("i0a0.1", "i0a0", "function", "F", 0, 4.0,
                attrs={"superseded": True, "checker": "buffer-race"},
                counters={"steps": 99}),
            rec("i0a1", None, "checker", "buffer-race", 0, 2.0),
            rec("i0a1.1", "i0a1", "function", "F", 0, 1.0,
                attrs={"checker": "buffer-race"}, counters={"steps": 7}),
            rec("i1a0.1", "i1a0", "function", "G", 1, 3.0,
                attrs={"orphan": True, "checker": "buffer-race"}),
        ]
        profile = build_profile(records)
        assert profile["checkers"]["buffer-race"]["items"] == 1
        [f] = profile["functions"]
        assert (f["function"], f["calls"], f["counters"]["steps"]) \
            == ("F", 1, 7)
        # Only the surviving attempt's wall is attributed.
        assert profile["phases"]["engine"]["wall"] == 1.0
        assert profile["run"]["spans"] == 3

    def test_resolved_items_count_into_cache_attribution(self):
        def item(span_id, status):
            return span_record(
                span_id=span_id, parent="run", kind="checker", name="c",
                item=int(span_id[1:]), attempt=None, seq=0, t0=0.0,
                wall=0.0, cpu=0.0, status=status, counters={}, attrs={})

        run = span_record(
            span_id="run", parent=None, kind="run", name="mc-check",
            item=None, attempt=None, seq=0, t0=0.0, wall=1.0, cpu=1.0,
            status="ok", counters={"cache.hits": 2, "summary.hits": 5},
            attrs={})
        profile = build_profile(
            [run, item("i0", "cached"), item("i1", "cached"),
             item("i2", "replayed"), item("i3", "ok")])
        cache = profile["cache"]
        assert cache["items_fresh"] == 1
        assert cache["items_cached"] == 2
        assert cache["items_replayed"] == 1
        assert cache["cache.hits"] == 2
        assert cache["summary.hits"] == 5

    def test_empty_trace_is_a_structured_error(self):
        with pytest.raises(ReproError, match="no usable spans"):
            build_profile([])
        orphan_only = [span_record(
            span_id="x", parent=None, kind="checker", name="c", item=0,
            attempt=0, seq=0, t0=0.0, wall=0.0, cpu=0.0, status="ok",
            counters={}, attrs={"orphan": True})]
        with pytest.raises(ReproError, match="no usable spans"):
            build_profile(orphan_only)


# -- the ledger (unit) --------------------------------------------------------

def _record(run_id, *, reports=None, counters=None, wall=1.0, command="check",
            config=None, **kwargs):
    return make_record(
        run_id=run_id, command=command, files=["a.c"],
        config=config or {"jobs": 1}, wall=wall, exit_code=0,
        reports=reports or {}, counters=counters, now=1000.0, **kwargs)


class TestLedgerUnit:
    def test_fingerprints_are_stable_and_order_independent(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))
        assert reports_digest(["x", "y"]) == reports_digest(["y", "x"])
        assert reports_digest([]) != reports_digest(["x"])

    def test_record_shape(self):
        record = _record("r1", reports={"abc": {"checker": "c"}},
                         counters={"n": 3}, trace="/tmp/t.jsonl")
        assert record["schema"] == 1
        assert record["run"] == "r1"
        assert record["config_fp"] == config_fingerprint({"jobs": 1})
        assert record["reports_digest"] == reports_digest(["abc"])
        assert set(record["versions"]) == {
            "repro", "engine_fp", "report_schema", "payload_schema"}
        assert record["trace"] == "/tmp/t.jsonl"
        assert record["interrupted"] is False

    def test_reports_from_doc_keeps_verdicts_and_skips_junk(self):
        doc = {"reports": [
            {"id": "a1", "checker": "c", "file": "f.c", "line": 3,
             "function": "F", "message": "m"},
            {"id": "b2", "checker": "sim", "verdict": "crash",
             "message": "x"},
            {"no_id": True}, "junk",
        ]}
        reports = reports_from_doc(doc)
        assert set(reports) == {"a1", "b2"}
        assert reports["b2"]["verdict"] == "crash"
        assert "verdict" not in reports["a1"]

    def test_append_read_roundtrip_skips_corruption(self, tmp_path):
        path = tmp_path / "deep" / "ledger.jsonl"
        ledger = RunLedger(path)
        assert ledger.append(_record("r1"))
        assert ledger.append(_record("r2"))
        with path.open("a") as fh:
            fh.write('{"schema": 1, "run": "r3", "tru\n')    # torn tail
            fh.write("not json at all\n")
            fh.write(json.dumps({"schema": 999, "run": "other"}) + "\n")
        records = read_ledger(path)
        assert [r["run"] for r in records] == ["r1", "r2"]
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_unwritable_ledger_disables_itself(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        ledger = RunLedger(blocker / "ledger.jsonl")   # parent is a file
        assert ledger.append(_record("r1")) is False
        assert ledger.disabled
        assert ledger.append(_record("r2")) is False

    def test_find_run_prefix_resolution(self):
        records = [_record("aaa111"), _record("aab222"), _record("aaa111")]
        assert find_run(records, "aaa111") is records[2]   # latest wins
        assert find_run(records, "aab")["run"] == "aab222"
        with pytest.raises(ReproError, match="ambiguous"):
            find_run(records, "aa")
        with pytest.raises(ReproError, match="no ledger record"):
            find_run(records, "zzz")
        with pytest.raises(ReproError, match="ledger is empty"):
            find_run([], "zzz")

    def test_identical_runs_have_no_drift(self):
        reports = {"abc": {"checker": "c", "function": "F", "message": "m",
                           "file": "f.c", "line": 3}}
        diff = diff_runs(_record("r1", reports=reports, wall=1.0),
                         _record("r2", reports=reports, wall=1.1))
        assert diff["drift"] is False
        assert diff["regression"] is False
        assert diff["reports"] == {"new": [], "lost": [], "changed": []}
        assert not diff["config_changed"]
        assert "no report drift" in format_diff(diff)

    def test_new_and_lost_reports_drive_drift(self):
        a = _record("r1", reports={"old": {
            "checker": "c", "function": "F", "message": "gone",
            "file": "f.c", "line": 1}})
        b = _record("r2", reports={"new": {
            "checker": "c", "function": "G", "message": "fresh",
            "file": "f.c", "line": 9}})
        diff = diff_runs(a, b)
        assert diff["drift"] is True and diff["regression"] is True
        assert [e["id"] for e in diff["reports"]["new"]] == ["new"]
        assert [e["id"] for e in diff["reports"]["lost"]] == ["old"]
        text = format_diff(diff)
        assert "+ new" in text and "- old" in text and "DRIFT" in text

    def test_moved_report_folds_into_changed(self):
        identity = {"checker": "c", "function": "F", "message": "m"}
        a = _record("r1", reports={
            "id_a": {**identity, "file": "f.c", "line": 3}})
        b = _record("r2", reports={
            "id_b": {**identity, "file": "f.c", "line": 30}})
        diff = diff_runs(a, b)
        assert diff["reports"]["new"] == [] and diff["reports"]["lost"] == []
        [moved] = diff["reports"]["changed"]
        assert (moved["id_a"], moved["id_b"]) == ("id_a", "id_b")
        assert (moved["from"], moved["to"]) == ("f.c:3", "f.c:30")
        assert diff["drift"] is True        # a move is still drift

    def test_wall_regression_needs_ratio_and_floor(self):
        # 2x slower but only +0.2s: under the absolute floor, not a
        # regression (scheduler jitter on fast runs must not gate CI).
        fast = diff_runs(_record("r1", wall=0.2), _record("r2", wall=0.4))
        assert fast["wall"]["regression"] is False
        # +40% and +2s: past both bars.
        slow = diff_runs(_record("r1", wall=5.0), _record("r2", wall=7.0))
        assert slow["wall"]["regression"] is True
        assert slow["regression"] is True and slow["drift"] is False
        assert "REGRESSION" in format_diff(slow)
        # Custom threshold: +100% required, +40% passes again.
        lax = diff_runs(_record("r1", wall=5.0), _record("r2", wall=7.0),
                        wall_threshold=1.0)
        assert lax["regression"] is False

    def test_counter_deltas_are_informational(self):
        diff = diff_runs(_record("r1", counters={"cache.hits": 0, "n": 2}),
                         _record("r2", counters={"cache.hits": 9, "n": 2}))
        assert diff["counters"] == {
            "cache.hits": {"a": 0, "b": 9, "delta": 9}}
        assert diff["regression"] is False

    def test_history_renders_newest_first_with_flags(self):
        records = [_record("older-run"),
                   _record("newer-run", interrupted=True, trace="/t.jsonl")]
        text = format_history(records)
        assert text.index("newer-run") < text.index("older-run")
        assert "interrupted,traced" in text
        assert format_history([]) == "(ledger is empty)"
        assert "1 older run(s) not shown" in format_history(records, limit=1)


# -- the ledger (end to end) --------------------------------------------------

class TestLedgerCLI:
    def _check(self, files, cache_dir, *extra):
        proc = run_cli("check", *files, "--format", "json",
                       "--feasibility", "off", "--keep-going", *extra,
                       cache_dir=cache_dir)
        assert proc.returncode in (0, 1), proc.stderr
        return proc

    def test_every_run_is_recorded_and_diffable(self, two_files, tmp_path):
        cache = tmp_path / "cache"
        run_a = _run_id_from(self._check(two_files, cache))
        run_b = _run_id_from(self._check(two_files, cache))
        records = read_ledger(cache / "ledger.jsonl")
        assert [r["run"] for r in records] == [run_a, run_b]
        assert records[0]["reports_digest"] == records[1]["reports_digest"]
        assert records[0]["config_fp"] == records[1]["config_fp"]
        assert records[1]["counters"].get("cache.hits", 0) > 0

        history = run_cli("history", cache_dir=cache)
        assert history.returncode == 0
        assert run_a in history.stdout and run_b in history.stdout

        # Back-to-back identical runs: zero drift, exit 0.
        diff = run_cli("diff", run_a, run_b, cache_dir=cache)
        assert diff.returncode == 0, diff.stdout + diff.stderr
        assert "no report drift" in diff.stdout

    def test_injected_report_change_fails_the_diff(self, two_files,
                                                   tmp_path):
        cache = tmp_path / "cache"
        run_a = _run_id_from(self._check(two_files, cache))
        bug = tmp_path / "bug.c"
        bug.write_text(BUGGY)
        run_b = _run_id_from(
            self._check(two_files + [str(bug)], cache))
        diff = run_cli("diff", run_a, run_b, "--format", "json",
                       cache_dir=cache)
        assert diff.returncode == 1
        doc = json.loads(diff.stdout)
        assert doc["drift"] is True
        assert doc["reports"]["new"], "the injected bug must surface"
        assert any(e.get("file", "").endswith("bug.c")
                   for e in doc["reports"]["new"])

    def test_no_cache_run_writes_no_ledger(self, two_files, tmp_path):
        cache = tmp_path / "cache"
        proc = run_cli("check", *two_files, "--no-cache", "--keep-going",
                       "--feasibility", "off", cache_dir=cache)
        assert proc.returncode in (0, 1)
        assert not (cache / "ledger.jsonl").exists()

    def test_profile_resolves_a_traced_run_id(self, two_files, tmp_path):
        cache = tmp_path / "cache"
        trace = tmp_path / "t.jsonl"
        run_id = _run_id_from(
            self._check(two_files, cache, "--trace", str(trace)))
        proc = run_cli("profile", run_id, cache_dir=cache)
        assert proc.returncode == 0, proc.stderr
        assert "critical path" in proc.stdout
        # Prefix resolution works for profile too.
        assert run_cli("profile", run_id[:8],
                       cache_dir=cache).returncode == 0

    def test_profile_of_untraced_run_says_how_to_fix_it(self, two_files,
                                                        tmp_path):
        cache = tmp_path / "cache"
        run_id = _run_id_from(self._check(two_files, cache))
        proc = run_cli("profile", run_id, cache_dir=cache)
        assert proc.returncode == 2
        assert "rerun it with --trace" in proc.stderr
        assert "Traceback" not in proc.stderr


# -- live progress ------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProgressReporter:
    def _reporter(self, **kwargs):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=1.0,
                                    clock=clock, **kwargs)
        return reporter, clock, stream

    def test_ticks_are_throttled_but_finish_always_renders(self):
        reporter, clock, stream = self._reporter()
        stats = SimpleNamespace(completed=0, quarantined=0, retried=0)
        reporter.begin(total=10, resolved=2)
        for i in range(50):
            clock.t += 0.1                 # 5 seconds total
            stats.completed = i // 10
            reporter.tick(stats, busy=2)
        reporter.finish(stats)
        lines = stream.getvalue().splitlines()
        # begin + at most one per simulated second + the final line.
        assert 3 <= len(lines) <= 7
        assert lines[0].startswith("progress: 2/10 items (20%)")
        assert lines[-1].startswith("progress(done): 6/10 items (60%)")

    def test_rate_eta_and_flight_come_from_fresh_items_only(self):
        reporter, clock, stream = self._reporter()
        reporter.begin(total=8, resolved=4)
        clock.t = 2.0
        stats = SimpleNamespace(completed=2, quarantined=0, retried=1)
        reporter.tick(stats, busy=2)
        line = stream.getvalue().splitlines()[-1]
        # 2 fresh items in 2s = 1.0 items/s; 2 remaining => eta 2s.
        assert "6/8 items (75%)" in line
        assert "1.0 items/s" in line
        assert "eta 2s" in line
        assert "2 in flight" in line
        assert "retries 1" in line

    def test_all_cached_run_renders_without_rates(self):
        reporter, clock, stream = self._reporter()
        reporter.begin(total=5, resolved=5)
        reporter.finish(None)
        final = stream.getvalue().splitlines()[-1]
        assert "5/5 items (100%)" in final
        assert "all resolved from cache" in final

    def test_worker_liveness_from_heartbeats(self, tmp_path):
        write_heartbeat(str(tmp_path), item=0, attempt=0, event="start")
        write_heartbeat(str(tmp_path), item=0, attempt=0, event="done")
        beats = read_heartbeats(tmp_path)
        [beat] = beats.values()
        assert beat["event"] == "done" and beat["item"] == 0

        # Synthesize one live and one stalled worker.
        (tmp_path / "hb-111.jsonl").write_text(
            json.dumps({"pid": 111, "t": 100.0, "item": 1, "attempt": 0,
                        "event": "start"}) + "\n")
        (tmp_path / "hb-222.jsonl").write_text(
            json.dumps({"pid": 222, "t": 199.0, "item": 2, "attempt": 0,
                        "event": "start"}) + "\n{\"torn")
        reporter, clock, stream = self._reporter(
            heartbeat_dir=str(tmp_path), wall_clock=lambda: 200.0)
        reporter.begin(total=4, resolved=0)
        line = stream.getvalue().splitlines()[-1]
        assert "live" in line and "(1 stalled)" in line

    def test_heartbeat_writes_never_raise(self, tmp_path):
        write_heartbeat(None, item=0, attempt=0, event="start")
        blocker = tmp_path / "file"
        blocker.write_text("x")
        write_heartbeat(str(blocker), item=0, attempt=0, event="start")
        assert read_heartbeats(tmp_path / "absent") == {}


class TestProgressCLI:
    def test_progress_is_pure_stderr_chatter(self, two_files, tmp_path):
        plain = run_cli("check", *two_files, "--no-cache", "--keep-going",
                        "--feasibility", "off", "--format", "json",
                        cache_dir=tmp_path / "c1")
        observed = run_cli("check", *two_files, "--no-cache", "--keep-going",
                           "--feasibility", "off", "--format", "json",
                           "--progress", "--jobs", "2",
                           cache_dir=tmp_path / "c2")
        assert plain.returncode == observed.returncode
        plain_doc = json.loads(plain.stdout)
        observed_doc = json.loads(observed.stdout)
        assert plain_doc.pop("jobs") == 1 and observed_doc.pop("jobs") == 2
        assert json.dumps(plain_doc) == json.dumps(observed_doc)
        assert "progress(done):" in observed.stderr
        assert "progress" not in plain.stderr


# -- hardening: corrupt inputs fail structured --------------------------------

def _assert_structured_failure(proc):
    assert proc.returncode == 2, (proc.stdout, proc.stderr)
    assert "mc-check: internal error:" in proc.stderr
    assert "Traceback" not in proc.stderr


class TestHardening:
    def test_stats_on_missing_truncated_corrupt_files(self, tmp_path):
        _assert_structured_failure(
            run_cli("stats", str(tmp_path / "absent.json")))
        truncated = tmp_path / "truncated.json"
        truncated.write_text('{"schema": 1, "counters": {"a"')
        _assert_structured_failure(run_cli("stats", str(truncated)))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": 999}))
        _assert_structured_failure(run_cli("stats", str(wrong)))
        not_metrics = tmp_path / "list.json"
        not_metrics.write_text("[1, 2, 3]")
        _assert_structured_failure(run_cli("stats", str(not_metrics)))
        bad_values = tmp_path / "bad.json"
        bad_values.write_text(json.dumps(
            {"schema": 1, "counters": {"x": "NaN?"},
             "gauges": {}, "histograms": {}}))
        _assert_structured_failure(run_cli("stats", str(bad_values)))

    def test_explain_on_missing_corrupt_and_malformed_reports(self,
                                                              tmp_path):
        _assert_structured_failure(
            run_cli("explain", str(tmp_path / "absent.json"), "abc"))
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text('{"reports": [')
        _assert_structured_failure(run_cli("explain", str(corrupt), "abc"))
        not_a_list = tmp_path / "notalist.json"
        not_a_list.write_text(json.dumps({"reports": {"id": "abc"}}))
        _assert_structured_failure(
            run_cli("explain", str(not_a_list), "abc"))
        # A present id whose entry is mangled must fail structured too.
        mangled = tmp_path / "mangled.json"
        mangled.write_text(json.dumps({"reports": [
            {"id": "abc123", "provenance": [{"kind": 7}]}]}))
        proc = run_cli("explain", str(mangled), "abc123")
        _assert_structured_failure(proc)
        assert "malformed" in proc.stderr

    def test_profile_on_missing_and_empty_traces(self, tmp_path):
        _assert_structured_failure(
            run_cli("profile", "--trace", str(tmp_path / "absent.jsonl")))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        _assert_structured_failure(run_cli("profile", "--trace", str(empty)))
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n{\"torn\n")
        _assert_structured_failure(
            run_cli("profile", "--trace", str(garbage)))
        _assert_structured_failure(run_cli("profile"))   # no args at all

    def test_diff_and_history_on_empty_or_corrupt_ledgers(self, tmp_path):
        cache = tmp_path / "cache"
        _assert_structured_failure(
            run_cli("diff", "aaa", "bbb", cache_dir=cache))
        cache.mkdir(parents=True)
        (cache / "ledger.jsonl").write_text("garbage\n{\"torn\n")
        history = run_cli("history", cache_dir=cache)
        assert history.returncode == 0           # corruption is skipped
        assert "(ledger is empty)" in history.stdout
        _assert_structured_failure(
            run_cli("diff", "aaa", "bbb", cache_dir=cache))

    def test_diff_refuses_interrupted_and_mixed_command_runs(self,
                                                             tmp_path):
        cache = tmp_path / "cache"
        ledger = RunLedger(cache / "ledger.jsonl")
        ledger.append(_record("run-check"))
        ledger.append(_record("run-metal", command="metal"))
        ledger.append(_record("run-torn", interrupted=True))
        mixed = run_cli("diff", "run-check", "run-metal", cache_dir=cache)
        _assert_structured_failure(mixed)
        assert "cannot diff" in mixed.stderr
        torn = run_cli("diff", "run-check", "run-torn", cache_dir=cache)
        _assert_structured_failure(torn)
        assert "interrupted" in torn.stderr
