"""Bottom-up inter-procedural framework tests."""

from repro.cfg import CallGraph, build_cfg, emit_flowgraph
from repro.lang.parser import parse
from repro.mc.interproc import bottom_up, walk_paths


def callgraph_of(src):
    unit = parse(src)
    return CallGraph.from_cfgs(build_cfg(f) for f in unit.functions())


class TestBottomUp:
    def test_callees_summarized_first(self):
        order = []

        def summarize(graph, summaries, cycle_peers):
            order.append(graph.function)
            for callee in graph.callees():
                if callee in order or callee == graph.function:
                    continue
                raise AssertionError(f"{callee} not summarized before "
                                     f"{graph.function}")
            return len(order)

        cg = callgraph_of("""
            void leaf(void) { }
            void mid(void) { leaf(); }
            void top(void) { mid(); leaf(); }
        """)
        bottom_up(cg, summarize)
        assert order.index("leaf") < order.index("mid") < order.index("top")

    def test_summaries_passed_through(self):
        def summarize(graph, summaries, cycle_peers):
            total = 1
            for callee in graph.callees():
                total += summaries.get(callee, 0)
            return total

        cg = callgraph_of("""
            void a(void) { }
            void b(void) { a(); }
            void c(void) { b(); a(); }
        """)
        summaries = bottom_up(cg, summarize)
        assert summaries == {"a": 1, "b": 2, "c": 4}

    def test_self_recursion_reports_cycle_peers(self):
        peers_seen = {}

        def summarize(graph, summaries, cycle_peers):
            peers_seen[graph.function] = set(cycle_peers)
            return 0

        cg = callgraph_of("""
            void rec(void) { if (x) { rec(); } }
            void plain(void) { rec(); }
        """)
        bottom_up(cg, summarize)
        assert peers_seen["rec"] == {"rec"}
        assert peers_seen["plain"] == set()

    def test_mutual_recursion_groups_scc(self):
        peers_seen = {}

        def summarize(graph, summaries, cycle_peers):
            peers_seen[graph.function] = set(cycle_peers)
            return 0

        cg = callgraph_of("""
            void a(void) { b(); }
            void b(void) { a(); }
            void top(void) { a(); }
        """)
        bottom_up(cg, summarize)
        assert peers_seen["a"] == {"a", "b"}
        assert peers_seen["b"] == {"a", "b"}
        assert peers_seen["top"] == set()

    def test_every_function_summarized(self):
        cg = callgraph_of("""
            void a(void) { }
            void b(void) { a(); }
            void island(void) { }
        """)
        summaries = bottom_up(cg, lambda g, s, p: g.function)
        assert set(summaries) == {"a", "b", "island"}


class TestWalkPaths:
    def test_visits_every_event(self):
        unit = parse("""
            void f(void) { g(); if (x) { h(); } }
        """)
        graph = emit_flowgraph(build_cfg(unit.function("f")))
        calls = []
        walk_paths(graph, lambda b, i, call, ann: calls.append(call))
        assert "g" in calls and "h" in calls
