"""CFG construction and path statistics tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import build_cfg, enumerate_paths, path_stats
from repro.errors import CfgError
from repro.lang import ast
from repro.lang.parser import parse


def cfg_of(body: str):
    unit = parse(f"void f(void) {{ {body} }}")
    return build_cfg(unit.function("f"))


def count_paths(body: str) -> int:
    return path_stats(cfg_of(body)).path_count


class TestShapes:
    def test_straight_line_single_path(self):
        assert count_paths("a(); b(); c();") == 1

    def test_if_two_paths(self):
        assert count_paths("if (x) { a(); }") == 2

    def test_if_else_two_paths(self):
        assert count_paths("if (x) { a(); } else { b(); }") == 2

    def test_sequential_ifs_multiply(self):
        assert count_paths("if (x) { a(); } if (y) { b(); }") == 4

    def test_nested_ifs(self):
        assert count_paths("if (x) { if (y) { a(); } }") == 3

    def test_early_return_adds_path(self):
        assert count_paths("if (x) { return; } a();") == 2

    def test_both_branches_return(self):
        assert count_paths("if (x) { return; } else { return; } ") == 2

    def test_while_loop(self):
        # continue-past + enter-body (terminates at back edge)
        assert count_paths("while (x) { a(); }") == 2

    def test_do_while_single_acyclic_path(self):
        # The body executes unconditionally; the repeat edge is a back
        # edge, so the acyclic traversal sees exactly one path.
        assert count_paths("do { a(); } while (x);") == 1

    def test_for_loop(self):
        assert count_paths("for (i = 0; i < 3; i++) { a(); }") == 2

    def test_loop_with_break(self):
        assert count_paths("while (x) { if (y) { break; } a(); }") == 3

    def test_loop_with_continue(self):
        assert count_paths("while (x) { if (y) { continue; } a(); }") == 3

    def test_switch_cases(self):
        body = "switch (x) { case 1: a(); break; case 2: b(); break; }"
        # two cases + implicit no-case edge
        assert count_paths(body) == 3

    def test_switch_with_default(self):
        body = ("switch (x) { case 1: a(); break; default: b(); break; }")
        assert count_paths(body) == 2

    def test_switch_fallthrough(self):
        body = "switch (x) { case 1: a(); case 2: b(); break; }"
        assert count_paths(body) == 3

    def test_goto_forward(self):
        assert count_paths("if (x) { goto out; } a(); out: b();") == 2

    def test_goto_undefined_label_raises(self):
        with pytest.raises(CfgError):
            cfg_of("goto nowhere;")

    def test_break_outside_loop_raises(self):
        with pytest.raises(CfgError):
            cfg_of("break;")

    def test_continue_outside_loop_raises(self):
        with pytest.raises(CfgError):
            cfg_of("continue;")

    def test_continue_inside_switch_in_loop(self):
        body = ("while (x) { switch (y) { case 1: continue; } a(); }")
        assert count_paths(body) >= 2

    def test_infinite_loop_no_fallthrough(self):
        cfg = cfg_of("for (;;) { a(); }")
        stats = path_stats(cfg)
        assert stats.path_count >= 1

    def test_unreachable_code_after_return(self):
        cfg = cfg_of("return; a();")
        # does not crash; unreachable block exists but is disconnected
        assert path_stats(cfg).path_count == 1


class TestEventPlacement:
    def test_condition_is_event_in_branch_block(self):
        cfg = cfg_of("if (x > 1) { a(); }")
        cond_blocks = [
            b for b in cfg.blocks
            if any(isinstance(e, ast.BinaryOp) for e in b.events)
        ]
        assert len(cond_blocks) == 1
        labels = sorted(e.label for e in cond_blocks[0].out_edges)
        assert labels == ["false", "true"]

    def test_return_event_recorded(self):
        cfg = cfg_of("return;")
        returns = [e for b in cfg.blocks for e in b.events
                   if isinstance(e, ast.Return)]
        assert len(returns) == 1

    def test_decl_event_recorded(self):
        cfg = cfg_of("int x = f();")
        decls = [e for b in cfg.blocks for e in b.events
                 if isinstance(e, ast.DeclStmt)]
        assert len(decls) == 1

    def test_back_edges_detected(self):
        cfg = cfg_of("while (x) { a(); }")
        assert len(cfg.back_edges()) == 1

    def test_no_back_edges_in_dag(self):
        cfg = cfg_of("if (x) { a(); } if (y) { b(); }")
        assert cfg.back_edges() == set()


class TestStatsConsistency:
    BODIES = [
        "a();",
        "if (x) { a(); }",
        "if (x) { a(); } else { b(); } c();",
        "if (x) { return; } if (y) { a(); } b();",
        "while (x) { if (y) { break; } }",
        "for (i = 0; i < 4; i++) { if (x) { continue; } a(); }",
        "switch (x) { case 1: a(); case 2: b(); break; default: c(); }",
        "if (a) { if (b) { f(); } else { g(); } } h(); if (c) { k(); }",
        "do { if (x) { break; } } while (y);",
    ]

    @pytest.mark.parametrize("body", BODIES)
    def test_dp_count_matches_enumeration(self, body):
        cfg = cfg_of(body)
        stats = path_stats(cfg)
        assert stats.path_count == len(list(enumerate_paths(cfg)))

    @pytest.mark.parametrize("body", BODIES)
    def test_max_length_matches_enumeration(self, body):
        cfg = cfg_of(body)
        stats = path_stats(cfg)
        lengths = []
        for path in enumerate_paths(cfg):
            lines = set()
            for block in path:
                for event in block.events:
                    if event.location.line > 0:
                        lines.add((block.index, event.location.line))
            lengths.append(len(lines))
        assert stats.max_length == max(lengths)

    def test_enumerate_respects_cap(self):
        body = " ".join(f"if (x{i}) {{ a(); }}" for i in range(12))
        cfg = cfg_of(body)
        with pytest.raises(ValueError):
            list(enumerate_paths(cfg, max_paths=100))


_STMTS = st.sampled_from([
    "a();", "b();", "if (x) { a(); }", "if (y) { a(); } else { b(); }",
    "while (z) { c(); }", "if (w) { return; }",
    "for (i = 0; i < 2; i++) { d(); }",
])


@given(st.lists(_STMTS, min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_property_dp_equals_enumeration(stmts):
    cfg = cfg_of(" ".join(stmts))
    stats = path_stats(cfg)
    assert stats.path_count == len(list(enumerate_paths(cfg, max_paths=None)))


class TestAggregate:
    def test_aggregate_stats(self):
        from repro.cfg import aggregate_stats
        cfgs = [cfg_of("a();"), cfg_of("if (x) { a(); } b();")]
        per_fn = [path_stats(c) for c in cfgs]
        agg = aggregate_stats(per_fn, loc=100)
        assert agg.loc == 100
        assert agg.path_count == 3
        assert agg.max_path_length >= 1

    def test_aggregate_empty(self):
        from repro.cfg import aggregate_stats
        agg = aggregate_stats([], loc=0)
        assert agg.path_count == 0
        assert agg.average_path_length == 0.0
