"""Integration tests: the headline reproduction claims.

These assert the same facts EXPERIMENTS.md records: Tables 2-7 match the
paper cell for cell, Table 1 within tolerance, no diagnostic outside the
ground-truth manifest, and the paper's figures run verbatim.
"""

import pytest

from repro.bench import paper_data
from repro.bench.tables import CHECKER_ORDER


class TestTable1:
    def test_within_tolerance(self, experiment):
        table = experiment.table1()
        for row in table.rows:
            for column in ("loc", "paths", "avg_path", "max_path"):
                cell = row[column]
                rel = abs(cell.measured - cell.paper) / max(cell.paper, 1)
                assert rel < 0.15, (row["label"], column, cell)


class TestExactTables:
    @pytest.mark.parametrize("table_name", [
        "table2", "table3", "table4", "table_lanes", "table5", "table6",
        "table7",
    ])
    def test_every_cell_matches_paper(self, experiment, table_name):
        table = getattr(experiment, table_name)()
        match, total = table.exact_cells()
        mismatches = [
            (row["label"], col, str(row[col]))
            for row in table.rows
            for col in table.columns
            if col != "label" and hasattr(row[col], "matches")
            and not row[col].matches
        ]
        assert match == total, mismatches


class TestTotals:
    def test_34_errors_total(self, experiment):
        table = experiment.table7()
        assert table.row("total")["errors"].measured == 34

    def test_69_false_positives_total(self, experiment):
        table = experiment.table7()
        assert table.row("total")["false_pos"].measured == 69

    def test_all_checkers_present(self, experiment):
        table = experiment.table7()
        labels = [row["label"] for row in table.rows]
        assert labels == list(CHECKER_ORDER) + ["total"]


class TestNoPhantoms:
    def test_every_report_is_in_the_manifest(self, experiment):
        assert experiment.unmatched_reports() == 0

    def test_every_expected_report_site_fires(self, experiment):
        for name, gp in experiment.protocols.items():
            expected = {
                s.key for s in gp.manifest if s.expects_report
            }
            got = {
                (r.location.filename, r.location.line)
                for result in experiment.results[name].values()
                for r in result.reports
            }
            assert expected <= got, (name, expected - got)

    def test_every_annotation_site_honoured(self, experiment):
        for name, gp in experiment.protocols.items():
            expected = {
                s.key for s in gp.manifest if not s.expects_report
            }
            honoured = {
                (loc.filename, loc.line)
                for result in experiment.results[name].values()
                for loc in result.annotations
            }
            assert expected <= honoured, (name, expected - honoured)


class TestPaperProse:
    """Claims made in the running text, not the tables."""

    def test_bitvector_race_errors_in_rare_corner_cases(self, experiment):
        result = experiment.results["bitvector"]["buffer-race"]
        assert len(result.errors) == 4

    def test_lane_bugs_in_dyn_ptr_and_bitvector(self, experiment):
        for proto in ("dyn_ptr", "bitvector"):
            cls = experiment.classified(proto, "lanes")
            assert cls.errors == 1, proto

    def test_lane_errors_have_backtraces(self, experiment):
        for proto in ("dyn_ptr", "bitvector"):
            result = experiment.results[proto]["lanes"]
            assert all(r.backtrace or ":" in str(r.location)
                       for r in result.errors)

    def test_common_code_annotation_rate(self, experiment):
        # "roughly one per thousand lines of source": 43 annotations over
        # ~80K generated lines is within the paper's order of magnitude.
        total_annotations = sum(
            len(experiment.results[p]["buffer-mgmt"].annotations)
            for p in paper_data.PROTOCOLS
        )
        total_loc = sum(gp.loc() for gp in experiment.protocols.values())
        rate = total_annotations / (total_loc / 1000)
        assert 0.2 < rate < 2.0

    def test_sci_uncounted_hook_violations(self, experiment):
        cls = experiment.classified("sci", "exec-restrict")
        assert cls.uncounted == 3
        assert cls.violations == 0

    def test_no_float_finds_nothing(self, experiment):
        for proto in paper_data.PROTOCOLS:
            assert not experiment.results[proto]["no-float"].reports
