"""Unit tests for the lane checker's summary computation (the global
pass's building block), at the FlowGraph level."""

from repro.cfg import build_cfg, emit_flowgraph
from repro.cfg.callgraph import CallGraph
from repro.checkers.lanes import LaneSummary, annotate_lanes, summarize_lanes
from repro.flash import machine
from repro.lang import annotate, parse
from repro.mc.interproc import bottom_up


def summaries_of(src):
    unit = parse(src)
    annotate(unit)
    graphs = [
        emit_flowgraph(build_cfg(f), annotate=annotate_lanes)
        for f in unit.functions()
    ]
    return bottom_up(CallGraph(graphs), summarize_lanes)


def test_single_send_peak_and_net():
    summaries = summaries_of("""
        void f(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
    """)
    s = summaries["f"]
    assert s.peak[machine.LANE_PI] == 1
    assert s.net[machine.LANE_PI] == 1
    assert s.sends_any


def test_no_sends():
    summaries = summaries_of("void f(void) { t = 1; }")
    s = summaries["f"]
    assert s.peak == [0, 0, 0, 0]
    assert not s.sends_any


def test_sequential_sends_accumulate():
    summaries = summaries_of("""
        void f(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
        }
    """)
    s = summaries["f"]
    assert s.peak[machine.LANE_NI_REQUEST] == 2
    assert s.peak[machine.LANE_NI_REPLY] == 1


def test_branches_merge_with_max():
    summaries = summaries_of("""
        void f(void) {
            if (c) {
                PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
                PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            } else {
                PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            }
        }
    """)
    assert summaries["f"].peak[machine.LANE_PI] == 2


def test_wait_for_space_resets_and_flags():
    summaries = summaries_of("""
        void f(void) {
            IO_SEND(F_NODATA, 1, 0, 0, 1, 0);
            WAIT_FOR_SPACE(LANE_IO);
            IO_SEND(F_NODATA, 1, 0, 0, 1, 0);
        }
    """)
    s = summaries["f"]
    assert s.peak[machine.LANE_IO] == 1
    assert s.resets[machine.LANE_IO]
    assert s.net[machine.LANE_IO] == 1


def test_callee_contribution_composes():
    summaries = summaries_of("""
        void leaf(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        void caller(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            leaf();
        }
    """)
    assert summaries["caller"].peak[machine.LANE_PI] == 2


def test_callee_in_branch_takes_max():
    summaries = summaries_of("""
        void leaf(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        void caller(void) {
            if (c) { leaf(); } else { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        }
    """)
    assert summaries["caller"].peak[machine.LANE_PI] == 1


def test_witness_frames_record_lines():
    summaries = summaries_of("""
        void leaf(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        void caller(void) { leaf(); }
    """)
    witness = summaries["caller"].witness[machine.LANE_PI]
    assert any(frame.startswith("leaf:") for frame in witness)
    assert witness[-1].startswith("caller:")


def test_cycle_peers_contribute_nothing():
    unit = parse("""
        void a(void) { if (x) { b(); } PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        void b(void) { a(); }
    """)
    annotate(unit)
    graphs = [
        emit_flowgraph(build_cfg(f), annotate=annotate_lanes)
        for f in unit.functions()
    ]
    summaries = bottom_up(CallGraph(graphs), summarize_lanes)
    # Each member's own sends still count once; the recursive call does
    # not inflate the peak unboundedly.
    assert summaries["a"].peak[machine.LANE_PI] == 1


def test_annotate_lanes_hook():
    unit = parse("""
        void f(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            WAIT_FOR_SPACE(LANE_NI_REPLY);
            t = t + 1;
        }
    """)
    annotate(unit)
    events = list(build_cfg(unit.function("f")).events())
    annotations = [annotate_lanes(e) for e in events]
    sends = [a for a in annotations if a and a.get("sends")]
    waits = [a for a in annotations if a and a.get("waits")]
    plain = [a for a in annotations if a is None]
    assert len(sends) == 1 and sends[0]["sends"][0][0] == machine.LANE_PI
    assert len(waits) == 1 and waits[0]["waits"] == [machine.LANE_NI_REPLY]
    assert plain  # the arithmetic event carries no annotation
