"""The tutorial's code (docs/tutorial.md) actually works as written."""

from repro import StateMachine, check_source, parse_metal

TEXTUAL = """
sm dma_balance {
    decl { any } d;
    unmapped:
      { dma_map(d); } ==> mapped
    | { dma_unmap(d); } ==> { err("unmap without a mapping"); }
    | { dma_submit(d); } ==> { err("submit without a mapping"); }
    ;
    mapped:
      { dma_unmap(d); } ==> unmapped
    | { dma_map(d); } ==> { err("mapping while one is active"); }
    ;
}
"""


def python_machine():
    sm = StateMachine("dma_balance")
    sm.decl("any", "d")
    sm.state("unmapped")
    sm.state("mapped")
    sm.add_rule("unmapped", "dma_map(d)", target="mapped")
    sm.add_rule("unmapped", "dma_unmap(d)",
                action=lambda ctx: ctx.err("unmap without a mapping"))
    sm.add_rule("unmapped", "dma_submit(d)",
                action=lambda ctx: ctx.err("submit without a mapping"))
    sm.add_rule("mapped", "dma_unmap(d)", target="unmapped")
    sm.add_rule("mapped", "dma_map(d)",
                action=lambda ctx: ctx.err("mapping while one is active"))
    sm.add_rule("mapped", "dma_handed_off()", target="unmapped")

    def at_exit(state, ctx):
        if state == "mapped":
            ctx.err("function can return with an active mapping (leak)")
    sm.path_end_action = at_exit
    return sm


DRIVER = """
void ok(void) {
    dma_map(buf);
    dma_submit(buf);
    dma_unmap(buf);
}
void leaky(void) {
    dma_map(buf);
    if (err) { return; }
    dma_unmap(buf);
}
void double_map(void) {
    dma_map(a);
    dma_map(a);
    dma_unmap(a);
}
void early_submit(void) {
    dma_submit(q);
}
void handed_off(void) {
    dma_map(buf);
    dma_handed_off();
}
"""


def test_textual_checker_finds_non_exit_bugs():
    reports = check_source(parse_metal(TEXTUAL), DRIVER, "driver.c")
    messages = sorted(r.message for r in reports)
    assert "mapping while one is active" in messages
    assert "submit without a mapping" in messages
    # The textual version has no exit hook: the leak is not found.
    assert not any("leak" in m for m in messages)


def test_python_checker_finds_all_bugs():
    reports = check_source(python_machine(), DRIVER, "driver.c")
    by_function = {}
    for report in reports:
        by_function.setdefault(report.function, []).append(report.message)
    assert "leaky" in by_function
    assert any("leak" in m for m in by_function["leaky"])
    assert "double_map" in by_function
    assert "early_submit" in by_function
    assert "ok" not in by_function
    assert "handed_off" not in by_function  # annotation discharges it
