"""State machine API and textual metal parser tests."""

import pytest

from repro.checkers.metal_sources import BUFFER_RACE_FULL, FIGURE_2, FIGURE_3
from repro.errors import MetalError
from repro.lang.parser import parse
from repro.lang.sema import annotate
from repro.metal import parse_metal
from repro.metal.sm import ALL, STOP, StateMachine
from repro.mc import check_unit


def checked(sm, src):
    unit = parse(src)
    annotate(unit)
    return check_unit(sm, unit).reports


class TestStateMachineApi:
    def test_start_state_is_first_declared(self):
        sm = StateMachine("t")
        sm.state("alpha")
        sm.state("beta")
        assert sm.start_state == "alpha"

    def test_all_can_be_start_state(self):
        sm = StateMachine("t")
        sm.state(ALL)
        sm.state("other")
        assert sm.start_state == ALL

    def test_no_states_raises(self):
        with pytest.raises(MetalError):
            StateMachine("t").start_state

    def test_rules_for_includes_all_state_first(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        r_all = sm.add_rule(ALL, "f(x)", target="s2")
        sm.state("s1")
        r_own = sm.add_rule("s1", "g(x)", target="s2")
        rules = sm.rules_for("s1")
        assert rules == [r_all, r_own]

    def test_named_pattern_resolution(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.define_pattern("sends", "f(x)", "g(x)")
        sm.state("s")
        rule = sm.add_rule("s", "sends")
        assert len(rule.patterns) == 2

    def test_unknown_rule_input_rejected(self):
        sm = StateMachine("t")
        sm.state("s")
        with pytest.raises(MetalError):
            sm.add_rule("s", [42])

    def test_action_can_override_target(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("a")
        sm.state("b")
        sm.add_rule("a", "f(x)", target="a", action=lambda ctx: "b")
        result = sm.step("a", parse("void q(void){f(1);}").function("q")
                         .body.stmts[0].expr,
                         lambda n, b, s: _ctx(sm, n, b, s))
        assert result.state == "b"

    def test_stop_target(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("a")
        sm.add_rule("a", "f(x)", target=STOP)
        node = parse("void q(void){f(1);}").function("q").body.stmts[0].expr
        result = sm.step("a", node, lambda n, b, s: _ctx(sm, n, b, s))
        assert result.stopped


def _ctx(sm, node, bindings, state):
    from repro.metal.runtime import MatchContext, ReportSink
    return MatchContext(sm.name, node, bindings, None, ReportSink(), state)


class TestMetalParser:
    def test_figure_2_parses(self):
        sm = parse_metal(FIGURE_2)
        assert sm.name == "wait_for_db"
        assert sm.start_state == "start"
        assert "addr" in sm.metavars and "buf" in sm.metavars

    def test_figure_3_parses(self):
        sm = parse_metal(FIGURE_3)
        assert sm.name == "msglen_check"
        assert sm.start_state == "all"
        assert set(sm.named_patterns) == {
            "zero_assign", "nonzero_assign", "send_data", "send_nodata"
        }

    def test_figure_2_finds_unsynchronized_read(self):
        sm = parse_metal(FIGURE_2)
        reports = checked(sm, """
            void h(void) {
                unsigned v;
                v = MISCBUS_READ_DB(addr, 0);
            }
        """)
        assert len(reports) == 1
        assert "not synchronized" in reports[0].message

    def test_figure_2_wait_suppresses(self):
        sm = parse_metal(FIGURE_2)
        reports = checked(sm, """
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(addr);
                v = MISCBUS_READ_DB(addr, 0);
            }
        """)
        assert reports == []

    def test_figure_2_path_sensitivity(self):
        sm = parse_metal(FIGURE_2)
        reports = checked(sm, """
            void h(void) {
                unsigned v;
                if (c) { WAIT_FOR_DB_FULL(addr); }
                v = MISCBUS_READ_DB(addr, 0);
            }
        """)
        # The path not taking the branch still races.
        assert len(reports) == 1

    def test_buffer_race_full_handles_legacy_macro(self):
        sm = parse_metal(BUFFER_RACE_FULL)
        reports = checked(sm, """
            void h(void) { unsigned v; v = MISCBUS_READ(addr, 0); }
        """)
        assert len(reports) == 1

    def test_figure_3_zero_then_data_send(self):
        sm = parse_metal(FIGURE_3)
        reports = checked(sm, """
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
            }
        """)
        assert len(reports) == 1
        assert "data send, zero len" in reports[0].message

    def test_figure_3_nonzero_then_nodata_send(self):
        sm = parse_metal(FIGURE_3)
        reports = checked(sm, """
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                NI_SEND(t, F_NODATA, 1, 1, 1, 0);
            }
        """)
        assert len(reports) == 1
        assert "nodata send, nonzero len" in reports[0].message

    def test_figure_3_send_before_assignment_ignored(self):
        # "We assume sends in this state are ok and ignore them."
        sm = parse_metal(FIGURE_3)
        reports = checked(sm, """
            void h(void) { PI_SEND(F_DATA, 1, 0, 1, 1, 0); }
        """)
        assert reports == []

    def test_figure_3_consistent_pairs_clean(self):
        sm = parse_metal(FIGURE_3)
        reports = checked(sm, """
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(t, F_NODATA, 1, 1, 1, 0);
            }
        """)
        assert reports == []

    def test_figure_3_all_state_applies_everywhere(self):
        # A length reassignment inside the nonzero_len state still fires.
        sm = parse_metal(FIGURE_3)
        reports = checked(sm, """
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(t, F_NODATA, 1, 1, 1, 0);
            }
        """)
        assert reports == []


class TestMetalSyntaxErrors:
    def test_missing_sm_keyword(self):
        with pytest.raises(MetalError):
            parse_metal("machine x { }")

    def test_unterminated_body(self):
        with pytest.raises(MetalError):
            parse_metal("sm x { start: { f(); } ==> stop ;")

    def test_rule_without_target_or_action(self):
        with pytest.raises(MetalError):
            parse_metal("sm x { start: { f(); } ==> ; }")

    def test_unknown_named_pattern(self):
        with pytest.raises(MetalError):
            parse_metal("sm x { start: nothere ==> stop ; }")

    def test_bad_action_function(self):
        with pytest.raises(MetalError):
            parse_metal('sm x { start: { f(); } ==> { launch("x"); } ; }')

    def test_action_requires_string(self):
        with pytest.raises(MetalError):
            parse_metal("sm x { start: { f(); } ==> { err(42); } ; }")

    def test_bad_decl_constraint_arity(self):
        with pytest.raises(MetalError):
            parse_metal("sm x { decl { a b } v; start: { f(); } ==> stop ; }")

    def test_warn_action_supported(self):
        sm = parse_metal(
            'sm x { decl { any } v; start: { f(v); } ==> { warn("careful"); } ; }'
        )
        reports = checked(sm, "void h(void) { f(1); }")
        assert len(reports) == 1
        assert reports[0].severity == "warning"

    def test_inline_pattern_alternation(self):
        sm = parse_metal(
            "sm x { decl { any } v; "
            "start: { f(v); } | { g(v); } ==> stop ; }"
        )
        rules = sm.rules_for("start")
        assert len(rules) == 1
        assert len(rules[0].patterns) == 2
