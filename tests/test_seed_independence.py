"""The reproduction is seed-independent by construction.

The generator's RNG only varies code *structure* (which routines carry
which operations, filler content, branch placement); the defect
population and all "Applied" counts are planned, so a different seed
must reproduce Tables 2-7 exactly.  This is the reproduction's main
internal-validity check: the headline numbers are not an artifact of
one lucky generation.
"""

import pytest

from repro.checkers import run_all
from repro.flash.codegen import generate_protocol
from repro.mc import feasibility

ALT_SEED = 0xBEEF


@pytest.fixture(scope="module")
def alt_rac():
    return generate_protocol("rac", seed=ALT_SEED)


def test_alternate_seed_changes_the_code(alt_rac):
    default = generate_protocol("rac")
    assert alt_rac.files != default.files


def test_alternate_seed_hits_structural_targets(alt_rac):
    t = alt_rac.targets
    assert len(alt_rac.program().functions()) == t.routines
    assert abs(alt_rac.loc() - t.loc) / t.loc < 0.05


def test_alternate_seed_reproduces_checker_counts(alt_rac):
    program = alt_rac.program()
    # The paper's counts come from the no-pruning engine: its FP rows
    # (and the §6 useless-annotation cascade) exist precisely because
    # every syntactic path was walked.
    previous = feasibility.set_default_enabled(False)
    try:
        results = run_all(program)
    finally:
        feasibility.set_default_enabled(previous)
    bykey = alt_rac.manifest_by_key()

    # Every report joins the manifest; every expected site fires.
    expected = {s.key for s in alt_rac.manifest if s.expects_report}
    got = set()
    for result in results.values():
        for report in result.reports:
            key = (report.location.filename, report.location.line)
            assert key in bykey, f"phantom report: {report}"
            got.add(key)
    assert expected <= got

    # The paper's rac row, per checker (Tables 2-6).
    def count(checker, label):
        n = 0
        for report in results[checker].reports:
            key = (report.location.filename, report.location.line)
            n += any(s.label == label and s.checker == checker
                     for s in bykey.get(key, ()))
        return n

    assert count("msg-length", "error") == 8          # Table 3
    assert count("buffer-mgmt", "error") == 2         # Table 4
    assert count("exec-restrict", "violation") == 2   # Table 5
    assert count("directory", "fp") == 9              # Table 6
    assert count("send-wait", "fp") == 2              # Table 6
    assert results["buffer-race"].applied == 10       # Table 2
    assert results["msg-length"].applied == 346       # Table 3
    assert results["alloc-fail"].applied == 20        # Table 6
    assert results["directory"].applied == 424        # Table 6
    assert results["send-wait"].applied == 35         # Table 6
    assert len(results["buffer-mgmt"].annotations) == 6  # 2 useful + 4 useless
