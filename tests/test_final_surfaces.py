"""Final coverage batch: small surfaces not exercised elsewhere."""

import io

from repro.bench.runner import run as run_tables
from repro.cfg import build_cfg
from repro.flash.codegen import generate_protocol
from repro.flash.sim.interp import GlobalsView
from repro.lang.parser import parse
from repro.metal.sm import StateMachine, StepResult


class TestCfgGraphUtilities:
    def cfg(self):
        unit = parse("void f(void) { if (x) { a(); } b(); }")
        return build_cfg(unit.function("f"))

    def test_block_repr(self):
        cfg = self.cfg()
        text = repr(cfg.entry)
        assert "entry" in text and "succ=" in text

    def test_edge_repr(self):
        cfg = self.cfg()
        edge = cfg.entry.out_edges[0]
        assert "->" in repr(edge)

    def test_cfg_repr(self):
        assert "'f'" in repr(self.cfg())

    def test_blocks_identity_semantics(self):
        cfg = self.cfg()
        assert cfg.entry == cfg.entry
        assert cfg.entry != cfg.exit
        assert len({cfg.entry, cfg.entry, cfg.exit}) == 2

    def test_reachable_starts_at_entry(self):
        cfg = self.cfg()
        assert cfg.reachable_blocks()[0] is cfg.entry

    def test_events_iterates_reachable_only(self):
        cfg = self.cfg()
        events = list(cfg.events())
        assert events  # condition + calls


class TestStateMachineStep:
    def test_no_match_keeps_state(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("s")
        sm.add_rule("s", "f(x)", target="other")
        node = parse("void q(void){g(1);}").function("q").body.stmts[0].expr
        result = sm.step("s", node, lambda *a: None)
        assert isinstance(result, StepResult)
        assert result.state == "s"
        assert result.fired is None

    def test_first_matching_rule_wins(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("s")
        first = sm.add_rule("s", "f(x)", target="a")
        sm.add_rule("s", "f(x)", target="b")
        sm.state("a")
        sm.state("b")
        node = parse("void q(void){f(1);}").function("q").body.stmts[0].expr
        result = sm.step("s", node, lambda *a: None)
        assert result.state == "a"
        assert result.fired is first

    def test_repr(self):
        sm = StateMachine("demo")
        sm.state("s")
        assert "demo" in repr(sm)


class TestGlobalsView:
    def test_default_zero(self):
        view = GlobalsView()
        assert view.read("header.nh.len") == 0

    def test_write_masks_32_bits(self):
        view = GlobalsView()
        view.write("x", 2**40 + 5)
        assert view.read("x") == (2**40 + 5) & 0xFFFFFFFF


class TestGeneratedProtocolModel:
    def test_loc_counts_nonblank(self):
        gp = generate_protocol("common")
        manual = sum(
            sum(1 for line in text.splitlines() if line.strip())
            for text in gp.files.values()
        )
        assert gp.loc() == manual

    def test_program_cached(self):
        gp = generate_protocol("common")
        assert gp.program() is gp.program()


class TestBenchRunner:
    def test_run_writes_tables_and_summary(self):
        buffer = io.StringIO()
        experiment = run_tables(out=buffer)
        text = buffer.getvalue()
        assert "Table 7" in text
        assert "errors 34 (paper 34)" in text
        assert experiment.unmatched_reports() == 0
