"""Table audit checker tests."""

from repro.checkers import TableAuditChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def make_info(**kwargs):
    info = ProtocolInfo(name="t", handlers={"HW": HandlerInfo("HW", "hw")})
    for key, names in kwargs.items():
        getattr(info, key).update(names)
    return info


def run(src, info):
    return TableAuditChecker().check(program_from_source(src, info))


class TestConsistentTables:
    def test_correct_free_routine_clean(self):
        info = make_info(free_routines={"helper"})
        result = run("void helper(void) { DB_FREE(); return; }", info)
        assert result.reports == []

    def test_correct_use_routine_clean(self):
        info = make_info(buffer_use_routines={"peek"})
        result = run("void peek(void) { t = t + 1; return; }", info)
        assert result.reports == []

    def test_conditional_free_routine_tolerated(self):
        # Data-dependent frees are what frees_if_true / annotations handle.
        info = make_info(free_routines={"maybe"})
        result = run("""
            void maybe(void) {
                if (c) { DB_FREE(); }
                return;
            }
        """, info)
        assert result.reports == []

    def test_undeclared_plain_routine_ignored(self):
        info = make_info()
        result = run("void plain(void) { t = 1; return; }", info)
        assert result.reports == []

    def test_handlers_not_audited(self):
        info = make_info(free_routines={"HW"})
        result = run("void HW(void) { t = 1; return; }", info)
        assert result.reports == []

    def test_allocating_routine_skipped(self):
        info = make_info(buffer_use_routines={"maker"})
        result = run("""
            void maker(void) {
                unsigned b;
                b = DB_ALLOC();
                DB_FREE();
                return;
            }
        """, info)
        assert result.reports == []


class TestContradictions:
    def test_free_routine_that_never_frees(self):
        info = make_info(free_routines={"helper"})
        result = run("void helper(void) { t = 1; return; }", info)
        assert len(result.errors) == 1
        assert "no path" in result.errors[0].message

    def test_use_routine_that_always_frees(self):
        info = make_info(buffer_use_routines={"peek"})
        result = run("void peek(void) { DB_FREE(); return; }", info)
        assert len(result.errors) == 1
        assert "every path" in result.errors[0].message

    def test_frees_if_true_that_is_unconditional(self):
        info = make_info(frees_if_true={"decide"})
        result = run("void decide(void) { DB_FREE(); return; }", info)
        assert len(result.warnings) == 1

    def test_transitive_free_through_tabled_helper(self):
        # Calling a tabled freeing routine counts as freeing.
        info = make_info(free_routines={"outer", "inner"})
        result = run("""
            void inner(void) { DB_FREE(); return; }
            void outer(void) { inner(); return; }
        """, info)
        assert result.reports == []

    def test_annotation_counts_as_resolution(self):
        info = make_info(free_routines={"handoff"})
        result = run("""
            void handoff(void) {
                no_free_needed();
                return;
            }
        """, info)
        # The annotation asserts the buffer obligation was discharged.
        assert result.reports == []


class TestGeneratedProtocolsAudit:
    def test_all_generated_tables_consistent(self, experiment):
        for name, gp in experiment.protocols.items():
            result = TableAuditChecker().check(gp.program())
            assert result.reports == [], (name, [str(r) for r in result.reports])

    def test_applied_counts_subroutines(self, common):
        result = TableAuditChecker().check(common.program())
        assert result.applied > 0
