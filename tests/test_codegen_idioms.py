"""Each seed idiom, in isolation: the emitted code triggers exactly its
checker at exactly the recorded line."""

import random

import pytest

from repro.checkers import (
    AllocFailChecker,
    BufferMgmtChecker,
    BufferRaceChecker,
    DirectoryChecker,
    LaneChecker,
    MsgLengthChecker,
    SendWaitChecker,
)
from repro.flash.codegen.builder import RoutineBuilder
from repro.flash.codegen.bugs import IDIOMS
from repro.flash.codegen.emit import Emitter
from repro.project import HandlerInfo, Program, ProtocolInfo

CHECKER_FOR = {
    "buffer-race": BufferRaceChecker,
    "msg-length": MsgLengthChecker,
    "buffer-mgmt": BufferMgmtChecker,
    "lanes": LaneChecker,
    "alloc-fail": AllocFailChecker,
    "directory": DirectoryChecker,
    "send-wait": SendWaitChecker,
}


def emit_idiom(key: str, label: str):
    """Emit one idiom into a standalone routine; returns (program, sites)."""
    idiom = IDIOMS[key]
    emitter = Emitter("seed.c")
    rng = random.Random(42)
    kind = idiom.kind
    rb = RoutineBuilder(emitter, "SeedRoutine", kind, rng, n_vars=4)
    rb.free_helper = "helper_free"
    rb.begin(omit_hook=idiom.omit_hook)
    info = ProtocolInfo(name="t")
    if kind in ("hw", "sw"):
        info.handlers["SeedRoutine"] = HandlerInfo("SeedRoutine", kind)
    if kind == "proc" and key.startswith("buf-"):
        rb.has_buffer = True
        info.free_routines.add("SeedRoutine")
    sites = idiom.emit(rb, label)
    rb.filler(2)
    rb.end()
    if kind in ("hw", "sw"):
        allowance = tuple(max(1, m) for m in rb.lane_max)
        info.handlers["SeedRoutine"] = HandlerInfo(
            "SeedRoutine", kind, lane_allowance=allowance)
    info.free_routines.add("helper_free")
    if kind == "proc" and idiom.cost.sends:
        info.buffer_use_routines.add("SeedRoutine")
    # A helper body so calls resolve.
    emitter.line("void helper_free(void) {")
    emitter.line("    SUBROUTINE_PROLOGUE();")
    emitter.line("    DB_FREE();")
    emitter.line("}")
    program = Program({"seed.c": emitter.text()}, info=info)
    return program, sites


REPORTING_IDIOMS = [
    ("race-read-error", "error"),
    ("race-read-fp", "fp"),
    ("msglen-uncached", "error"),
    ("msglen-eager", "error"),
    ("msglen-harmless", "error"),
    ("msglen-rac-queue", "error"),
    ("msglen-runtime-flag", "fp"),
    ("buf-double-free", "error"),
    ("buf-leak", "error"),
    ("buf-minor", "minor"),
    ("lane-workaround", "error"),
    ("lane-typo", "error"),
    ("alloc-debug", "fp"),
    ("dir-forgot-writeback", "error"),
    ("dir-subroutine", "fp"),
    ("dir-speculative", "fp"),
    ("dir-abstraction", "fp"),
    ("swait-spin", "fp"),
    ("swait-spin-proc", "fp"),
]


@pytest.mark.parametrize("key,label", REPORTING_IDIOMS)
def test_idiom_triggers_its_checker_at_recorded_lines(key, label):
    program, sites = emit_idiom(key, label)
    assert sites, key
    checker_cls = CHECKER_FOR[sites[0].checker]
    result = checker_cls().check(program)
    got = {(r.location.filename, r.location.line) for r in result.reports}
    for site in sites:
        assert (site.file, site.line) in got, (key, site, sorted(got))


@pytest.mark.parametrize("key,label", [
    ("buf-useful-annotation", "useful-annotation"),
    ("buf-useless-annotation", "useless-annotation"),
])
def test_annotation_idioms_suppress_and_record(key, label):
    program, sites = emit_idiom(key, label)
    result = BufferMgmtChecker().check(program)
    # No reports (suppressed), and the annotation site is honoured.
    assert result.reports == []
    honoured = {(a.filename, a.line) for a in result.annotations}
    for site in sites:
        assert (site.file, site.line) in honoured


@pytest.mark.parametrize("key,label", [
    ("hook-omission", "violation"),
    ("hook-omission-proc", "uncounted"),
])
def test_hook_omission_idioms(key, label):
    from repro.checkers import ExecRestrictChecker
    program, sites = emit_idiom(key, label)
    result = ExecRestrictChecker().check(program)
    got = {(r.location.filename, r.location.line) for r in result.reports}
    for site in sites:
        assert (site.file, site.line) in got
