"""Flow-graph emission, serialization, and call-graph linking."""

from pathlib import Path

from repro.cfg import (
    CallGraph,
    FlowGraph,
    build_cfg,
    emit_flowgraph,
    load_flowgraph,
    write_flowgraph,
)
from repro.lang import ast
from repro.lang.parser import parse

SRC = """
void leaf(void) { work(); }
void mid(void) { leaf(); leaf(); }
void top(void) { if (x) { mid(); } else { leaf(); } }
void self_rec(void) { if (x) { self_rec(); } }
void mutual_a(void) { mutual_b(); }
void mutual_b(void) { mutual_a(); }
"""


def make_callgraph():
    unit = parse(SRC)
    return CallGraph.from_cfgs(build_cfg(f) for f in unit.functions())


class TestEmission:
    def test_calls_recorded(self):
        unit = parse(SRC)
        graph = emit_flowgraph(build_cfg(unit.function("mid")))
        assert graph.callees() == {"leaf"}

    def test_lines_recorded(self):
        unit = parse("void f(void) {\n    g();\n}")
        graph = emit_flowgraph(build_cfg(unit.function("f")))
        lines = [ln for node in graph.nodes.values() for ln in node.lines]
        assert 2 in lines

    def test_annotation_hook(self):
        unit = parse(SRC)

        def annotate(event):
            calls = [n for n in event.walk()
                     if isinstance(n, ast.Call)]
            return {"ncalls": len(calls)} if calls else None

        graph = emit_flowgraph(build_cfg(unit.function("mid")),
                               annotate=annotate)
        annotations = [a for node in graph.nodes.values()
                       for a in node.annotations if a]
        assert all(a["ncalls"] == 1 for a in annotations)
        assert len(annotations) == 2

    def test_json_round_trip(self, tmp_path: Path):
        unit = parse(SRC)
        graph = emit_flowgraph(build_cfg(unit.function("top")))
        path = tmp_path / "top.flow"
        write_flowgraph(graph, path)
        loaded = load_flowgraph(path)
        assert loaded.function == "top"
        assert loaded.entry == graph.entry
        assert loaded.callees() == graph.callees()
        assert set(loaded.nodes) == set(graph.nodes)

    def test_callgraph_from_files(self, tmp_path: Path):
        unit = parse(SRC)
        paths = []
        for func in unit.functions():
            graph = emit_flowgraph(build_cfg(func))
            p = tmp_path / f"{func.name}.flow"
            write_flowgraph(graph, p)
            paths.append(p)
        cg = CallGraph.from_files(paths)
        assert cg.callees("top") == {"mid", "leaf"}


class TestCallGraphQueries:
    def test_callees(self):
        cg = make_callgraph()
        assert cg.callees("top") == {"mid", "leaf"}
        assert cg.callees("leaf") == set()

    def test_callers(self):
        cg = make_callgraph()
        assert cg.callers("leaf") == {"mid", "top"}

    def test_contains(self):
        cg = make_callgraph()
        assert "top" in cg
        assert "nonexistent" not in cg

    def test_self_recursion_detected(self):
        cg = make_callgraph()
        assert "self_rec" in cg.recursive_functions()

    def test_mutual_recursion_detected(self):
        cg = make_callgraph()
        rec = cg.recursive_functions()
        assert {"mutual_a", "mutual_b"} <= rec

    def test_non_recursive_not_flagged(self):
        cg = make_callgraph()
        rec = cg.recursive_functions()
        assert "top" not in rec and "leaf" not in rec

    def test_reachable_from(self):
        cg = make_callgraph()
        assert cg.reachable_from("top") == {"top", "mid", "leaf"}
        assert cg.reachable_from("missing") == set()

    def test_unknown_callee_ignored(self):
        # `work()` is not defined in the program; the call graph only
        # links defined functions.
        cg = make_callgraph()
        assert cg.callees("leaf") == set()
