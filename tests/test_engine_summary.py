"""The summary engine: differential equivalence against the paths oracle.

The engine PR's contract (docs/engine.md):

- ``--engine summary`` (the default) produces **byte-identical** reports,
  suppressions, provenance, and confidence to ``--engine paths`` — proved
  here by direct differential testing over generated handlers (property),
  the five paper protocols, and tolerant-frontend/opaque input;
- replaying a cached function summary is indistinguishable from
  re-walking the function;
- the slicer's ``MachineFilter`` is a sound over-approximation of root
  unification, and slices classify dead regions correctly;
- ``engine.summary_hits``/``engine.summary_misses``/
  ``engine.merged_states`` flow into the metrics registry and
  ``mc-check stats``;
- the result cache keys on the engine mode (switching ``--engine`` never
  serves stale entries) and ``--resume`` across engine modes refuses
  cleanly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_metal
from repro.checkers.metal_sources import FIGURE_2
from repro.errors import ReproError
from repro.lang import ast, clear_memo, set_default_mode
from repro.mc import (
    ResultCache,
    check_files,
    clear_function_summaries,
    format_reports,
    function_summaries,
    run_to_json,
    score_run,
    slice_for,
)
from repro.mc.engine import run_machine
from repro.mc.summary import filter_for
from repro.mc.supervisor import RunJournal
from repro.metal.runtime import ReportSink
from repro.obs.metrics import MetricsRegistry, activate_metrics, format_metrics
from repro.project import program_from_source

SRC = Path(__file__).resolve().parent.parent / "src"

#: One machine shared by the whole module, so later differential
#: examples exercise the summary store's replay path (a fresh machine
#: per example would never hit the store).
_SM = parse_metal(FIGURE_2)


def run_cli(*argv, timeout=180, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["MC_CHECK_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def _snapshot(sink: ReportSink):
    """Everything a sink tells the user, in a comparable shape."""
    return (
        tuple(str(r) for r in sink.reports),
        tuple((str(r), why) for r, why in sink.suppressed),
        {key: list(steps) for key, steps in sink.provenance.items()},
        sink.degraded,
        tuple(str(q) for q in sink.quarantines),
    )


def _machine_run(source: str, engine: str, *, feasibility=True,
                 tolerant=False):
    if tolerant:
        set_default_mode("tolerant")
    try:
        clear_memo()
        program = program_from_source(source)
        sink = ReportSink()
        for cfg in program.cfgs():
            run_machine(_SM, cfg, sink, feasibility=feasibility,
                        engine=engine)
    finally:
        if tolerant:
            set_default_mode("strict")
            clear_memo()
    return _snapshot(sink)


# -- property: summary == paths over generated handlers ------------------------

_GUARDS = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["ca", "cb"]), st.booleans()),
)
_ITEMS = st.lists(
    st.tuples(st.sampled_from(["wait", "read", "free"]), _GUARDS),
    min_size=1, max_size=6,
)

_STMT = {
    "wait": "WAIT_FOR_DB_FULL(addr);",
    "read": "MISCBUS_READ_DB(addr, buf);",
    "free": "DB_FREE();",
}


def _handler_from(items, opaque_at=None) -> str:
    lines = [
        "void Gen(void) {",
        "    unsigned addr;",
        "    unsigned buf;",
        "    unsigned ca;",
        "    unsigned cb;",
        "    addr = HANDLER_GLOBALS(header.nh.addr);",
        "    ca = HANDLER_GLOBALS(header.nh.len);",
        "    cb = HANDLER_GLOBALS(header.nh.src);",
    ]
    for i, (what, guard) in enumerate(items):
        if opaque_at is not None and opaque_at == i:
            lines.append("    @@@ junk @@@;")
        if guard is None:
            lines.append(f"    {_STMT[what]}")
        else:
            var, negated = guard
            cond = f"!{var}" if negated else var
            lines.append(f"    if ({cond}) {{")
            lines.append(f"        {_STMT[what]}")
            lines.append("    }")
    lines.append("    return;")
    lines.append("}")
    return "\n" + "\n".join(lines) + "\n"


@settings(max_examples=40, deadline=None)
@given(items=_ITEMS, feasibility=st.booleans())
def test_summary_equals_paths_on_generated_handlers(items, feasibility):
    source = _handler_from(items)
    paths = _machine_run(source, "paths", feasibility=feasibility)
    summary = _machine_run(source, "summary", feasibility=feasibility)
    assert summary == paths, source


@settings(max_examples=20, deadline=None)
@given(items=_ITEMS, position=st.integers(min_value=0, max_value=5))
def test_summary_equals_paths_with_opaque_regions(items, position):
    # Tolerant-frontend input: an unparseable statement becomes an
    # opaque node; suppressed_by="opaque" bookkeeping must match too.
    source = _handler_from(items, opaque_at=min(position, len(items) - 1))
    paths = _machine_run(source, "paths", tolerant=True)
    summary = _machine_run(source, "summary", tolerant=True)
    assert summary == paths, source


# -- the five paper protocols --------------------------------------------------

class TestPaperCorpusEquivalence:
    @pytest.mark.parametrize(
        "protocol", ["bitvector", "dyn_ptr", "sci", "coma", "rac"])
    def test_protocol_reports_identical_and_confident(self, tmp_path,
                                                      protocol):
        from repro.flash.codegen import generate_protocol
        gp = generate_protocol(protocol)
        paths = []
        for filename, text in gp.files.items():
            p = tmp_path / filename
            p.write_text(text)
            paths.append(str(p))
        docs = {}
        scores = {}
        for engine in ("paths", "summary"):
            clear_function_summaries()
            run = check_files(sorted(paths), keep_going=True, cache=None,
                              engine=engine)
            docs[engine] = json.dumps(run_to_json(run), indent=2,
                                      sort_keys=True)
            scores[engine] = score_run(run)
        assert docs["paths"] == docs["summary"]
        assert scores["paths"] == scores["summary"]


# -- summary replay ------------------------------------------------------------

_REAL_BUG = """
void RealBug(void) {
    unsigned addr;
    unsigned buf;
    addr = HANDLER_GLOBALS(header.nh.addr);
    MISCBUS_READ_DB(addr, buf);
    return;
}
"""

_IRRELEVANT = """
void Bystander(void) {
    unsigned i;
    for (i = 0; i < 4; i = i + 1) {
        bump_counter(i);
    }
    return;
}
"""


class TestSummaryStore:
    def test_replay_is_indistinguishable_from_walking(self):
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_REAL_BUG)
        (cfg,) = program.cfgs()
        store = function_summaries()
        hits0, misses0 = store.hits, store.misses
        first, second = ReportSink(), ReportSink()
        run_machine(sm, cfg, first, feasibility=True, engine="summary")
        run_machine(sm, cfg, second, feasibility=True, engine="summary")
        assert store.misses == misses0 + 1
        assert store.hits == hits0 + 1
        assert _snapshot(first) == _snapshot(second)
        assert len(first.reports) == 1

    def test_budgeted_runs_bypass_the_store(self):
        from repro.mc import Budget
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_REAL_BUG)
        (cfg,) = program.cfgs()
        store = function_summaries()
        lookups0 = store.hits + store.misses
        sink = ReportSink()
        run_machine(sm, cfg, sink, budget=Budget(max_steps=100000),
                    engine="summary")
        assert store.hits + store.misses == lookups0

    def test_irrelevant_function_is_skipped_entirely(self):
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_IRRELEVANT)
        (cfg,) = program.cfgs()
        sl = slice_for(sm, cfg)
        assert sl.full_skip
        sink = ReportSink()
        run_machine(sm, cfg, sink, engine="summary")
        assert _snapshot(sink) == _snapshot(ReportSink())


# -- the slicer ----------------------------------------------------------------

class TestMachineFilter:
    def _calls(self, source: str) -> dict[str, ast.Call]:
        program = program_from_source(source)
        out = {}
        for unit in program.units.values():
            for node in unit.walk():
                if isinstance(node, ast.Call) and node.callee_name:
                    out[node.callee_name] = node
        return out

    def test_relevant_calls_pass_irrelevant_fail(self):
        filt = filter_for(_SM)
        calls = self._calls("""
void F(void) {
    unsigned addr;
    unsigned buf;
    WAIT_FOR_DB_FULL(addr);
    MISCBUS_READ_DB(addr, buf);
    bump_counter(addr);
    return;
}
""")
        assert filt.match_possible(calls["WAIT_FOR_DB_FULL"])
        assert filt.match_possible(calls["MISCBUS_READ_DB"])
        assert not filt.match_possible(calls["bump_counter"])

    def test_slice_liveness(self):
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_REAL_BUG)
        (cfg,) = program.cfgs()
        sl = slice_for(sm, cfg)
        assert not sl.full_skip
        assert sl.live_blocks >= 1
        # Slices are cached per (machine, cfg).
        assert slice_for(sm, cfg) is sl


# -- counters ------------------------------------------------------------------

_DIAMOND = """
void Diamond(void) {
    unsigned addr;
    unsigned buf;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if (addr) {
        bump_a(addr);
    } else {
        bump_b(addr);
    }
    MISCBUS_READ_DB(addr, buf);
    return;
}
"""


class TestCounters:
    def test_summary_counters_reach_the_registry(self):
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_REAL_BUG)
        (cfg,) = program.cfgs()
        registry = MetricsRegistry()
        previous = activate_metrics(registry)
        try:
            for _ in range(2):
                run_machine(sm, cfg, ReportSink(), feasibility=True,
                            engine="summary")
        finally:
            activate_metrics(previous)
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.summary_misses", 0) >= 1
        assert counters.get("engine.summary_hits", 0) >= 1

    def test_merged_states_counted_and_rendered(self):
        # Feasibility off: both diamond arms rejoin in the same
        # (block, state) key, so the join merges rather than forking.
        sm = parse_metal(FIGURE_2)
        program = program_from_source(_DIAMOND)
        (cfg,) = program.cfgs()
        registry = MetricsRegistry()
        previous = activate_metrics(registry)
        try:
            run_machine(sm, cfg, ReportSink(), engine="summary")
        finally:
            activate_metrics(previous)
        snapshot = registry.snapshot()
        assert snapshot["counters"].get("engine.merged_states", 0) >= 1
        # ``mc-check stats`` renders every counter, these included.
        assert "engine.merged_states" in format_metrics(snapshot)

    def test_stats_cli_shows_engine_counters(self, tmp_path):
        unit = tmp_path / "bug.c"
        unit.write_text(_REAL_BUG)
        metrics = tmp_path / "metrics.json"
        proc = run_cli("check", str(unit), "--no-cache",
                       "--metrics-out", str(metrics),
                       cache_dir=tmp_path / "cache")
        assert metrics.exists(), proc.stdout + proc.stderr
        shown = run_cli("stats", str(metrics))
        assert "engine.summary_misses" in shown.stdout


# -- cache keys and resume across engine modes ---------------------------------

class TestEngineConfigKeys:
    @pytest.fixture
    def bug_files(self, tmp_path):
        a = tmp_path / "a.c"
        a.write_text(_REAL_BUG)
        return [str(a)]

    def test_engine_switch_never_serves_stale_entries(self, bug_files,
                                                      tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = check_files(bug_files, cache=cache, engine="summary")
        crossed = check_files(bug_files, cache=cache, engine="paths")
        assert crossed.stats.hits == 0
        warm = check_files(bug_files, cache=cache, engine="summary")
        assert warm.stats.hits > 0

        def formatted(run):
            return "\n".join(format_reports(r.reports, heading=n)
                             for n, r in run.results.items())

        assert formatted(first) == formatted(crossed) == formatted(warm)

    def test_resume_refuses_engine_mismatch(self, tmp_path):
        runs = tmp_path / "runs"
        journal = RunJournal.create(
            runs, config={"engine": "summary", "feasibility": "on",
                          "frontend": "strict"})
        journal.close()
        RunJournal.resume(runs, journal.run_id,
                          {"engine": "summary"}).close()
        with pytest.raises(ReproError, match="engine='summary'"):
            RunJournal.resume(runs, journal.run_id, {"engine": "paths"})

    def test_resume_refuses_engine_mismatch_end_to_end(self, bug_files,
                                                       tmp_path):
        cache_dir = tmp_path / "cachedir"
        first = run_cli("check", bug_files[0], cache_dir=cache_dir)
        run_id = None
        for line in first.stderr.splitlines():
            if line.startswith("run: id="):
                run_id = line.split("run: id=", 1)[1].strip()
        assert run_id, first.stderr
        second = run_cli("check", bug_files[0], "--resume", run_id,
                         "--engine", "paths", cache_dir=cache_dir)
        assert second.returncode == 2
        assert "was recorded with engine='summary'" in second.stderr
