"""Parser tests: declarations, statements, expressions, precedence."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse, parse_expression, parse_statement


class TestExpressions:
    def test_integer_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, ast.IntLit)
        assert expr.value == 42

    def test_hex_literal_value(self):
        assert parse_expression("0x10").value == 16

    def test_octal_literal_value(self):
        assert parse_expression("010").value == 8

    def test_suffixed_literal_value(self):
        assert parse_expression("42UL").value == 42

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expression("a << 2 + 1")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_bitand_below_equality(self):
        expr = parse_expression("a & b == c")
        assert expr.op == "&"
        assert expr.right.op == "=="

    def test_logical_and_or(self):
        expr = parse_expression("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_assignment_right_associative(self):
        expr = parse_expression("a = b = c")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expression("a += 2")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_ternary(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr.otherwise, ast.Ternary)

    def test_call_no_args(self):
        expr = parse_expression("f()")
        assert isinstance(expr, ast.Call) and expr.args == []

    def test_call_with_args(self):
        expr = parse_expression("f(1, x, g(2))")
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)

    def test_callee_name(self):
        assert parse_expression("PI_SEND(1)").callee_name == "PI_SEND"

    def test_member_chain(self):
        expr = parse_expression("a.b.c")
        assert isinstance(expr, ast.Member) and expr.name == "c"
        assert isinstance(expr.base, ast.Member) and expr.base.name == "b"

    def test_arrow(self):
        expr = parse_expression("p->f")
        assert expr.arrow is True

    def test_index(self):
        expr = parse_expression("a[i + 1]")
        assert isinstance(expr, ast.Index)

    def test_postfix_chain(self):
        expr = parse_expression("a.b[0].c")
        assert isinstance(expr, ast.Member)
        assert isinstance(expr.base, ast.Index)

    def test_unary_operators(self):
        for op in ("-", "!", "~", "*", "&", "++", "--"):
            expr = parse_expression(f"{op}x")
            assert isinstance(expr, ast.UnaryOp) and expr.op == op

    def test_postincrement(self):
        expr = parse_expression("x++")
        assert isinstance(expr, ast.PostfixOp) and expr.op == "++"

    def test_sizeof_expr(self):
        assert isinstance(parse_expression("sizeof(x)"), ast.SizeofExpr)

    def test_sizeof_type(self):
        assert isinstance(parse_expression("sizeof(unsigned)"), ast.SizeofType)

    def test_cast(self):
        expr = parse_expression("(unsigned)x")
        assert isinstance(expr, ast.Cast)

    def test_cast_with_typedef(self):
        expr = parse_expression("(u32)x", typedefs={"u32"})
        assert isinstance(expr, ast.Cast)

    def test_comma_operator(self):
        expr = parse_expression("a = 1, b = 2")
        assert isinstance(expr, ast.Comma)
        assert len(expr.parts) == 2

    def test_adjacent_string_concatenation(self):
        expr = parse_expression('"ab" "cd"')
        assert isinstance(expr, ast.StringLit)
        assert expr.text == '"abcd"'

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a b")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(ParseError):
            parse_expression("(a + b")


class TestStatements:
    def test_expression_statement(self):
        stmt = parse_statement("f();")
        assert isinstance(stmt, ast.ExprStmt)

    def test_empty_statement(self):
        assert isinstance(parse_statement(";"), ast.EmptyStmt)

    def test_if_else(self):
        stmt = parse_statement("if (a) f(); else g();")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_statement("if (a) if (b) f(); else g();")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while(self):
        stmt = parse_statement("while (a < 3) a++;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = parse_statement("do { f(); } while (x);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        stmt = parse_statement("for (i = 0; i < 10; i++) f();")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.cond is not None

    def test_for_with_declaration(self):
        stmt = parse_statement("for (int i = 0; i < 10; i++) f();")
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        stmt = parse_statement("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_with_cases(self):
        stmt = parse_statement(
            "switch (x) { case 1: f(); break; default: g(); }"
        )
        assert isinstance(stmt, ast.Switch)
        kinds = [type(s).__name__ for s in stmt.body.stmts]
        assert "Case" in kinds and "Default" in kinds

    def test_return_value(self):
        stmt = parse_statement("return x + 1;")
        assert isinstance(stmt, ast.Return) and stmt.value is not None

    def test_return_void(self):
        assert parse_statement("return;").value is None

    def test_goto_and_label(self):
        stmt = parse_statement("goto out;")
        assert isinstance(stmt, ast.Goto) and stmt.label == "out"
        label = parse_statement("out:")
        assert isinstance(label, ast.Label) and label.name == "out"

    def test_local_declaration(self):
        stmt = parse_statement("unsigned a = 1, b;")
        assert isinstance(stmt, ast.DeclStmt)
        assert [d.name for d in stmt.decls] == ["a", "b"]
        assert stmt.decls[0].init is not None

    def test_pointer_declaration(self):
        stmt = parse_statement("int *p;")
        assert stmt.decls[0].type_name.pointer_depth == 1

    def test_array_declaration(self):
        stmt = parse_statement("int a[4];")
        assert len(stmt.decls[0].type_name.array_dims) == 1

    def test_block(self):
        stmt = parse_statement("{ f(); g(); }")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 2


class TestTopLevel:
    def test_function_definition(self):
        unit = parse("void f(void) { return; }")
        func = unit.function("f")
        assert func.takes_no_params
        assert func.return_type.is_void

    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.function("add")
        assert [p.name for p in func.params] == ["a", "b"]
        assert not func.takes_no_params

    def test_prototype(self):
        unit = parse("int f(int x);")
        assert isinstance(unit.decls[0], ast.FunctionDecl)

    def test_global_variable(self):
        unit = parse("static unsigned counter = 0;")
        decl = unit.decls[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.storage == "static"

    def test_multiple_globals_one_line(self):
        unit = parse("int a, b, *c;")
        assert [d.name for d in unit.decls] == ["a", "b", "c"]
        assert unit.decls[2].type_name.pointer_depth == 1

    def test_struct_definition(self):
        unit = parse("struct H { int len; unsigned op; };")
        struct = unit.decls[0]
        assert isinstance(struct, ast.StructDef)
        assert [f.name for f in struct.fields_] == ["len", "op"]

    def test_union_definition(self):
        unit = parse("union U { int i; unsigned u; };")
        assert unit.decls[0].is_union

    def test_nested_struct_reference(self):
        unit = parse(
            "struct A { int x; };\nstruct B { struct A a; };"
        )
        field = unit.decls[1].fields_[0]
        assert field.type_name.specifiers == ["struct", "A"]

    def test_enum_definition(self):
        unit = parse("enum E { RED, GREEN = 5, BLUE };")
        enum = unit.decls[0]
        assert isinstance(enum, ast.EnumDef)
        assert [name for name, _ in enum.enumerators] == ["RED", "GREEN", "BLUE"]

    def test_typedef_registers_name(self):
        unit = parse("typedef unsigned long u32;\nu32 x;\nvoid f(void) { u32 y; y = 1; }")
        assert isinstance(unit.decls[1], ast.VarDecl)

    def test_typedef_struct(self):
        unit = parse("typedef struct Hdr { int len; } Header;\nHeader h;")
        assert isinstance(unit.decls[1], ast.VarDecl)

    def test_functions_listing(self):
        unit = parse("void a(void) {}\nint x;\nvoid b(void) {}")
        assert [f.name for f in unit.functions()] == ["a", "b"]

    def test_missing_function_raises_keyerror(self):
        unit = parse("void a(void) {}")
        with pytest.raises(KeyError):
            unit.function("nope")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("void f(void) { if (x) {")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("void f(void) { 1 +; }")
        assert excinfo.value.location is not None


class TestFlashShapedCode:
    """The constructs the FLASH generator and checkers rely on."""

    def test_handler_globals_assignment(self):
        stmt = parse_statement("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;")
        expr = stmt.expr
        assert isinstance(expr, ast.Assign)
        assert expr.target.callee_name == "HANDLER_GLOBALS"

    def test_send_macro_call(self):
        stmt = parse_statement("NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);")
        assert len(stmt.expr.args) == 6

    def test_read_inside_assignment(self):
        stmt = parse_statement("v = MISCBUS_READ_DB(addr, 8);")
        call = stmt.expr.value
        assert call.callee_name == "MISCBUS_READ_DB"
