"""Path-sensitive engine tests: caching, naive equivalence, hooks."""

from repro.cfg import build_cfg
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.sema import annotate
from repro.metal.runtime import ReportSink
from repro.metal.sm import STOP, StateMachine
from repro.mc.engine import (
    check_unit,
    run_machine,
    run_machine_naive,
)


def build(src, name="f"):
    unit = parse(src)
    annotate(unit)
    return unit, build_cfg(unit.function(name))


def simple_machine():
    """open() must precede use(); close() stops the path."""
    sm = StateMachine("test")
    sm.decl("any", "x")
    sm.state("start")
    sm.add_rule("start", "open(x)", target="opened")
    sm.state("opened")
    sm.add_rule(
        "start", "use(x)",
        action=lambda ctx: ctx.err("use before open"),
    )
    sm.add_rule("opened", "close(x)", target=STOP)
    return sm


class TestBasics:
    def test_error_reported(self):
        _, cfg = build("void f(void) { use(1); }")
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)
        assert len(sink) == 1

    def test_transition_suppresses(self):
        _, cfg = build("void f(void) { open(1); use(1); }")
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)
        assert len(sink) == 0

    def test_one_bad_path_found(self):
        _, cfg = build("""
            void f(void) {
                if (c) { open(1); }
                use(1);
            }
        """)
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)
        assert len(sink) == 1

    def test_stop_halts_path(self):
        _, cfg = build("void f(void) { open(1); close(1); use(1); }")
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)
        # After close the path stops; the use is never seen.
        assert len(sink) == 0

    def test_duplicate_reports_deduplicated(self):
        _, cfg = build("""
            void f(void) {
                if (a) { x1 = 1; }
                if (b) { x2 = 1; }
                use(1);
            }
        """)
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)
        # Four paths reach the same bad use; one diagnostic.
        assert len(sink) == 1

    def test_initial_state_fn_skips_function(self):
        sm = simple_machine()
        sm.initial_state_fn = lambda fn: None
        _, cfg = build("void f(void) { use(1); }")
        sink = ReportSink()
        run_machine(sm, cfg, sink)
        assert len(sink) == 0

    def test_initial_state_fn_selects_state(self):
        sm = simple_machine()
        sm.initial_state_fn = (
            lambda fn: "opened" if fn.name == "trusted" else "start"
        )
        unit = parse("void trusted(void) { use(1); }\n"
                     "void other(void) { use(1); }")
        annotate(unit)
        sink = check_unit(sm, unit)
        assert len(sink) == 1
        assert sink.reports[0].function == "other"


class TestPathEndHook:
    def make_machine(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("clean")
        sm.state("dirty")
        sm.add_rule("clean", "acquire(x)", target="dirty")
        sm.add_rule("dirty", "release(x)", target="clean")
        ends = []
        sm.path_end_action = lambda state, ctx: ends.append(state)
        return sm, ends

    def test_end_state_reported(self):
        sm, ends = self.make_machine()
        _, cfg = build("void f(void) { acquire(1); }")
        run_machine(sm, cfg, ReportSink())
        assert ends == ["dirty"]

    def test_end_states_per_path(self):
        sm, ends = self.make_machine()
        _, cfg = build("""
            void f(void) {
                acquire(1);
                if (c) { release(1); }
            }
        """)
        run_machine(sm, cfg, ReportSink())
        assert sorted(ends) == ["clean", "dirty"]


class TestBranchHook:
    def make_machine(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("unknown")
        sm.state("yes")
        sm.state("no")

        def branch(state, cond, label):
            if (isinstance(cond, ast.Call)
                    and cond.callee_name == "test_it"
                    and state == "unknown"):
                return "yes" if label == "true" else "no"
            return None

        sm.branch_fn = branch
        seen = []
        sm.path_end_action = lambda state, ctx: seen.append(state)
        return sm, seen

    def test_edge_sensitive_states(self):
        sm, seen = self.make_machine()
        _, cfg = build("""
            void f(void) {
                if (test_it()) { a(); } else { b(); }
            }
        """)
        run_machine(sm, cfg, ReportSink())
        assert sorted(seen) == ["no", "yes"]

    def test_unrelated_condition_ignored(self):
        sm, seen = self.make_machine()
        _, cfg = build("void f(void) { if (z) { a(); } }")
        run_machine(sm, cfg, ReportSink())
        assert sorted(seen) == ["unknown"]


class TestCachingVsNaive:
    SOURCES = [
        "void f(void) { if (a) { open(1); } use(1); }",
        "void f(void) { open(1); if (a) { close(1); } use(1); }",
        """void f(void) {
            if (a) { open(1); } else { use(1); }
            if (b) { use(2); }
            use(3);
        }""",
        """void f(void) {
            while (a) { if (b) { open(1); } }
            use(1);
        }""",
    ]

    def test_same_reports_with_and_without_cache(self):
        for src in self.SOURCES:
            _, cfg = build(src)
            cached, naive = ReportSink(), ReportSink()
            run_machine(simple_machine(), cfg, cached)
            run_machine_naive(simple_machine(), cfg, naive)
            assert (
                sorted(str(r) for r in cached.reports)
                == sorted(str(r) for r in naive.reports)
            ), src

    def test_naive_walks_exponentially_many_paths(self):
        body = " ".join(f"if (c{i}) {{ a(); }}" for i in range(10))
        _, cfg = build(f"void f(void) {{ {body} use(1); }}")
        walked = run_machine_naive(simple_machine(), cfg, ReportSink())
        assert walked >= 2 ** 10

    def test_naive_respects_path_cap(self):
        import pytest
        body = " ".join(f"if (c{i}) {{ a(); }}" for i in range(14))
        _, cfg = build(f"void f(void) {{ {body} }}")
        with pytest.raises(ValueError):
            run_machine_naive(simple_machine(), cfg, ReportSink(),
                              max_paths=1000)

    def test_cached_engine_visits_loops_finitely(self):
        _, cfg = build("""
            void f(void) {
                while (a) { if (b) { open(1); } else { use(9); } }
            }
        """)
        sink = ReportSink()
        run_machine(simple_machine(), cfg, sink)  # must terminate
        assert len(sink) == 1


class TestMessageExpansion:
    def test_binding_interpolation(self):
        sm = StateMachine("t")
        sm.decl("any", "x")
        sm.state("s")
        sm.add_rule("s", "free(x)",
                    action=lambda ctx: ctx.err("freeing %x twice"))
        unit = parse("void f(void) { free(buffer_ptr); }")
        annotate(unit)
        sink = check_unit(sm, unit)
        assert "buffer_ptr" in sink.reports[0].message
