"""The tolerant frontend: crash-proof parsing, havoc semantics, opaque
suppression, input quarantines, and the strict/tolerant contracts.

The contracts under test:

1. **Tolerant never raises.**  ``parse(text, mode="tolerant")`` yields
   a :class:`TranslationUnit` for *any* input — byte soup, truncated
   source, C++ — recovering statements/expressions as opaque nodes and
   quarantining unrecoverable top-level regions.
2. **Strict fails cleanly.**  Strict parsing of arbitrary garbage may
   reject, but only ever with a :class:`SourceError` subclass carrying
   a position — never IndexError/AttributeError/RecursionError.
3. **Byte identity on clean input.**  On the paper corpus (which the
   subset grammar parses fully) tolerant mode is byte-identical to
   strict: same ASTs, same reports, same JSON document.
4. **Opaque poisons, never crashes.**  Sema/CFG/engine treat opaque
   nodes as havoc; reports whose every path crosses an opaque region
   are suppressed with ``suppressed_by="opaque"`` provenance, and a
   clean path to the same report un-suppresses it.
5. **Exit-code discipline.**  ``--frontend tolerant`` exits 0/1 on
   messy codebases (input quarantines land in DEGRADED, not exit 2);
   strict keeps exit 2.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkers import get_checker
from repro.errors import ParseError, SourceError
from repro.lang import ast, clear_memo, parse, parse_annotated, set_default_mode
from repro.mc import check_files, run_to_json
from repro.mc.cache import work_item_key
from repro.obs.metrics import MetricsRegistry, activate_metrics
from repro.project import HandlerInfo, Program, ProtocolInfo

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
REALWORLD = REPO / "examples" / "realworld"


def run_cli(*argv, timeout=120, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["MC_CHECK_CACHE_DIR"] = str(cache_dir)
    else:
        env["MC_CHECK_NO_CACHE"] = "1"
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


# -- 1. tolerant never raises -------------------------------------------------

class TestTolerantNeverRaises:
    @given(st.text(max_size=400))
    @settings(max_examples=300, deadline=None)
    def test_any_text_yields_a_unit(self, text):
        unit = parse(text, "fuzz.c", mode="tolerant")
        assert isinstance(unit, ast.TranslationUnit)
        # The recovered AST is well-formed enough to walk.
        for func in unit.functions():
            assert func.name

    @given(st.text(
        alphabet="intvoidchar(){};=+-*/<>&|!@#$%^~?:.,0123456789 \n\t\"'\\",
        max_size=500,
    ))
    @settings(max_examples=300, deadline=None)
    def test_c_flavoured_soup_yields_a_unit(self, text):
        unit = parse(text, "fuzz.c", mode="tolerant")
        assert isinstance(unit, ast.TranslationUnit)
        stats = unit.frontend_stats
        assert stats["quarantined_functions"] == len(unit.quarantined)

    def test_garbage_corpus_parses_without_raising(self):
        for path in sorted((REALWORLD / "garbage").glob("*.c")):
            text = path.read_bytes().decode("utf-8", errors="replace")
            unit = parse(text, str(path), mode="tolerant")
            assert isinstance(unit, ast.TranslationUnit)

    def test_deep_nesting_recovers_instead_of_overflowing(self):
        text = "int f(void) { return " + "(" * 100000 + ";"
        unit = parse(text, "deep.c", mode="tolerant")
        assert isinstance(unit, ast.TranslationUnit)


# -- 2. strict fails cleanly (the non-ParseError crash audit) -----------------

class TestStrictFailsCleanly:
    @given(st.text(max_size=400))
    @settings(max_examples=300, deadline=None)
    def test_strict_raises_only_source_errors(self, text):
        try:
            parse(text, "fuzz.c", mode="strict")
        except SourceError as exc:
            # Every rejection carries a position for the operator.
            assert exc.location is not None or str(exc)

    def test_eof_mid_declaration_is_a_parse_error(self):
        for tail in ("int", "int f(", "int f(void) {", "int f(void) { if (",
                     "struct s {", "typedef", "int a = ", "int a[",
                     "int f(void) { x = y ->", "int f(void) { call("):
            with pytest.raises(SourceError):
                parse(tail, "eof.c", mode="strict")

    def test_deep_nesting_is_a_parse_error_not_a_recursion_error(self):
        text = "int f(void) { return " + "(" * 100000 + "0" + ")" * 100000 + "; }"
        with pytest.raises(ParseError) as excinfo:
            parse(text, "deep.c", mode="strict")
        assert "nesting" in str(excinfo.value)


# -- 3. byte identity on clean input ------------------------------------------

class TestByteIdentityOnPaperCorpus:
    @pytest.mark.parametrize("protocol", ["bitvector", "dyn_ptr", "common"])
    def test_paper_protocol_reports_are_identical(self, tmp_path, protocol):
        from repro.flash.codegen import generate_protocol
        gp = generate_protocol(protocol)
        paths = []
        for filename, text in gp.files.items():
            p = tmp_path / filename
            p.write_text(text)
            paths.append(str(p))
        docs = {}
        for mode in ("strict", "tolerant"):
            clear_memo()
            run = check_files(sorted(paths), keep_going=True, cache=None,
                              frontend=mode)
            doc = run_to_json(run)
            for result in run.results.values():
                assert not result.quarantines, (
                    f"{mode}: paper corpus quarantined "
                    f"{result.quarantines}")
                assert not result.suppressed
            docs[mode] = json.dumps(doc, indent=2, sort_keys=True)
        assert docs["strict"] == docs["tolerant"]

    def test_clean_source_asts_unparse_identically(self):
        from repro.lang import unparse_unit
        source = (REALWORLD / "ringbuf.c").read_text()
        strict = parse(source, "ringbuf.c", mode="strict")
        tolerant = parse(source, "ringbuf.c", mode="tolerant")
        assert unparse_unit(strict) == unparse_unit(tolerant)
        assert tolerant.frontend_stats == {
            "recovered_statements": 0, "opaque_expressions": 0,
            "quarantined_functions": 0}


# -- 4. opaque nodes: havoc, suppression, quarantines -------------------------

_DOUBLE_FREE_TEMPLATE = """
void HandlerA(void) {{
    SUBROUTINE_PROLOGUE();
    FreeBuf();
    {between}
    FreeBuf();
    return;
}}
"""

_INFO = ProtocolInfo(
    handlers={"HandlerA": HandlerInfo("HandlerA", "hw")},
    free_routines={"FreeBuf"},
)


def _buffer_mgmt_reports(source):
    set_default_mode("tolerant")
    try:
        clear_memo()
        program = Program({"a.c": source}, info=_INFO)
        result = get_checker("buffer-mgmt").check(program)
    finally:
        set_default_mode("strict")
    return result


class TestOpaqueSemantics:
    def test_double_free_reported_on_clean_path(self):
        result = _buffer_mgmt_reports(
            _DOUBLE_FREE_TEMPLATE.format(between="x = 1;"))
        assert any("freed" in r.message for r in result.reports)
        assert not result.suppressed

    def test_report_suppressed_when_path_crosses_opaque(self):
        result = _buffer_mgmt_reports(
            _DOUBLE_FREE_TEMPLATE.format(between="@@@ junk @@@;"))
        assert not result.reports
        assert result.suppressed
        report, why = result.suppressed[0]
        assert why == "opaque"
        assert "freed" in report.message

    def test_clean_path_wins_over_suppressed_path(self):
        # Branch: one arm opaque, one clean — both reach the second
        # free.  The clean arm's report must surface.
        source = _DOUBLE_FREE_TEMPLATE.format(
            between="if (x) { @@@ junk @@@; } else { x = 1; }")
        result = _buffer_mgmt_reports(source)
        assert any("freed" in r.message for r in result.reports)
        assert not result.suppressed

    def test_opaque_statement_havocs_feasibility_facts(self):
        # fact 'x == 0' established, then an opaque statement: the
        # engine must drop the fact (the unparsed code may write x),
        # so the x != 0 arm stays feasible and its free reports.
        source = """
void HandlerA(void) {
    SUBROUTINE_PROLOGUE();
    x = 0;
    @@@ junk @@@;
    if (x != 0) { FreeBuf(); FreeBuf(); }
    return;
}
"""
        result = _buffer_mgmt_reports(source)
        # The double free is inside the arm guarded by havoc'd state:
        # it must be *seen* (reported or suppressed), not pruned away.
        assert result.reports or result.suppressed

    def test_unrecoverable_region_becomes_input_quarantine(self):
        set_default_mode("tolerant")
        try:
            clear_memo()
            unit = parse("template <class T> T id(T t) { return t; }\n"
                         "int ok(void) { return 1; }\n", "t.cc")
        finally:
            set_default_mode("strict")
        assert [f.name for f in unit.functions()] == ["ok"]
        assert unit.quarantined
        name, message = unit.quarantined[0]
        assert "t.cc:1" in message


# -- metrics ------------------------------------------------------------------

class TestFrontendMetrics:
    def test_recovery_counters_increment(self):
        registry = MetricsRegistry()
        previous = activate_metrics(registry)
        set_default_mode("tolerant")
        try:
            clear_memo()
            parse_annotated("m.c", """
int ok(void) { int z = @@@; @@@ junk @@@; return z; }
template <class T> struct W { T t; };
""")
        finally:
            set_default_mode("strict")
            activate_metrics(previous)
        snapshot = registry.snapshot()
        counters = snapshot.get("counters", snapshot)
        assert counters.get("frontend.recovered_statements", 0) >= 1
        assert counters.get("frontend.opaque_expressions", 0) >= 1
        assert counters.get("frontend.quarantined_functions", 0) >= 1

    def test_strict_parse_counts_nothing(self):
        registry = MetricsRegistry()
        previous = activate_metrics(registry)
        try:
            clear_memo()
            parse_annotated("m.c", "int ok(void) { return 1; }\n")
        finally:
            activate_metrics(previous)
        snapshot = registry.snapshot()
        counters = snapshot.get("counters", snapshot)
        assert not any(k.startswith("frontend.") for k in counters)


# -- cache keys ---------------------------------------------------------------

class TestCacheKeying:
    def test_frontend_mode_changes_the_work_item_key(self):
        units = [("a.c", "deadbeef")]
        strict = work_item_key(checker_fp="c", units=units, engine_fp="e",
                               config_fp="feasibility=on,frontend=strict,schema=4")
        tolerant = work_item_key(checker_fp="c", units=units, engine_fp="e",
                                 config_fp="feasibility=on,frontend=tolerant,schema=4")
        assert strict != tolerant

    def test_mode_switch_never_serves_stale_results(self, tmp_path):
        # Same file, same cache dir: tolerant run (exit 1, degraded),
        # then strict run (exit 2).  A stale tolerant payload served to
        # the strict run would change its exit code.
        target = str(REALWORLD / "mixed_cpp.c")
        cache = tmp_path / "cache"
        first = run_cli("check", target, "--frontend", "tolerant",
                        cache_dir=cache)
        assert first.returncode in (0, 1), first.stderr
        second = run_cli("check", target, cache_dir=cache)
        assert second.returncode == 2, second.stdout + second.stderr


# -- 5. CLI exit-code discipline ----------------------------------------------

class TestCliTolerantExitCodes:
    def test_tolerant_corpus_exits_zero_or_one_without_tracebacks(self):
        files = sorted(str(p) for p in REALWORLD.glob("*.c"))
        files += sorted(str(p) for p in (REALWORLD / "garbage").glob("*.c"))
        proc = run_cli("check", *files, "--frontend", "tolerant",
                       "--keep-going")
        assert proc.returncode in (0, 1), proc.stdout + proc.stderr
        assert "Traceback" not in proc.stderr
        assert "DEGRADED" in proc.stdout
        assert "during input" in proc.stdout

    def test_strict_corpus_exits_two(self):
        proc = run_cli("check", str(REALWORLD / "mixed_cpp.c"))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_tolerant_metal_exits_zero_or_one(self):
        from repro.checkers.metal_sources import FIGURE_2
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            metal = Path(tmp) / "fig2.metal"
            metal.write_text(FIGURE_2)
            proc = run_cli("metal", str(metal),
                           str(REALWORLD / "garbage" / "soup.c"),
                           str(REALWORLD / "netdrv.c"),
                           "--frontend", "tolerant")
        assert proc.returncode in (0, 1), proc.stdout + proc.stderr
        assert "Traceback" not in proc.stderr

    def test_worker_quarantines_still_exit_two_in_tolerant_mode(self,
                                                                tmp_path):
        # Only *input* quarantines are exempt: a crashing checker is
        # still a tool failure under --frontend tolerant.
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker_crash", "count": 1,
                       "attempts": 10}]}))
        target = str(REALWORLD / "ringbuf.c")
        proc = run_cli("check", target, "--frontend", "tolerant",
                       "--jobs", "2", "--max-retries", "0",
                       "--fault-plan", str(plan))
        assert proc.returncode == 2, proc.stdout + proc.stderr
