"""Checkers over switch-based handler bodies (the real FLASH dispatch
shape: 'for every combination of incoming message type ... a different
software handler')."""

from repro.checkers import (
    BufferMgmtChecker,
    BufferRaceChecker,
    MsgLengthChecker,
    SendWaitChecker,
)
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def hw_info(name="H"):
    return ProtocolInfo(name="t", handlers={name: HandlerInfo(name, "hw")})


class TestMsgLengthThroughSwitch:
    def test_consistent_arms_clean(self):
        result = MsgLengthChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1:
                    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                    NI_SEND(NI_REPLY, F_DATA, 1, 0, 1, 0);
                    break;
                case 2:
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
                    break;
                }
            }
        """))
        assert result.reports == []

    def test_one_bad_arm_found(self):
        result = MsgLengthChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1:
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                    NI_SEND(NI_REPLY, F_DATA, 1, 0, 1, 0);
                    break;
                default:
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
                    break;
                }
            }
        """))
        assert len(result.errors) == 1

    def test_fallthrough_carries_length_state(self):
        # Case 1 sets a nonzero length and falls through into case 2's
        # no-data send: the fallthrough path is inconsistent.
        result = MsgLengthChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1:
                    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                case 2:
                    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
                    break;
                }
            }
        """))
        assert len(result.errors) == 1


class TestBufferMgmtThroughSwitch:
    def test_free_in_every_arm_clean(self):
        result = BufferMgmtChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1: DB_FREE(); return;
                case 2: DB_FREE(); return;
                default: DB_FREE(); return;
                }
            }
        """, hw_info()))
        assert result.reports == []

    def test_arm_missing_free_is_leak(self):
        result = BufferMgmtChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1: DB_FREE(); return;
                case 2: return;
                default: DB_FREE(); return;
                }
            }
        """, hw_info()))
        assert len(result.errors) == 1

    def test_no_default_falls_out_holding(self):
        # With no default arm and no matching case, control falls past
        # the switch still holding the buffer: the epilogue must free.
        result = BufferMgmtChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1: DB_FREE(); return;
                }
                DB_FREE();
                return;
            }
        """, hw_info()))
        assert result.reports == []

    def test_fallthrough_double_free(self):
        result = BufferMgmtChecker().check(program_from_source("""
            void H(void) {
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1:
                    DB_FREE();
                case 2:
                    DB_FREE();
                    return;
                default:
                    DB_FREE();
                    return;
                }
            }
        """, hw_info()))
        assert len(result.errors) == 1
        assert "twice" in result.errors[0].message


class TestOthersThroughSwitch:
    def test_buffer_race_per_arm(self):
        result = BufferRaceChecker().check(program_from_source("""
            void H(void) {
                unsigned v;
                switch (HANDLER_GLOBALS(header.nh.op)) {
                case 1:
                    WAIT_FOR_DB_FULL(0);
                    v = MISCBUS_READ_DB(0, 0);
                    break;
                case 2:
                    v = MISCBUS_READ_DB(0, 4);
                    break;
                }
            }
        """))
        assert len(result.errors) == 1

    def test_send_wait_across_switch_join(self):
        # The wait-bit send happens before the switch; only some arms
        # wait, so the non-waiting arms are errors.
        result = SendWaitChecker().check(program_from_source("""
            void H(void) {
                NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);
                switch (x) {
                case 1:
                    WAIT_FOR_NI_REPLY();
                    break;
                case 2:
                    break;
                }
                return;
            }
        """))
        assert len(result.errors) == 1
