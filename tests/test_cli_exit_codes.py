"""CLI exit-code discipline, exercised through real subprocesses.

The contract (``check``/``metal``/``simulate``): **0** the protocol is
clean, **1** the protocol has bugs, **2** the *tool* failed (internal
error or quarantined checker) — so CI can tell the two apart.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkers.metal_sources import FIGURE_2

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_cli(*argv, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def run_python(code, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


# Clean for the static checkers: a utility with no buffer traffic.
CLEAN_UTIL = """
void util(void) {
    SUBROUTINE_PROLOGUE();
    unsigned a;
    a = 1 + 2;
    return;
}
"""

# Clean for the *simulator*: a handler doing the full correct dance.
CLEAN_HANDLER = """
void Handler(void) {
    unsigned addr;
    unsigned v;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    v = MISCBUS_READ_DB(addr, 0);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
    DB_FREE();
    return;
}
"""

RACY_HANDLER = """
void Racy(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""


@pytest.fixture
def clean_c(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN_UTIL)
    return str(path)


@pytest.fixture
def sim_clean_c(tmp_path):
    path = tmp_path / "sim_clean.c"
    path.write_text(CLEAN_HANDLER)
    return str(path)


@pytest.fixture
def racy_c(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY_HANDLER)
    return str(path)


class TestCheckExitCodes:
    def test_clean_file_exits_zero(self, clean_c):
        proc = run_cli("check", clean_c)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no errors found" in proc.stdout

    def test_buggy_file_exits_one(self, racy_c):
        proc = run_cli("check", racy_c)
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_unreadable_input_exits_two(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text('void broken( { "unterminated\n')
        proc = run_cli("check", str(bad))
        assert proc.returncode == 2
        assert "internal error" in proc.stderr

    def test_quarantined_checker_exits_two(self, racy_c):
        # A checker that crashes at run time: without --keep-going the
        # interpreter dies (uncaught traceback); with it, the crash is
        # a quarantine diagnostic and the tool reports exit 2.
        code = f"""
import sys
from repro.checkers.base import Checker, register
from repro.cli import main

@register
class Boom(Checker):
    name = "boom"
    metal_loc = 0
    def check(self, program):
        raise RuntimeError("deliberately broken")

sys.exit(main(["check", {racy_c!r}, "--keep-going"]))
"""
        proc = run_python(code)
        assert proc.returncode == 2, proc.stdout + proc.stderr
        assert "quarantined [boom]" in proc.stdout
        assert "DEGRADED" in proc.stdout
        # the other checkers still reported the seeded race
        assert "unsynchronized" in proc.stdout or "race" in proc.stdout

    def test_crash_without_keep_going_is_a_traceback(self, racy_c):
        code = f"""
import sys
from repro.checkers.base import Checker, register
from repro.cli import main

@register
class Boom(Checker):
    name = "boom"
    metal_loc = 0
    def check(self, program):
        raise RuntimeError("deliberately broken")

sys.exit(main(["check", {racy_c!r}]))
"""
        proc = run_python(code)
        # an uncaught crash is a traceback, not a tidy diagnostic
        assert "Traceback" in proc.stderr
        assert "RuntimeError" in proc.stderr
        assert "quarantined" not in proc.stdout


class TestMetalExitCodes:
    @pytest.fixture
    def figure2_metal(self, tmp_path):
        path = tmp_path / "wait.metal"
        path.write_text(FIGURE_2)
        return str(path)

    def test_clean_exits_zero(self, figure2_metal, clean_c):
        proc = run_cli("metal", figure2_metal, clean_c)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_diagnostics_exit_one(self, figure2_metal, racy_c):
        proc = run_cli("metal", figure2_metal, racy_c)
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_budget_flag_marks_degraded(self, figure2_metal, racy_c):
        proc = run_cli("metal", figure2_metal, racy_c,
                       "--budget-steps", "1")
        assert "DEGRADED" in proc.stdout

    def test_missing_metal_file_exits_two(self, clean_c, tmp_path):
        proc = run_cli("metal", str(tmp_path / "nope.metal"), clean_c)
        assert proc.returncode != 0   # FileNotFoundError (traceback)


class TestSimulateExitCodes:
    def test_clean_run_exits_zero(self, sim_clean_c):
        proc = run_cli("simulate", sim_clean_c, "--dispatch", "1=Handler",
                       "--messages", "50")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_buggy_run_exits_one(self, racy_c):
        proc = run_cli("simulate", racy_c, "--dispatch", "1=Racy",
                       "--messages", "20")
        assert proc.returncode == 1
        assert "NOT CLEAN" in proc.stdout

    def test_fault_plan_flips_clean_to_buggy(self, tmp_path):
        src = tmp_path / "alloc.c"
        src.write_text("""
void AllocNoCheck(void) {
    unsigned buf;
    unsigned v;
    DB_FREE();
    buf = DB_ALLOC();
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
""")
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"seed": 42, "rules": [{"site": "alloc_fail", "every": 5}]}')
        base = ("simulate", str(src), "--dispatch", "1=AllocNoCheck",
                "--messages", "50")
        without = run_cli(*base)
        assert without.returncode == 0, without.stdout + without.stderr
        with_plan = run_cli(*base, "--fault-plan", str(plan))
        assert with_plan.returncode == 1
        assert "alloc_fail" in with_plan.stdout
        assert "NOT CLEAN" in with_plan.stdout

    def test_bad_dispatch_exits_two(self, clean_c):
        proc = run_cli("simulate", clean_c, "--dispatch", "1=NoSuch")
        assert proc.returncode == 2
        assert "internal error" in proc.stderr

    def test_malformed_fault_plan_exits_two(self, sim_clean_c, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"rules": [{"site": "cosmic_ray"}]}')
        proc = run_cli("simulate", sim_clean_c, "--dispatch", "1=Handler",
                       "--fault-plan", str(plan))
        assert proc.returncode == 2
        assert "internal error" in proc.stderr


# Dynamically manifest bugs for the simulator hardening tests: a double
# free that --strict escalates into a typed error mid-run.
DOUBLE_FREE_HANDLER = """
void Doubler(void) {
    unsigned buf;
    buf = DB_ALLOC();
    DB_FREE();
    DB_FREE();
    return;
}
"""


class TestSimulateHardening:
    """Typed failures become structured ``failure:`` records — a raw
    traceback from ``simulate`` is always a bug (satellite contract)."""

    @pytest.fixture
    def doubler_c(self, tmp_path):
        path = tmp_path / "doubler.c"
        path.write_text(DOUBLE_FREE_HANDLER)
        return str(path)

    def test_strict_violation_is_a_structured_failure(self, doubler_c):
        proc = run_cli("simulate", doubler_c, "--dispatch", "1=Doubler",
                       "--messages", "10", "--strict")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "failure: type=DoubleFreeError" in proc.stdout
        assert "property=buffer-refcount" in proc.stdout
        assert "NOT CLEAN" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_strict_failure_still_reports_partial_counters(self, doubler_c):
        proc = run_cli("simulate", doubler_c, "--dispatch", "1=Doubler",
                       "--messages", "10", "--strict")
        assert "handlers run:" in proc.stdout

    def test_interp_error_is_internal_not_a_traceback(self, tmp_path):
        src = tmp_path / "undefined.c"
        src.write_text("void Bad(void) {\n    NO_SUCH_BUILTIN();\n}\n")
        proc = run_cli("simulate", str(src), "--dispatch", "1=Bad",
                       "--messages", "5")
        assert proc.returncode == 2, proc.stdout + proc.stderr
        assert "failure: type=InterpError" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_non_integer_opcode_exits_two(self, sim_clean_c):
        proc = run_cli("simulate", sim_clean_c, "--dispatch", "x=Handler")
        assert proc.returncode == 2
        assert "internal error" in proc.stderr


class TestCampaignExitCodes:
    """``campaign`` keeps the same 0/1/2/130 contract as check/metal."""

    def test_clean_campaign_exits_zero(self, sim_clean_c):
        # No generated faults, a correct handler: nothing can crash.
        proc = run_cli("campaign", sim_clean_c, "--dispatch", "1=Handler",
                       "--runs", "3", "--shard-size", "2", "--messages", "6",
                       "--max-fault-rules", "0", "--no-cache")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "cross-tab:" in proc.stdout

    def test_crashing_campaign_exits_one_and_confirms(self, racy_c):
        proc = run_cli("campaign", racy_c, "--dispatch", "1=Racy",
                       "--runs", "4", "--shard-size", "2", "--messages", "8",
                       "--no-cache")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "confirmed" in proc.stdout
        assert "minimal repro" in proc.stdout

    def test_missing_dispatch_exits_two(self, racy_c):
        proc = run_cli("campaign", racy_c, "--runs", "2", "--no-cache")
        assert proc.returncode == 2
        assert "internal error" in proc.stderr

    def test_metrics_do_not_change_the_crosstab(self, racy_c, tmp_path):
        base = ("campaign", racy_c, "--dispatch", "1=Racy", "--runs", "3",
                "--shard-size", "2", "--messages", "6", "--no-cache")
        plain = tmp_path / "plain.json"
        observed = tmp_path / "observed.json"
        metrics = tmp_path / "metrics.json"
        a = run_cli(*base, "--out", str(plain))
        b = run_cli(*base, "--out", str(observed),
                    "--metrics-out", str(metrics))
        assert a.returncode == b.returncode
        assert plain.read_bytes() == observed.read_bytes()
        snapshot = __import__("json").loads(metrics.read_text())
        assert snapshot["counters"]["campaign.runs"] == 3
