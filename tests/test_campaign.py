"""Simulation campaigns: determinism, shrinking, cross-validation.

Covers the campaign subsystem end to end: the sha256 seed-derivation
audit (exact pinned values — any platform or refactor that shifts one
bit fails here), re-shard invariance, the delta-debugging shrinker's
minimality guarantees, property extraction from simulator stats, the
three-way cross-tab verdicts, the dynamically-confirmed ranking
evidence source, and journal-backed resume byte-identity.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    cross_tabulate,
    crosstab_to_json,
    derive_seed,
    plan_for_run,
    render_crosstab,
    run_campaign,
    runs_for_shard,
)
from repro.campaign.crosstab import StaticReport, reports_from_run
from repro.campaign.plans import RunPlan
from repro.campaign.properties import (
    PROPERTIES,
    Violation,
    canonical_checker,
    machine_invariants,
    property_by_name,
    violations_of,
)
from repro.campaign.shrink import shrink_run
from repro.errors import ReproError
from repro.faults.plan import FaultPlan, FaultRule
from repro.mc.parallel import check_files
from repro.mc.ranking import dynamic_boost, score_run
from repro.mc.supervisor import RunJournal

# A protocol with real, statically-findable bugs that also manifest
# dynamically: a double free, an unchecked DB_ALLOC, an unsynchronized
# read, and a handler that floods one lane.
BUGGY = """
void PILocalGet(void) {
    HANDLER_DEFS();
    long db = DB_ALLOC();
    MISCBUS_READ_DB(HANDLER_GLOBALS(header.nh.addr), 0);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 0, 0);
    DB_FREE(db);
    DB_FREE(db);
}
void NILocalPut(void) {
    HANDLER_DEFS();
    long db = DB_ALLOC();
    WAIT_FOR_DB_FULL(HANDLER_GLOBALS(header.nh.addr));
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(NI_REPLY, F_DATA, 1, 0, 0, 0);
    NI_SEND(NI_REQUEST, F_DATA, 1, 0, 0, 0);
    NI_SEND(NI_REQUEST, F_DATA, 1, 0, 0, 0);
    DB_FREE(db);
}
"""

DISPATCH = ((1, "PILocalGet"), (2, "NILocalPut"))


@pytest.fixture
def buggy_c(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return str(path)


def small_spec(buggy_c, **kw):
    defaults = dict(files=(buggy_c,), dispatch=DISPATCH, runs=6,
                    shard_size=2, seed=11, messages=8, lane_capacity=2)
    defaults.update(kw)
    return CampaignSpec(**defaults)


# -- seed-determinism audit (exact pinned values) ----------------------------

class TestSeedDerivation:
    def test_derive_seed_is_pinned(self):
        # sha256("mc-campaign:<seed>:<role>:<index>") — process state,
        # PYTHONHASHSEED, and platform word size must not matter.  If
        # this test fails, every journaled campaign in the world is
        # invalidated: bump CAMPAIGN_SCHEMA, don't "fix" the values.
        assert [derive_seed(7, "workload", i) for i in range(3)] == [
            8500624984484820018, 175299231772158007, 5224827852480059091]
        assert [derive_seed(7, "faults", i) for i in range(3)] == [
            8487217583496972848, 1891365481759523036, 8170071588235976281]
        assert derive_seed(99, "workload", 0) == 4407966416551831648

    def test_seeds_fit_in_63_bits(self):
        for i in range(200):
            assert 0 <= derive_seed(7, "workload", i) < 2 ** 63

    def test_roles_are_independent_streams(self):
        assert derive_seed(7, "workload", 0) != derive_seed(7, "faults", 0)
        assert derive_seed(7, "workload", 0) != derive_seed(8, "workload", 0)


class TestPlans:
    def test_plan_is_pinned(self):
        spec = CampaignSpec(files=("p.c",), dispatch=((1, "H"),),
                            runs=6, shard_size=2, seed=7)
        plan = plan_for_run(spec, 0)
        assert plan.seed == 8500624984484820018
        assert [r.site for r in plan.fault_plan.rules] == ["alloc_fail"]
        assert plan.fault_plan.seed == 47465
        assert plan_for_run(spec, 1).fault_plan is None

    def test_resharding_changes_scheduling_not_outcomes(self):
        a = CampaignSpec(files=("p.c",), dispatch=((1, "H"),),
                         runs=10, shard_size=2, seed=7)
        b = CampaignSpec(files=("p.c",), dispatch=((1, "H"),),
                         runs=10, shard_size=7, seed=7)
        plans_a = [p for s in range(a.n_shards) for p in runs_for_shard(a, s)]
        plans_b = [p for s in range(b.n_shards) for p in runs_for_shard(b, s)]
        assert plans_a == plans_b

    def test_spec_json_round_trip(self):
        spec = CampaignSpec(files=("a.c", "b.c"), dispatch=DISPATCH,
                            runs=17, shard_size=5, seed=3, messages=12,
                            fault_sites=("alloc_fail", "lane_overflow"))
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            CampaignSpec(files=("p.c",), dispatch=())
        with pytest.raises(ReproError):
            CampaignSpec(files=("p.c",), dispatch=((1, "H"),), runs=0)
        with pytest.raises(ReproError):
            CampaignSpec(files=("p.c",), dispatch=((1, "H"),),
                         fault_sites=("warp_core_breach",))

    def test_out_of_range_indexes_refused(self):
        spec = CampaignSpec(files=("p.c",), dispatch=((1, "H"),),
                            runs=4, shard_size=2)
        with pytest.raises(ReproError):
            plan_for_run(spec, 4)
        with pytest.raises(ReproError):
            runs_for_shard(spec, 2)


# -- the shrinker (pure, driven by a synthetic execute) ----------------------

def _rule(site, **kw):
    return FaultRule(site=site, **kw)


class TestShrinker:
    def test_drops_irrelevant_rules_and_prefixes(self):
        # Failure needs >= 5 messages and the alloc_fail rule; the two
        # other rules and the message tail are noise to strip.
        rules = (_rule("msg_dup"), _rule("alloc_fail"), _rule("msg_delay"))
        plan = RunPlan(run_index=0, seed=1, messages=40,
                       fault_plan=FaultPlan(rules=rules, seed=9))

        def execute(candidate):
            has_alloc = (candidate.fault_plan is not None and any(
                r.site == "alloc_fail" for r in candidate.fault_plan.rules))
            if has_alloc and candidate.messages >= 5:
                return frozenset({"buffer-leak"})
            return frozenset()

        result = shrink_run(plan, frozenset({"buffer-leak"}), execute)
        assert result.plan.messages == 5
        assert [r.site for r in result.plan.fault_plan.rules] == [
            "alloc_fail"]
        assert not result.capped
        assert result.iterations > 0

    def test_fault_free_failure_shrinks_to_shortest_prefix(self):
        plan = RunPlan(run_index=0, seed=1, messages=64, fault_plan=None)

        def execute(candidate):
            return (frozenset({"no-deadlock"})
                    if candidate.messages >= 17 else frozenset())

        result = shrink_run(plan, frozenset({"no-deadlock"}), execute)
        assert result.plan.messages == 17
        assert result.plan.fault_plan is None

    def test_shrunk_repro_preserves_the_full_signature(self):
        # Two target properties: a candidate reproducing only one must
        # be rejected, even though it is "still failing".
        rules = (_rule("alloc_fail"), _rule("lane_overflow"))
        plan = RunPlan(run_index=0, seed=1, messages=10,
                       fault_plan=FaultPlan(rules=rules, seed=9))

        def execute(candidate):
            found = set()
            if candidate.fault_plan is not None:
                sites = {r.site for r in candidate.fault_plan.rules}
                if "alloc_fail" in sites:
                    found.add("buffer-leak")
                if "lane_overflow" in sites:
                    found.add("lane-capacity")
            return frozenset(found)

        targets = frozenset({"buffer-leak", "lane-capacity"})
        result = shrink_run(plan, targets, execute)
        sites = {r.site for r in result.plan.fault_plan.rules}
        assert sites == {"alloc_fail", "lane_overflow"}

    def test_budget_cap_marks_result_capped(self):
        plan = RunPlan(run_index=0, seed=1, messages=1 << 20,
                       fault_plan=None)

        def execute(candidate):
            return frozenset({"x"}) if candidate.messages >= 3 else frozenset()

        result = shrink_run(plan, frozenset({"x"}), execute,
                            max_executions=3)
        assert result.capped
        assert result.iterations == 3
        # whatever it returns must still reproduce the failure
        assert execute(result.plan) == frozenset({"x"})


# -- properties --------------------------------------------------------------

class TestProperties:
    def test_registry_is_consistent(self):
        names = [p.name for p in PROPERTIES]
        assert len(names) == len(set(names))
        for prop in PROPERTIES:
            assert property_by_name(prop.name) is prop

    def test_checker_aliases(self):
        assert canonical_checker("wait_for_db") == "buffer-race"
        assert canonical_checker("msglen_check") == "msg-length"
        assert canonical_checker("buffer-mgmt") == "buffer-mgmt"

    def test_violations_from_attributed_stats(self):
        class Stats:
            attribution = {"double_frees": {"H": 2},
                           "lane_overruns": {"A": 1, "B": 3}}
            deadlock = ""
            deadlock_handler = None

            def __getattr__(self, name):
                counters = {"double_frees": 2, "lane_overruns": 4}
                return counters.get(name, 0)

        found = {v.property: v for v in violations_of(Stats())}
        assert found["buffer-refcount"].count == 2
        assert found["buffer-refcount"].handlers == ("H",)
        assert found["lane-capacity"].handlers == ("A", "B")
        assert "no-deadlock" not in found

    def test_machine_invariants_hold_even_for_buggy_protocols(
            self, buggy_c):
        from repro.flash.sim import FlashMachine, WorkloadSpec
        from repro.project import Program, read_sources
        program = Program(read_sources([buggy_c]))
        functions = {f.name: f for f in program.functions()}
        machine = FlashMachine(functions, dict(DISPATCH), strict=False,
                               lane_capacity=2, max_hops=2)
        machine.run(WorkloadSpec(messages=12, seed=3,
                                 opcode_weights=((1, 1), (2, 1))))
        assert machine_invariants(machine) == []


@given(seed=st.integers(0, 2 ** 32), messages=st.integers(1, 24),
       lanes=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_structural_invariants_under_fuzzed_workloads(
        seed, messages, lanes, tmp_path_factory):
    """Hypothesis drive: whatever the workload does to this buggy
    protocol, the simulator's own structures stay sane (refcounts
    non-negative, lanes within capacity, pool accounting exact)."""
    global _FUZZ_STATE
    try:
        functions = _FUZZ_STATE
    except NameError:
        from repro.project import Program, read_sources
        path = tmp_path_factory.mktemp("fuzz") / "buggy.c"
        path.write_text(BUGGY)
        program = Program(read_sources([str(path)]))
        functions = _FUZZ_STATE = {f.name: f for f in program.functions()}
    from repro.errors import SimulationError
    from repro.flash.sim import FlashMachine, WorkloadSpec
    machine = FlashMachine(functions, dict(DISPATCH), strict=False,
                           lane_capacity=lanes, max_hops=2)
    try:
        stats = machine.run(WorkloadSpec(
            messages=messages, seed=seed,
            opcode_weights=((1, 1), (2, 1))))
    except SimulationError:
        stats = None                   # escaped typed failure is legal
    assert machine_invariants(machine) == []
    if stats is not None:
        assert stats.handlers_run >= 0
        for violation in violations_of(stats):
            assert violation.count >= 0


# -- cross-tab verdicts ------------------------------------------------------

def _report(checker, function, line=1, confidence=0.4):
    return StaticReport(
        id=f"{checker}-{function}-{line}", checker=checker,
        machine=checker, function=function, file="p.c", line=line,
        column=1, message=f"{checker} message", key=(checker, function, line),
        confidence=confidence)


def _outcome(run, violations, executed, crashed=None):
    return {"run": run, "seed": 1, "messages": 8, "fault_plan": None,
            "violations": [v.to_obj() for v in violations],
            "crashed": bool(violations) if crashed is None else crashed,
            "error": None, "functions_executed": list(executed),
            "handlers_run": len(executed), "faults": 0, "shrunk": None}


class TestCrossTab:
    def test_three_way_verdicts(self):
        reports = [
            _report("buffer-race", "Reader"),      # confirmed via handler
            _report("buffer-mgmt", "Leaker"),      # confirmed via executed
            _report("msg-length", "Reader"),       # unmanifested
        ]
        outcomes = [
            _outcome(0, [Violation("buffer-sync", 2, ("Reader",)),
                         Violation("buffer-leak", 1, ())],
                     executed=["Reader", "Leaker"]),
            _outcome(1, [Violation("lane-capacity", 1, ("Flooder",))],
                     executed=["Flooder"]),
        ]
        tab = cross_tabulate(reports, outcomes)
        verdicts = {e["id"]: e["verdict"] for e in tab.entries}
        assert verdicts["buffer-race-Reader-1"] == "confirmed"
        assert verdicts["buffer-mgmt-Leaker-1"] == "confirmed"
        assert verdicts["msg-length-Reader-1"] == "unmanifested"
        # the lane violation has no static report at all: checker gap
        assert [(g["property"], g["handler"]) for g in tab.gaps] == [
            ("lane-capacity", "Flooder")]
        assert tab.counters["confirmed"] == 2
        assert tab.counters["unmanifested"] == 1
        assert tab.counters["gaps"] == 1
        assert tab.confirmed_keys == {("buffer-race", "Reader", 1),
                                      ("buffer-mgmt", "Leaker", 1)}

    def test_attribution_must_name_the_reported_function(self):
        # A violation pinned on *another* handler does not confirm.
        reports = [_report("buffer-race", "Innocent")]
        outcomes = [_outcome(0, [Violation("buffer-sync", 1, ("Guilty",))],
                             executed=["Innocent", "Guilty"])]
        tab = cross_tabulate(reports, outcomes)
        assert tab.entries[0]["verdict"] == "unmanifested"

    def test_confirmed_confidence_uses_dynamic_boost(self):
        reports = [_report("buffer-race", "Reader", confidence=0.3)]
        outcomes = [_outcome(0, [Violation("buffer-sync", 1, ("Reader",))],
                             executed=["Reader"])]
        tab = cross_tabulate(reports, outcomes)
        entry = tab.entries[0]
        assert entry["confidence"] == 0.3
        assert entry["confidence_dynamic"] == dynamic_boost(0.3) == 0.65

    def test_json_document_is_deterministic(self):
        reports = [_report("buffer-race", "Reader")]
        outcomes = [_outcome(0, [Violation("buffer-sync", 1, ("Reader",))],
                             executed=["Reader"])]
        a = json.dumps(crosstab_to_json(cross_tabulate(reports, outcomes)),
                       sort_keys=True)
        b = json.dumps(crosstab_to_json(cross_tabulate(reports, outcomes)),
                       sort_keys=True)
        assert a == b


class TestDynamicBoost:
    def test_monotone_and_bounded(self):
        for score in (0.0, 0.1, 0.5, 0.9, 0.99):
            boosted = dynamic_boost(score)
            assert score < boosted < 1.0
        # at the cap, the boost saturates but never reaches 1.0
        assert dynamic_boost(0.9999) == 0.9999

    def test_score_run_applies_evidence(self, buggy_c):
        run = check_files([buggy_c])
        static = score_run(run)
        key = next(iter(static))
        boosted = score_run(run, dynamically_confirmed=frozenset({key}))
        assert boosted[key] == dynamic_boost(static[key])
        for other in static:
            if other != key:
                assert boosted[other] == static[other]


# -- the campaign end to end -------------------------------------------------

class TestCampaignEndToEnd:
    def test_campaign_confirms_static_reports(self, buggy_c):
        spec = small_spec(buggy_c)
        camp = run_campaign(spec, jobs=1)
        assert camp.complete
        assert [o["run"] for o in camp.outcomes] == list(range(6))
        static = reports_from_run(check_files([buggy_c]))
        tab = cross_tabulate(static, camp.outcomes)
        assert tab.counters["confirmed"] >= 1
        # every confirmed report's confidence strictly increased
        for entry in tab.confirmed:
            assert entry["confidence_dynamic"] > entry["confidence"]
        # ...and the evidence flows through the ranking front door too
        boosted = score_run(check_files([buggy_c]),
                            dynamically_confirmed=tab.confirmed_keys)
        plain = score_run(check_files([buggy_c]))
        assert any(boosted[k] > plain[k] for k in tab.confirmed_keys)

    def test_every_crash_ships_a_minimal_repro(self, buggy_c):
        spec = small_spec(buggy_c)
        camp = run_campaign(spec, jobs=1)
        crashes = [o for o in camp.outcomes if o["crashed"]]
        assert crashes
        for outcome in crashes:
            shrunk = outcome["shrunk"]
            assert shrunk is not None
            assert 1 <= shrunk["messages"] <= outcome["messages"]
            assert shrunk["iterations"] >= 1

    def test_outcomes_do_not_depend_on_sharding(self, buggy_c):
        a = run_campaign(small_spec(buggy_c, shard_size=2), jobs=1)
        b = run_campaign(small_spec(buggy_c, shard_size=5), jobs=1)
        assert a.outcomes == b.outcomes

    def test_journal_resume_is_byte_identical(self, buggy_c, tmp_path):
        spec = small_spec(buggy_c)
        static = reports_from_run(check_files([buggy_c]))
        runs_dir = tmp_path / "runs"
        config = {"mode": "campaign"}

        journal = RunJournal.create(runs_dir, config=config)
        first = run_campaign(spec, jobs=1, journal=journal)
        journal.close()

        resumed = RunJournal.resume(runs_dir, journal.run_id, config)
        second = run_campaign(spec, jobs=1, journal=resumed)
        resumed.close()

        doc_a = json.dumps(crosstab_to_json(
            cross_tabulate(static, first.outcomes), spec), sort_keys=True)
        doc_b = json.dumps(crosstab_to_json(
            cross_tabulate(static, second.outcomes), spec), sort_keys=True)
        assert doc_a == doc_b

    def test_missing_handler_quarantines_not_crashes(self, buggy_c):
        spec = small_spec(buggy_c, dispatch=((1, "NoSuchHandler"),))
        camp = run_campaign(spec, jobs=1)
        assert not camp.complete
        assert camp.outcomes == []
        assert all("NoSuchHandler" in slot["note"] or "not defined"
                   in slot["note"] for slot in camp.incomplete_shards)

    def test_render_crosstab_mentions_verdicts(self, buggy_c):
        spec = small_spec(buggy_c)
        camp = run_campaign(spec, jobs=1)
        static = reports_from_run(check_files([buggy_c]))
        text = render_crosstab(cross_tabulate(static, camp.outcomes))
        assert "confirmed" in text
        assert "minimal repro" in text


class TestGeneratedCorpus:
    """The acceptance anchor: on a *generated paper protocol*, a seeded
    campaign dynamically confirms at least one static report and raises
    its confidence through the ranking's evidence source."""

    def test_bitvector_campaign_confirms_static_reports(self, tmp_path):
        from repro.flash.codegen import generate_protocol
        gp = generate_protocol("bitvector")
        for name, text in gp.files.items():
            (tmp_path / name).write_text(text)
        files = sorted(str(tmp_path / f) for f in gp.files)
        handlers = sorted(n for n, h in gp.info.handlers.items()
                          if h.kind == "hw")
        dispatch = tuple(enumerate(handlers, start=1))

        spec = CampaignSpec(files=tuple(files), dispatch=dispatch,
                            runs=10, shard_size=5, seed=7, messages=20,
                            max_hops=2)
        camp = run_campaign(spec, jobs=1)
        assert camp.complete

        run = check_files(files)
        tab = cross_tabulate(reports_from_run(run), camp.outcomes)
        assert tab.counters["confirmed"] >= 1
        for entry in tab.confirmed:
            assert entry["confidence_dynamic"] > entry["confidence"]
        # the ranking front door agrees with the cross-tab's boost
        plain = score_run(run)
        boosted = score_run(run, dynamically_confirmed=tab.confirmed_keys)
        raised = [k for k in tab.confirmed_keys if boosted[k] > plain[k]]
        assert raised
