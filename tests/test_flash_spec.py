"""Protocol specification file format tests."""

import pytest

from repro.cli import main
from repro.flash.codegen import generate_protocol
from repro.flash.spec import SpecError, dump_spec, parse_spec
from repro.project import HandlerInfo, ProtocolInfo


def sample_info():
    info = ProtocolInfo(name="demo", handlers={
        "H1": HandlerInfo("H1", "hw", lane_allowance=(1, 1, 2, 1)),
        "S1": HandlerInfo("S1", "sw", lane_allowance=(1, 1, 1, 1),
                          nostack=True),
    })
    info.free_routines.add("fr")
    info.buffer_use_routines.add("use")
    info.frees_if_true.add("cond")
    info.dir_writeback_routines.add("dw")
    return info


class TestRoundTrip:
    def test_dump_and_parse(self):
        info = sample_info()
        parsed = parse_spec(dump_spec(info))
        assert parsed.name == "demo"
        assert parsed.handlers.keys() == info.handlers.keys()
        assert parsed.handlers["H1"].lane_allowance == (1, 1, 2, 1)
        assert parsed.handlers["S1"].nostack
        assert parsed.free_routines == {"fr"}
        assert parsed.buffer_use_routines == {"use"}
        assert parsed.frees_if_true == {"cond"}
        assert parsed.dir_writeback_routines == {"dw"}

    def test_generated_protocol_round_trips(self):
        gp = generate_protocol("sci")
        parsed = parse_spec(dump_spec(gp.info))
        assert parsed.handlers.keys() == gp.info.handlers.keys()
        for name, handler in gp.info.handlers.items():
            assert parsed.handlers[name].kind == handler.kind
            assert parsed.handlers[name].lane_allowance == \
                handler.lane_allowance
        assert parsed.free_routines == gp.info.free_routines
        assert parsed.buffer_use_routines == gp.info.buffer_use_routines


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        info = parse_spec("""
            # a comment
            protocol x

            handler H hw lanes 1 1 1 1  # trailing comment
        """)
        assert info.name == "x"
        assert "H" in info.handlers

    def test_default_allowance(self):
        info = parse_spec("handler H hw")
        assert info.handlers["H"].lane_allowance == (1, 1, 1, 1)

    def test_bad_kind_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("handler H hardware")

    def test_bad_directive_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("wibble x")

    def test_short_lanes_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("handler H hw lanes 1 2")

    def test_non_numeric_lane_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("handler H hw lanes 1 1 one 1")

    def test_error_carries_location(self):
        with pytest.raises(SpecError) as excinfo:
            parse_spec("protocol a b", filename="p.spec")
        assert "p.spec:1" in str(excinfo.value)


_name = __import__("hypothesis").strategies.from_regex(
    r"[A-Za-z_][A-Za-z0-9_]{0,20}", fullmatch=True)
_handler = __import__("hypothesis").strategies.builds(
    HandlerInfo,
    name=_name,
    kind=__import__("hypothesis").strategies.sampled_from(["hw", "sw", "proc"]),
    lane_allowance=__import__("hypothesis").strategies.tuples(
        *[__import__("hypothesis").strategies.integers(1, 9)] * 4),
    nostack=__import__("hypothesis").strategies.booleans(),
)


class TestRoundTripProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(handlers=st.lists(_handler, max_size=8),
           frees=st.sets(_name, max_size=4),
           uses=st.sets(_name, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_any_info_round_trips(self, handlers, frees, uses):
        info = ProtocolInfo(name="p", handlers={h.name: h for h in handlers})
        info.free_routines |= frees
        info.buffer_use_routines |= uses
        parsed = parse_spec(dump_spec(info))
        assert parsed.handlers == info.handlers
        assert parsed.free_routines == info.free_routines
        assert parsed.buffer_use_routines == info.buffer_use_routines


class TestCliIntegration:
    def test_generate_emits_spec_and_check_consumes_it(self, tmp_path, capsys):
        main(["generate", "sci", "-o", str(tmp_path)])
        spec = tmp_path / "sci.spec"
        assert spec.exists()
        files = sorted(str(p) for p in tmp_path.glob("*.c"))
        # With the spec, handler hook classification is correct: the
        # exec-restrict checker reports only the seeded sci sites
        # (3 uncounted unimplemented routines), not every sw handler.
        code = main(["check", "--checker", "exec-restrict",
                     "--spec", str(spec), *files])
        out = capsys.readouterr().out
        assert out.count("simulator hook missing") == 3
        assert code == 1

    def test_check_without_spec_misclassifies(self, tmp_path, capsys):
        main(["generate", "sci", "-o", str(tmp_path)])
        files = sorted(str(p) for p in tmp_path.glob("*.c"))
        main(["check", "--checker", "exec-restrict", *files])
        out = capsys.readouterr().out
        # Without the handler table every hw/sw handler looks like a
        # subroutine missing SUBROUTINE_PROLOGUE - the spec matters.
        assert out.count("simulator hook missing") > 50
