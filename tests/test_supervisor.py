"""The supervision layer: watchdog, retry, quarantine, journal, resume.

The contract under test, end to end:

- a worker crash (process death, not an exception) is retried with
  backoff and the final report is byte-identical to a fault-free run;
- an item that keeps killing its worker is poison-quarantined as
  ``Quarantine(phase="worker")`` and the run continues (exit 2, like
  any quarantine);
- a hung worker is killed by the per-item watchdog and the item
  retried;
- an interrupted run (SIGTERM, or the ``stop_after_items`` test hook)
  flushes a partial report, exits 130, and ``--resume RUN-ID`` replays
  the journal so the finished report is byte-identical to an
  uninterrupted run;
- an input file deleted between dispatch and execution becomes a
  per-item ``phase="input"`` quarantine, not a worker crash;
- a corrupt cache entry is deleted, counted, and treated as a miss.

Worker faults are injected with the same declarative
:class:`~repro.faults.plan.FaultPlan` machinery the simulator uses
(sites ``worker_crash``/``worker_hang``/``worker_slow``), so every
scenario is seeded and repeatable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule
from repro.faults.worker import WorkerFaultInjector
from repro.mc import (
    ResultCache,
    RunJournal,
    StopFlag,
    SupervisorPolicy,
    check_files,
    format_reports,
    metal_files,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

FILE_A = """
void HandlerA(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    DB_FREE();
    return;
}
"""

FILE_B = """
void HandlerB(void) {
    SUBROUTINE_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    return;
}
"""


#: Clean for every checker: no buffer traffic at all.  The CLI tests
#: that pin exit 0 use these.
CLEAN_A = """
void UtilA(void) {
    SUBROUTINE_PROLOGUE();
    unsigned a;
    a = 1 + 2;
    return;
}
"""

CLEAN_B = """
void UtilB(void) {
    SUBROUTINE_PROLOGUE();
    unsigned b;
    b = 40 + 2;
    return;
}
"""


@pytest.fixture
def two_files(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(FILE_A)
    b.write_text(FILE_B)
    return [str(a), str(b)]


@pytest.fixture
def clean_files(tmp_path):
    a = tmp_path / "clean_a.c"
    b = tmp_path / "clean_b.c"
    a.write_text(CLEAN_A)
    b.write_text(CLEAN_B)
    return [str(a), str(b)]


def _formatted(results):
    return "\n".join(
        format_reports(result.reports, heading=name)
        for name, result in results.items()
    )


def crash_plan(**kwargs):
    return FaultPlan(rules=(FaultRule(site="worker_crash", **kwargs),))


class TestWorkerFaultInjector:
    def test_selection_is_a_pure_function_of_item_and_attempt(self):
        plan = crash_plan(after=1, every=2, count=2)
        inj = WorkerFaultInjector(plan)
        fired = [i for i in range(10) if inj.rule_for(i, 0) is not None]
        assert fired == [1, 3]                       # after=1, every=2, count=2
        assert inj.rule_for(1, 1) is None            # attempts defaults to 1
        again = WorkerFaultInjector(plan)
        assert [i for i in range(10) if again.rule_for(i, 0)] == fired

    def test_attempts_field_covers_retries(self):
        inj = WorkerFaultInjector(crash_plan(count=1, attempts=3))
        assert all(inj.rule_for(0, a) is not None for a in range(3))
        assert inj.rule_for(0, 3) is None

    def test_handler_narrows_by_checker_name(self):
        plan = FaultPlan(rules=(
            FaultRule(site="worker_crash", handler="buffer-race"),))
        inj = WorkerFaultInjector(plan)
        assert inj.rule_for(0, 0, checker="buffer-race") is not None
        assert inj.rule_for(0, 0, checker="msg-length") is None

    def test_sim_rules_are_ignored(self):
        inj = WorkerFaultInjector(
            FaultPlan(rules=(FaultRule(site="alloc_fail"),)))
        assert inj.rule_for(0, 0) is None

    def test_worker_rule_validation(self):
        from repro.errors import FaultPlanError
        with pytest.raises(FaultPlanError):
            FaultRule(site="worker_crash", attempts=0)
        with pytest.raises(FaultPlanError):
            FaultRule(site="worker_slow", seconds=-1.0)


class TestCrashRetry:
    def test_crashes_are_retried_and_report_is_identical(self, two_files):
        baseline = check_files(two_files, jobs=2)
        plan = crash_plan(after=0, every=2, count=3)
        run = check_files(two_files, jobs=2,
                          policy=SupervisorPolicy(fault_plan=plan))
        assert run.supervision.crashes == 3
        assert run.supervision.retried == 3
        assert run.supervision.quarantined == 0
        assert _formatted(run.results) == _formatted(baseline.results)
        assert not any(r.degraded for r in run.results.values())
        assert "3 crash(es)" in run.summary_line()

    def test_persistent_crasher_is_poison_quarantined(self, two_files):
        # attempts far past max_retries: the item can never succeed.
        plan = crash_plan(count=1, attempts=10)
        run = check_files(two_files, jobs=2,
                          policy=SupervisorPolicy(fault_plan=plan))
        assert run.supervision.quarantined == 1
        quarantines = [q for r in run.results.values()
                       for q in r.quarantines]
        assert len(quarantines) == 1
        assert quarantines[0].phase == "worker"
        assert quarantines[0].error_type == "WorkerCrash"
        # the rest of the run survived the poison item
        degraded = [n for r in run.results.values() if r.degraded for n in [r]]
        assert len(degraded) == 1

    def test_hang_is_killed_by_watchdog_and_retried(self, two_files):
        baseline = check_files(two_files, jobs=2)
        plan = FaultPlan(rules=(
            FaultRule(site="worker_hang", count=1, seconds=60.0),))
        run = check_files(
            two_files, jobs=2,
            policy=SupervisorPolicy(fault_plan=plan, item_timeout=0.7))
        assert run.supervision.timeouts == 1
        assert run.supervision.retried == 1
        assert _formatted(run.results) == _formatted(baseline.results)

    def test_inline_runs_never_inject_worker_faults(self, two_files):
        # jobs=1 executes in the parent; a worker_crash there would
        # take down the whole process.  The plan must be inert.
        plan = crash_plan(after=0, every=1, attempts=10)
        run = check_files(two_files, jobs=1,
                          policy=SupervisorPolicy(fault_plan=plan))
        assert run.supervision.crashes == 0
        assert not any(r.degraded for r in run.results.values())


class TestInputQuarantine:
    def test_deleted_file_is_an_input_quarantine_not_a_crash(
            self, two_files, monkeypatch):
        # Delete a unit between dispatch and execution by intercepting
        # the worker-side read (the inline path uses the same code).
        import repro.mc.parallel as parallel_mod

        real = parallel_mod._run_checker_item

        def sabotage(item, config):
            if item.paths == (two_files[1],):
                os.unlink(two_files[1])
            return real(item, config)

        monkeypatch.setattr(parallel_mod, "_run_checker_item", sabotage)
        run = check_files(two_files, jobs=1, names=["buffer-race"])
        result = run.results["buffer-race"]
        assert result.quarantines
        assert all(q.phase == "input" for q in result.quarantines)
        assert result.degraded

    def test_missing_file_up_front_is_a_clean_error(self, tmp_path):
        with pytest.raises(ReproError):
            check_files([str(tmp_path / "gone.c")])


class TestJournalAndResume:
    def test_interrupt_then_resume_is_byte_identical(self, two_files,
                                                     tmp_path):
        baseline = check_files(two_files, jobs=2)
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        first = check_files(
            two_files, jobs=2, journal=journal,
            policy=SupervisorPolicy(stop_after_items=3))
        journal.close()
        assert first.interrupted
        assert first.run_id == journal.run_id
        skipped = [n for r in first.results.values()
                   for n in r.degradation_notes]
        assert any("interrupted" in n for n in skipped)

        resumed_journal = RunJournal.resume(runs, journal.run_id)
        second = check_files(two_files, jobs=2, journal=resumed_journal)
        resumed_journal.close()
        assert not second.interrupted
        assert second.supervision.replayed >= 1
        assert _formatted(second.results) == _formatted(baseline.results)
        for name in baseline.results:
            assert (second.results[name].applied
                    == baseline.results[name].applied)

    def test_stop_flag_interrupts_serial_runs_too(self, two_files):
        flag = StopFlag()
        flag.request("test stop")
        run = check_files(two_files, jobs=1,
                          policy=SupervisorPolicy(stop_flag=flag))
        assert run.interrupted
        assert run.supervision.stop_reason == "test stop"

    def test_journal_tolerates_truncated_tail(self, two_files, tmp_path):
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        check_files(two_files, jobs=1, journal=journal)
        journal.close()
        path = runs / f"{journal.run_id}.jsonl"
        # simulate a kill mid-append: chop the last record in half
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        resumed = RunJournal.resume(runs, journal.run_id)
        second = check_files(two_files, jobs=1, journal=resumed)
        resumed.close()
        baseline = check_files(two_files, jobs=1)
        assert second.supervision.replayed >= 1
        assert _formatted(second.results) == _formatted(baseline.results)

    def test_resume_unknown_run_id_raises(self, tmp_path):
        with pytest.raises(ReproError):
            RunJournal.resume(tmp_path / "runs", "nope")

    def test_journal_never_records_degraded_payloads(self, two_files,
                                                     tmp_path):
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        check_files(two_files, jobs=1, journal=journal,
                    deadline=time.time() - 1.0)
        journal.close()
        lines = (runs / f"{journal.run_id}.jsonl").read_text().splitlines()
        assert len(lines) == 1  # header only: nothing completed cleanly

    def test_editing_a_file_invalidates_its_journal_entries(
            self, two_files, tmp_path):
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        check_files(two_files, jobs=1, journal=journal)
        journal.close()
        Path(two_files[0]).write_text(FILE_A + "\nvoid extra(void) {}\n")
        resumed = RunJournal.resume(runs, journal.run_id)
        run = check_files(two_files, jobs=1, journal=resumed)
        resumed.close()
        # entries for the edited unit no longer match any key; the
        # untouched unit still replays
        total_items = run.supervision.replayed + run.supervision.completed
        assert run.supervision.replayed > 0
        assert run.supervision.completed > 0
        assert run.supervision.replayed < total_items

    def test_serial_step_budgeted_metal_disables_journal(self, two_files,
                                                         tmp_path):
        from repro.checkers.metal_sources import FIGURE_2
        metal = tmp_path / "wait.metal"
        metal.write_text(FIGURE_2)
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        run = metal_files(str(metal), two_files, jobs=1, budget_steps=10**6,
                          journal=journal)
        journal.close()
        assert run.run_id is None  # journal was dropped, run not resumable
        lines = (runs / f"{journal.run_id}.jsonl").read_text().splitlines()
        assert len(lines) == 1


class TestCacheHardening:
    def test_corrupt_entry_is_deleted_and_counted(self, two_files, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        check_files(two_files, cache=cache)
        victim = next(cache.root.rglob("*.json"))
        victim.write_text('{"schema": 1, "truncated')
        second = ResultCache(cache.root)
        run = check_files(two_files, cache=second)
        assert second.stats.corrupt == 1
        assert second.stats.misses == 1
        # the bad entry was deleted, then re-stored from the recompute:
        # what's on disk now parses cleanly
        json.loads(victim.read_text())
        assert "1 corrupt" in run.summary_line()
        # the recomputed entry was re-stored; a third run is all hits
        third = ResultCache(cache.root)
        check_files(two_files, cache=third)
        assert third.stats.misses == 0 and third.stats.corrupt == 0

    def test_clean_stats_line_is_unchanged(self):
        from repro.mc.cache import CacheStats
        stats = CacheStats(hits=3, misses=2)
        assert stats.line() == "cache: 3 hit(s), 2 miss(es)"


def _run_cli(*argv, timeout=180, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


class TestCLIContract:
    def test_crash_plan_run_exits_clean(self, clean_files, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker_crash", "every": 2, "count": 3}],
        }))
        proc = _run_cli(
            "check", *clean_files, "--jobs", "2", "--no-cache",
            "--fault-plan", str(plan),
            env_extra={"MC_CHECK_CACHE_DIR": str(tmp_path / "cache")})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "crash(es)" in proc.stdout
        assert "no errors found" in proc.stdout

    def test_sigterm_exits_130_and_resume_reproduces_baseline(
            self, clean_files, tmp_path):
        env_extra = {"MC_CHECK_CACHE_DIR": str(tmp_path / "cache")}
        baseline = _run_cli("check", *clean_files, "--jobs", "2", "--no-cache",
                            env_extra=env_extra)
        assert baseline.returncode == 0, baseline.stdout + baseline.stderr
        base_body = [l for l in baseline.stdout.splitlines()
                     if not l.startswith("run:")]

        plan = tmp_path / "slow.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker_slow", "every": 1,
                       "seconds": 0.5, "attempts": 5}],
        }))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "check", *clean_files,
             "--jobs", "2", "--fault-plan", str(plan)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        # wait for the run id on *stderr* (the run has started; stdout
        # stays reserved for the report), then interrupt it
        first_line = proc.stderr.readline()
        assert first_line.startswith("run: id="), first_line
        run_id = first_line.strip().split("=", 1)[1]
        time.sleep(2.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        err = first_line + err
        assert proc.returncode == 130, (proc.returncode, out, err)
        assert "INTERRUPTED" in out
        assert f"--resume {run_id}" in err

        resumed = _run_cli("check", *clean_files, "--jobs", "2", "--no-cache",
                           "--resume", run_id, env_extra=env_extra)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        resumed_body = [l for l in resumed.stdout.splitlines()
                        if not l.startswith("run:")]
        assert resumed_body == base_body

    def test_item_timeout_flag_reaches_the_watchdog(self, clean_files,
                                                    tmp_path):
        plan = tmp_path / "hang.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker_hang", "count": 1, "seconds": 60}],
        }))
        proc = _run_cli(
            "check", *clean_files, "--jobs", "2", "--no-cache",
            "--fault-plan", str(plan), "--item-timeout", "0.7",
            env_extra={"MC_CHECK_CACHE_DIR": str(tmp_path / "cache")})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "timeout(s)" in proc.stdout

    def test_max_retries_zero_quarantines_first_crash(self, clean_files,
                                                      tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker_crash", "count": 1, "attempts": 10}],
        }))
        proc = _run_cli(
            "check", *clean_files, "--jobs", "2", "--no-cache",
            "--fault-plan", str(plan), "--max-retries", "0",
            env_extra={"MC_CHECK_CACHE_DIR": str(tmp_path / "cache")})
        assert proc.returncode == 2, proc.stdout + proc.stderr
        assert "quarantined" in proc.stdout
        assert "during worker" in proc.stdout

    def test_help_documents_exit_codes(self):
        proc = _run_cli("--help")
        assert "130" in proc.stdout
        check_help = _run_cli("check", "--help")
        assert "--resume" in check_help.stdout
        assert "--item-timeout" in check_help.stdout
        assert "--max-retries" in check_help.stdout
