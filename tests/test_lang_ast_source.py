"""AST node utilities and source bookkeeping."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse, parse_expression
from repro.lang.source import Location, SourceFile, Span, unknown_location


class TestWalk:
    def test_walk_yields_self_first(self):
        expr = parse_expression("a + b")
        nodes = list(expr.walk())
        assert nodes[0] is expr

    def test_walk_preorder(self):
        expr = parse_expression("f(a, b + c)")
        kinds = [n.kind for n in expr.walk()]
        assert kinds == ["Call", "Ident", "Ident", "BinaryOp", "Ident", "Ident"]

    def test_children_of_if(self):
        unit = parse("void f(void) { if (a) { g(); } else { h(); } }")
        if_stmt = unit.function("f").body.stmts[0]
        kinds = [c.kind for c in if_stmt.children()]
        assert kinds == ["Ident", "Block", "Block"]

    def test_walk_covers_declarations(self):
        unit = parse("void f(void) { int x = g(); }")
        calls = [n for n in unit.walk() if isinstance(n, ast.Call)]
        assert len(calls) == 1


class TestEquality:
    def test_structural_equality_ignores_location(self):
        a = parse_expression("x + 1")
        b = parse_expression("  x   + 1")
        assert a == b

    def test_different_ops_not_equal(self):
        assert parse_expression("x + 1") != parse_expression("x - 1")

    def test_intlit_compares_by_value(self):
        assert parse_expression("0x10") == parse_expression("16")

    def test_different_names_not_equal(self):
        assert parse_expression("f(a)") != parse_expression("f(b)")

    def test_member_arrow_matters(self):
        assert parse_expression("a.b") != parse_expression("a->b")


class TestIntLit:
    @pytest.mark.parametrize("text,value", [
        ("0", 0), ("42", 42), ("0x1F", 31), ("017", 15), ("0xffUL", 255),
        ("1u", 1), ("0", 0),
    ])
    def test_values(self, text, value):
        assert ast.IntLit(text=text).value == value


class TestSourceFile:
    def test_location_of_offsets(self):
        src = SourceFile("f.c", "ab\ncd\n")
        assert src.location(0) == Location("f.c", 1, 1)
        assert src.location(1) == Location("f.c", 1, 2)
        assert src.location(3) == Location("f.c", 2, 1)
        assert src.location(4) == Location("f.c", 2, 2)

    def test_location_at_end(self):
        src = SourceFile("f.c", "ab")
        assert src.location(2).line == 1

    def test_location_out_of_range(self):
        src = SourceFile("f.c", "ab")
        with pytest.raises(ValueError):
            src.location(99)

    def test_line_text(self):
        src = SourceFile("f.c", "first\nsecond\nthird")
        assert src.line_text(2) == "second"
        assert src.line_text(3) == "third"

    def test_line_count(self):
        assert SourceFile("f.c", "a\nb\n").line_count == 2
        assert SourceFile("f.c", "a\nb").line_count == 2
        assert SourceFile("f.c", "").line_count == 0

    def test_location_str(self):
        assert str(Location("x.c", 3, 7)) == "x.c:3:7"

    def test_span_point(self):
        loc = Location("x.c", 1, 1)
        span = Span.point(loc)
        assert span.start == span.end == loc

    def test_unknown_location(self):
        assert unknown_location().line == 0
