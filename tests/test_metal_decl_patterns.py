"""Declaration patterns in metal (§3.2: patterns match declarations)."""

import pytest

from repro.checkers.metal_sources import NO_FLOAT_DECLS
from repro.errors import PatternError
from repro.lang import annotate, parse
from repro.lang.parser import parse_statement
from repro.metal import parse_metal
from repro.metal.patterns import MetaVar, compile_pattern
from repro.mc import check_unit


def make(text, **constraints):
    metavars = {name: MetaVar(name, c) for name, c in constraints.items()}
    return compile_pattern(text, metavars)


class TestDeclPatternCompilation:
    def test_decl_pattern_compiles(self):
        pattern = make("float x;", x="any")
        decl_stmt = parse_statement("float temperature;")
        matches = list(pattern.search(decl_stmt))
        assert len(matches) == 1

    def test_wildcard_binds_declared_name(self):
        pattern = make("float x;", x="any")
        decl_stmt = parse_statement("float temperature;")
        _, bindings = next(iter(pattern.search(decl_stmt)))
        assert bindings["x"].name == "temperature"

    def test_type_must_match(self):
        pattern = make("float x;", x="any")
        assert not list(pattern.search(parse_statement("int i;")))

    def test_pointer_depth_matters(self):
        pattern = make("float x;", x="any")
        assert not list(pattern.search(parse_statement("float *p;")))
        ptr_pattern = make("float *x;", x="any")
        assert list(ptr_pattern.search(parse_statement("float *p;")))

    def test_concrete_name_must_match(self):
        pattern = make("unsigned counter;")
        assert list(pattern.search(parse_statement("unsigned counter;")))
        assert not list(pattern.search(parse_statement("unsigned other;")))

    def test_multi_decl_statement_matches_each(self):
        pattern = make("double x;", x="any")
        stmt = parse_statement("double a, b;")
        assert len(list(pattern.search(stmt))) == 2

    def test_multi_decl_pattern_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern("float a, b;")


class TestNoFloatDeclsMetal:
    def run(self, src):
        sm = parse_metal(NO_FLOAT_DECLS)
        unit = parse(src)
        annotate(unit)
        return check_unit(sm, unit).reports

    def test_float_local_flagged(self):
        reports = self.run("void f(void) { float ratio; }")
        assert len(reports) == 1
        assert "floating point" in reports[0].message

    def test_double_local_flagged(self):
        reports = self.run("void f(void) { double d; }")
        assert len(reports) == 1

    def test_integer_locals_clean(self):
        reports = self.run("void f(void) { unsigned a; int b; char c; }")
        assert reports == []

    def test_multiple_floats_all_flagged(self):
        reports = self.run("""
            void f(void) { float a; }
            void g(void) { double b; float c; }
        """)
        assert len(reports) == 3

    def test_agrees_with_python_checker_on_decls(self):
        src = "void f(void) { float a; unsigned ok; double b; }"
        metal_reports = self.run(src)

        from repro.checkers import NoFloatChecker
        from repro.project import program_from_source
        python_result = NoFloatChecker().check(program_from_source(src))
        python_lines = {r.location.line for r in python_result.reports}
        metal_lines = {r.location.line for r in metal_reports}
        assert metal_lines <= python_lines
        assert len(metal_reports) == 2
