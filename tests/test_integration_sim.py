"""Integration: seeded static-checker bugs manifest dynamically.

The paper's motivation is that these bugs otherwise "show up sporadically
only after days of continuous use".  These tests run the buggy idioms in
the FlashLite-lite simulator and watch them fail, then run the fixed
versions and watch them pass — closing the loop between the static and
dynamic halves of the reproduction.
"""

import pytest

from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.flash.sim.interp import Interpreter
from repro.project import program_from_source


def machine_for(src, dispatch, **kwargs):
    prog = program_from_source(src)
    funcs = {f.name: f for f in prog.functions()}
    return FlashMachine(funcs, dispatch, **kwargs)


BUGGY_DOUBLE_FREE = """
void forward_and_free(void) { DB_FREE(); }
void H(void) {
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if ((addr & 1023) == 8) {
        forward_and_free();
        DB_FREE();
        return;
    }
    DB_FREE();
    return;
}
"""

FIXED_DOUBLE_FREE = BUGGY_DOUBLE_FREE.replace(
    "        forward_and_free();\n        DB_FREE();",
    "        forward_and_free();",
)


class TestDoubleFree:
    def test_buggy_version_corrupts_pool(self):
        m = machine_for(BUGGY_DOUBLE_FREE, {1: "H"})
        stats = m.run(WorkloadSpec(messages=2000, opcode_weights=((1, 1),)))
        assert stats.double_frees > 0

    def test_fixed_version_clean(self):
        m = machine_for(FIXED_DOUBLE_FREE, {1: "H"})
        stats = m.run(WorkloadSpec(messages=2000, opcode_weights=((1, 1),)))
        assert stats.double_frees == 0
        assert stats.clean

    def test_bug_is_rare(self):
        # 1 in 64 addresses takes the buggy path: sporadic, like the paper.
        m = machine_for(BUGGY_DOUBLE_FREE, {1: "H"})
        stats = m.run(WorkloadSpec(messages=2000, opcode_weights=((1, 1),)))
        assert 0 < stats.double_frees < stats.handlers_run / 10


BUGGY_LEAK = """
void H(void) {
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if ((addr & 511) == 24) {
        return;
    }
    DB_FREE();
    return;
}
"""


class TestLeak:
    def test_low_grade_leak_deadlocks_eventually(self):
        m = machine_for(BUGGY_LEAK, {1: "H"}, n_buffers=8)
        stats = m.run(WorkloadSpec(messages=200000,
                                   opcode_weights=((1, 1),)))
        assert stats.deadlock is not None
        # many clean handler executions happen first - the "days of
        # continuous use" failure profile
        assert stats.handlers_run > 500

    def test_fixed_version_survives_same_workload(self):
        fixed = BUGGY_LEAK.replace("        return;\n    }",
                                   "        DB_FREE();\n        return;\n    }", 1)
        m = machine_for(fixed, {1: "H"}, n_buffers=8)
        stats = m.run(WorkloadSpec(messages=20000, opcode_weights=((1, 1),)))
        assert stats.deadlock is None


BUGGY_LANES = """
void H(void) {
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}
"""


class TestLaneOverrun:
    def test_exceeding_lane_capacity_recorded(self):
        m = machine_for(BUGGY_LANES, {1: "H"}, lane_capacity=1)
        stats = m.run(WorkloadSpec(messages=10, opcode_weights=((1, 1),)))
        assert stats.deadlock is None
        assert stats.lane_overruns == 10
        assert stats.lane_overflow_events == 10
        assert not stats.clean

    def test_exceeding_lane_capacity_strict_deadlocks(self):
        m = machine_for(BUGGY_LANES, {1: "H"}, lane_capacity=1, strict=True)
        stats = m.run(WorkloadSpec(messages=10, opcode_weights=((1, 1),)))
        assert stats.deadlock is not None
        assert "overran" in stats.deadlock

    def test_wait_for_space_avoids_deadlock(self):
        fixed = BUGGY_LANES.replace(
            "    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);\n"
            "    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);",
            "    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);\n"
            "    WAIT_FOR_SPACE(LANE_NI_REQUEST);\n"
            "    NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);",
        )
        m = machine_for(fixed, {1: "H"}, lane_capacity=1)
        stats = m.run(WorkloadSpec(messages=10, opcode_weights=((1, 1),)))
        assert stats.deadlock is None


class TestGeneratedProtocolRuns:
    """The generated bitvector protocol executes under the interpreter."""

    @pytest.fixture(scope="class")
    def machine(self, bitvector):
        prog = bitvector.program()
        funcs = {f.name: f for f in prog.functions()}
        # Dispatch a handful of *clean* hardware handlers (ones without
        # seeded defects, identified via the manifest).
        manifest_fns = set()
        for site in bitvector.manifest:
            best = None
            for func in prog.functions():
                if (func.location.filename == site.file
                        and func.location.line <= site.line
                        and (best is None
                             or func.location.line > best.location.line)):
                    best = func
            if best is not None:
                manifest_fns.add(best.name)
        clean = [
            h.name for h in bitvector.info.handlers.values()
            if h.kind == "hw" and h.name not in manifest_fns
        ][:5]
        dispatch = {i + 1: name for i, name in enumerate(clean)}
        return FlashMachine(funcs, dispatch, n_buffers=32,
                            lane_capacity=16, max_hops=0)

    def test_handlers_execute(self, machine):
        weights = tuple((op, 1) for op in machine.dispatch)
        stats = machine.run(WorkloadSpec(messages=60,
                                         opcode_weights=weights))
        assert stats.deadlock is None
        assert stats.handlers_run == 60

    def test_no_buffer_bugs_in_clean_handlers(self, machine):
        weights = tuple((op, 1) for op in machine.dispatch)
        stats = machine.run(WorkloadSpec(messages=60,
                                         opcode_weights=weights))
        assert stats.double_frees == 0
        assert stats.leaked_buffers == 0
