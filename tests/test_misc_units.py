"""Unit tests for smaller surfaces: headers, runtime helpers, registry,
vocabulary, errors."""

import pytest

from repro import check_source, parse_metal
from repro.checkers.base import all_checkers, checker_names, get_checker
from repro.errors import (
    BufferAccounting,
    InterpError,
    MetalError,
    ProtocolDeadlock,
    ReproError,
    SourceError,
)
from repro.flash import FLASH_INCLUDES, machine, with_flash_includes
from repro.lang import parse
from repro.lang.parser import parse_expression
from repro.lang.source import Location
from repro.metal.runtime import MatchContext, ReportSink


class TestHeaders:
    def test_header_parses_cleanly(self):
        unit = parse(FLASH_INCLUDES, "flash-includes.h")
        names = {d.name for d in unit.decls if hasattr(d, "name")}
        for expected in ("PI_SEND", "NI_SEND", "IO_SEND", "DB_ALLOC",
                         "DB_FREE", "WAIT_FOR_DB_FULL", "MISCBUS_READ_DB",
                         "DIR_LOAD", "DIR_WRITEBACK", "HANDLER_GLOBALS"):
            assert expected in names, expected

    def test_with_flash_includes_prepends(self):
        combined = with_flash_includes("void f(void) { }")
        assert combined.startswith("/* flash-includes.h")
        assert combined.rstrip().endswith("}")
        parse(combined)  # must remain parseable as a whole


class TestMachineVocabulary:
    def test_lane_of_send_pi(self):
        assert machine.lane_of_send("PI_SEND", []) == machine.LANE_PI

    def test_lane_of_send_io(self):
        assert machine.lane_of_send("IO_SEND", []) == machine.LANE_IO

    def test_lane_of_ni_request_vs_reply(self):
        req = parse_expression("NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0)")
        rep = parse_expression("NI_SEND(NI_REPLY, F_DATA, 1, 0, 1, 0)")
        assert machine.lane_of_send("NI_SEND", req.args) == machine.LANE_NI_REQUEST
        assert machine.lane_of_send("NI_SEND", rep.args) == machine.LANE_NI_REPLY

    def test_lane_of_non_send(self):
        assert machine.lane_of_send("DB_FREE", []) is None

    def test_wait_macro_mapping(self):
        assert machine.WAIT_MACRO_FOR_SEND["PI_SEND"] == "WAIT_FOR_PI_REPLY"
        assert len(machine.WAIT_MACROS) == 3

    def test_lane_constants(self):
        assert machine.LANE_COUNT == 4
        assert len(machine.LANE_NAMES) == 4


class TestCheckerRegistry:
    def test_all_paper_checkers_registered(self):
        names = checker_names()
        for expected in ("buffer-race", "msg-length", "buffer-mgmt",
                         "lanes", "exec-restrict", "no-float",
                         "alloc-fail", "directory", "send-wait",
                         "table-audit"):
            assert expected in names

    def test_get_checker_returns_fresh_instances(self):
        assert get_checker("lanes") is not get_checker("lanes")

    def test_get_checker_unknown(self):
        with pytest.raises(KeyError):
            get_checker("nonexistent")

    def test_all_checkers_order_stable(self):
        first = [c.name for c in all_checkers()]
        second = [c.name for c in all_checkers()]
        assert first == second

    def test_paper_metal_loc_total(self):
        total = sum(c.metal_loc for c in all_checkers())
        assert total == 553  # Table 7 total (table-audit contributes 0)


class TestErrors:
    def test_hierarchy(self):
        for exc in (BufferAccounting, ProtocolDeadlock, InterpError,
                    MetalError):
            assert issubclass(exc, ReproError)

    def test_source_error_renders_location(self):
        err = SourceError("boom", Location("x.c", 3, 9))
        assert str(err) == "x.c:3:9: boom"

    def test_source_error_without_location(self):
        assert str(SourceError("boom")) == "boom"


class TestMatchContext:
    def make(self, node_text="f(a + 1)"):
        node = parse_expression(node_text)
        bindings = {"x": node.args[0]}
        sink = ReportSink()
        return MatchContext("test", node, bindings, None, sink), sink

    def test_err_records_report(self):
        ctx, sink = self.make()
        ctx.err("problem")
        assert len(sink) == 1
        assert sink.reports[0].severity == "error"

    def test_warn_severity(self):
        ctx, sink = self.make()
        ctx.warn("careful")
        assert sink.reports[0].severity == "warning"

    def test_binding_text(self):
        ctx, _ = self.make()
        assert ctx.binding_text("x") == "a + 1"
        assert ctx.binding_text("missing") == "<missing?>"

    def test_message_expansion(self):
        ctx, sink = self.make()
        ctx.err("bad value %x here")
        assert "bad value a + 1 here" in sink.reports[0].message

    def test_function_name_empty_without_function(self):
        ctx, _ = self.make()
        assert ctx.function_name == ""


class TestTopLevelApi:
    def test_check_source_helper(self):
        sm = parse_metal("""
            sm t { decl { any } v;
                start: { boom(v); } ==> { err("no"); } ; }
        """)
        reports = check_source(sm, "void f(void) { boom(1); }")
        assert len(reports) == 1

    def test_version(self):
        import repro
        assert repro.__version__
