"""Unparser coverage for declarations and full units."""

from repro.lang import parse
from repro.lang.unparse import unparse_decl, unparse_type, unparse_unit


def round_trip_unit(src):
    unit1 = parse(src)
    text = unparse_unit(unit1)
    unit2 = parse(text)
    return unit1, unit2, text


class TestDeclUnparse:
    def test_prototype(self):
        unit = parse("unsigned f(int a, char b);")
        text = unparse_decl(unit.decls[0])
        assert text.strip() == "unsigned f(int a, char b);"

    def test_void_params_rendered(self):
        unit = parse("void f(void);")
        assert "f(void)" in unparse_decl(unit.decls[0])

    def test_global_with_initializer(self):
        unit = parse("static unsigned counter = 42;")
        assert unparse_decl(unit.decls[0]).strip() == \
            "static unsigned counter = 42;"

    def test_struct(self):
        unit = parse("struct H { unsigned len; int *next; };")
        text = unparse_decl(unit.decls[0])
        assert "struct H {" in text
        assert "unsigned len;" in text
        assert "int *next;" in text

    def test_union(self):
        unit = parse("union U { int i; unsigned u; };")
        assert unparse_decl(unit.decls[0]).startswith("union U")

    def test_enum(self):
        unit = parse("enum E { A, B = 5 };")
        text = unparse_decl(unit.decls[0])
        assert "A" in text and "B = 5" in text

    def test_typedef(self):
        unit = parse("typedef unsigned long u32;")
        assert unparse_decl(unit.decls[0]).strip() == \
            "typedef unsigned long u32;"

    def test_array_global(self):
        unit = parse("unsigned table[16];")
        assert "table[16]" in unparse_decl(unit.decls[0])

    def test_unparse_type_pointer(self):
        unit = parse("int **pp;")
        assert unparse_type(unit.decls[0].type_name, "pp") == "int **pp"


class TestUnitRoundTrips:
    def test_declarations_survive(self):
        unit1, unit2, _ = round_trip_unit("""
            typedef unsigned long u32;
            enum Op { GET = 1, PUT, GETX = 4 };
            struct Header { u32 len; u32 op; };
            static u32 counter = 0;
            extern unsigned LEN_NODATA;
            unsigned helper(unsigned a, unsigned b);
            void handler(void)
            {
                struct Header h;
                h.len = 0;
                counter = helper(h.len, GET);
            }
        """)
        assert len(unit1.decls) == len(unit2.decls)
        assert [d.kind for d in unit1.decls] == [d.kind for d in unit2.decls]

    def test_goto_survives(self):
        _, unit2, text = round_trip_unit("""
            void f(void)
            {
                if (x) {
                    goto out;
                }
                work();
            out:
                done();
            }
        """)
        assert "goto out;" in text
        assert "out:" in text
        assert unit2.function("f") is not None

    def test_do_while_survives(self):
        _, unit2, text = round_trip_unit("""
            void f(void)
            {
                do {
                    g();
                } while (x < 3);
            }
        """)
        assert "do" in text and "while (x < 3);" in text
        body1 = unit2.function("f").body
        assert body1.stmts[0].kind == "DoWhile"
