"""Shared fixtures: generated protocols and checker results are expensive
(parsing ~80K LOC), so they are session-scoped and shared."""

from __future__ import annotations

import pytest

from repro.bench.tables import Experiment
from repro.flash.codegen import generate_protocol


@pytest.fixture(scope="session")
def experiment() -> Experiment:
    """One fully-checked experiment shared by integration tests."""
    exp = Experiment()
    exp.check()
    return exp


@pytest.fixture(scope="session")
def bitvector():
    return generate_protocol("bitvector")


@pytest.fixture(scope="session")
def common():
    return generate_protocol("common")
