"""Dominator analysis and the redundant-wait transformation."""

from repro.cfg import build_cfg
from repro.cfg.dominators import compute_dominators
from repro.checkers import BufferRaceChecker
from repro.lang import annotate, parse
from repro.lang.unparse import unparse_unit
from repro.mc.transform import RedundantWaitEliminator
from repro.project import program_from_source


def cfg_of(body: str):
    unit = parse(f"void f(void) {{ {body} }}")
    return build_cfg(unit.function("f"))


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("a(); if (x) { b(); } c();")
        dom = compute_dominators(cfg)
        for block in cfg.reachable_blocks():
            assert dom.dominates(cfg.entry.index, block.index)

    def test_self_domination(self):
        cfg = cfg_of("a();")
        dom = compute_dominators(cfg)
        assert dom.dominates(cfg.entry.index, cfg.entry.index)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } c();")
        dom = compute_dominators(cfg)
        entry = cfg.entry
        then_block = entry.out_edges[0].dst
        join = then_block.out_edges[0].dst
        assert not dom.dominates(then_block.index, join.index)
        assert dom.dominates(entry.index, join.index)

    def test_straightline_chain(self):
        cfg = cfg_of("a(); b();")
        dom = compute_dominators(cfg)
        # entry -> exit: entry dominates exit
        assert dom.dominates(cfg.entry.index, cfg.exit.index)

    def test_immediate_dominator_of_entry_is_none(self):
        cfg = cfg_of("a();")
        dom = compute_dominators(cfg)
        assert dom.immediate_dominator(cfg.entry.index) is None

    def test_dominators_of_lists_chain(self):
        cfg = cfg_of("if (x) { a(); } c();")
        dom = compute_dominators(cfg)
        chain = dom.dominators_of(cfg.exit.index)
        assert chain[-1] == cfg.entry.index
        assert chain[0] == cfg.exit.index

    def test_loop_header_dominates_body(self):
        cfg = cfg_of("while (x) { a(); }")
        dom = compute_dominators(cfg)
        header = next(b for b in cfg.blocks if b.note == "loop-head")
        body = next(b for b in cfg.blocks if b.note == "loop-body")
        assert dom.dominates(header.index, body.index)
        assert not dom.dominates(body.index, header.index)


def transform(src):
    unit = parse(src)
    annotate(unit)
    results = RedundantWaitEliminator().transform_unit(unit)
    return unit, results


class TestRedundantWaitElimination:
    def test_straightline_duplicate_removed(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(a);
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        assert len(results[0].removed) == 1
        text = unparse_unit(unit)
        assert text.count("WAIT_FOR_DB_FULL") == 1

    def test_single_wait_kept(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        assert results[0].removed == []

    def test_wait_after_both_branches_waited_removed(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                if (c) { WAIT_FOR_DB_FULL(a); v = MISCBUS_READ_DB(a, 0); }
                else { WAIT_FOR_DB_FULL(a); }
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 4);
            }
        """)
        assert len(results[0].removed) == 1
        assert unparse_unit(unit).count("WAIT_FOR_DB_FULL") == 2

    def test_wait_after_one_armed_branch_kept(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                if (c) { WAIT_FOR_DB_FULL(a); }
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        # The else path never waited, so the late wait is load-bearing.
        assert results[0].removed == []

    def test_wait_inside_loop_after_prior_wait_removed(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(a);
                while (c) {
                    WAIT_FOR_DB_FULL(a);
                    v = MISCBUS_READ_DB(a, 0);
                }
            }
        """)
        assert len(results[0].removed) == 1

    def test_wait_only_inside_loop_kept(self):
        unit, results = transform("""
            void h(void) {
                unsigned v;
                while (c) {
                    WAIT_FOR_DB_FULL(a);
                    v = MISCBUS_READ_DB(a, 0);
                }
            }
        """)
        # The loop may not execute; its wait is the first on its path.
        assert results[0].removed == []

    def test_checker_clean_before_and_after(self):
        src = """
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(a);
                if (c) { WAIT_FOR_DB_FULL(a); v = MISCBUS_READ_DB(a, 0); }
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 4);
            }
        """
        before = BufferRaceChecker().check(program_from_source(src))
        assert before.reports == []
        unit, results = transform(src)
        assert len(results[0].removed) == 2
        after_src = unparse_unit(unit)
        after = BufferRaceChecker().check(program_from_source(after_src))
        assert after.reports == []

    def test_transformation_never_introduces_races(self):
        # Apply to every generated common-code routine and re-check.
        from repro.flash.codegen import generate_protocol
        gp = generate_protocol("common")
        program = gp.program()
        unit = program.units["common_util.c"]
        RedundantWaitEliminator().transform_unit(unit)
        after = BufferRaceChecker().check(
            program_from_source(unparse_unit(unit)))
        # common has exactly one seeded (debug) race; no new ones appear.
        assert len(after.reports) == 1

    def test_simulator_behaviour_unchanged(self):
        from repro.flash.sim import FlashMachine, WorkloadSpec
        src = """
            void H(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(0);
                WAIT_FOR_DB_FULL(0);
                v = MISCBUS_READ_DB(0, 0);
                DB_FREE();
                return;
            }
        """
        spec = WorkloadSpec(messages=50, opcode_weights=((1, 1),))

        def run(source):
            program = program_from_source(source)
            funcs = {f.name: f for f in program.functions()}
            return FlashMachine(funcs, {1: "H"}).run(spec)

        before = run(src)
        unit, results = transform(src)
        assert len(results[0].removed) == 1
        after = run(unparse_unit(unit))
        assert before.clean and after.clean
        assert before.handlers_run == after.handlers_run
