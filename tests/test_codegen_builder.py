"""RoutineBuilder unit tests: the emitted idioms are structurally what
the checkers expect, and lane accounting is conservative."""

import random

from repro.flash.codegen.builder import RoutineBuilder
from repro.flash.codegen.emit import Emitter
from repro.flash import machine
from repro.project import Program


def build(kind="hw", n_vars=4, fn=None, **kwargs):
    emitter = Emitter("unit.c")
    rb = RoutineBuilder(emitter, "R", kind, random.Random(1),
                        n_vars=n_vars, **kwargs)
    rb.begin()
    if fn is not None:
        fn(rb)
    rb.end()
    return rb, emitter.text()


def parse_routine(text):
    program = Program({"unit.c": text})
    return program, program.function("R")


class TestSkeleton:
    def test_hw_routine_parses_with_hooks(self):
        _, text = build("hw")
        _, func = parse_routine(text)
        first_two = [s.expr.callee_name for s in func.body.stmts[:2]]
        assert first_two == ["HANDLER_DEFS", "HANDLER_PROLOGUE"]

    def test_sw_routine_uses_sw_prologue(self):
        _, text = build("sw")
        assert "SWHANDLER_PROLOGUE();" in text

    def test_proc_routine_uses_subroutine_prologue(self):
        _, text = build("proc")
        assert "SUBROUTINE_PROLOGUE();" in text

    def test_hw_epilogue_frees(self):
        _, text = build("hw")
        assert "DB_FREE();" in text

    def test_proc_epilogue_does_not_free(self):
        _, text = build("proc")
        assert "DB_FREE();" not in text

    def test_variable_count(self):
        rb, text = build("hw", n_vars=5)
        assert len(rb.var_names) == 5
        assert text.count("unsigned ") == 5


class TestLaneAccounting:
    def test_sequential_sends_counted(self):
        def body(rb):
            rb.send_block(form="PI_SEND", flag="F_NODATA")
            rb.send_block(form="PI_SEND", flag="F_NODATA")
        rb, _ = build("hw", fn=body)
        assert rb.lane_max[machine.LANE_PI] == 2

    def test_branch_takes_max(self):
        def body(rb):
            rb.branch(
                lambda: rb.send_block(form="IO_SEND", flag="F_NODATA"),
                lambda: rb.send_block(form="IO_SEND", flag="F_NODATA"),
            )
        rb, _ = build("hw", fn=body)
        assert rb.lane_max[machine.LANE_IO] == 1

    def test_wait_for_space_resets(self):
        def body(rb):
            rb.send_block(form="NI_SEND_REQ", flag="F_NODATA")
            rb.wait_for_space(machine.LANE_NI_REQUEST)
            rb.send_block(form="NI_SEND_REQ", flag="F_NODATA")
        rb, _ = build("hw", fn=body)
        assert rb.lane_max[machine.LANE_NI_REQUEST] == 1

    def test_uncounted_send_excluded(self):
        def body(rb):
            rb.send_block(form="PI_SEND", flag="F_NODATA",
                          count_lane=False)
        rb, _ = build("hw", fn=body)
        assert rb.lane_max == [0, 0, 0, 0]


class TestSegments:
    def test_alloc_block_checks_error(self):
        def body(rb):
            rb.alloc_block()
        _, text = build("hw", fn=body)
        assert "DB_ALLOC();" in text
        assert "DB_IS_ERROR(buf)" in text

    def test_nak_exit_frees_before_return(self):
        def body(rb):
            rb.nak_exit()
        _, text = build("hw", fn=body)
        assert "MSG_NAK" in text
        nak_pos = text.index("MSG_NAK")
        free_pos = text.index("DB_FREE();", nak_pos)
        ret_pos = text.index("return;", free_pos)
        assert free_pos < ret_pos

    def test_dir_block_line_count_helper(self):
        def body(rb):
            lines = rb.dir_block(reads=2, modify=True)
            assert rb.dir_lines_for(2, True) == 5
            assert len(lines["reads"]) == 2
        build("hw", fn=body)

    def test_read_block_synchronized_by_default(self):
        def body(rb):
            rb.read_block()
        _, text = build("hw", fn=body)
        assert text.index("WAIT_FOR_DB_FULL") < text.index("MISCBUS_READ_DB")

    def test_explicit_return_frees_once(self):
        def body(rb):
            rb.explicit_return()
        _, text = build("hw", fn=body)
        assert text.count("DB_FREE();") == 1
        assert text.count("return;") == 1

    def test_nostack_call_emits_set_stackptr(self):
        def body(rb):
            rb.call("helper")
        _, text = build("hw", fn=body, nostack=True)
        assert "SET_STACKPTR();" in text

    def test_everything_parses(self):
        def body(rb):
            rb.filler(3)
            rb.loop_filler(2)
            rb.switch_dispatch(arms=2)
            rb.read_block()
            rb.send_block(wait=True)
            rb.stray_wait()
            rb.dir_block(reads=1, modify=True)
            rb.alloc_block()
            rb.free_and_return()
        _, text = build("hw", fn=body)
        program, func = parse_routine(text)
        assert func.name == "R"
