"""Second batch of frontend edge cases (constructs real headers use)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, ctypes
from repro.lang.parser import parse, parse_expression, parse_statement
from repro.lang.sema import annotate


class TestDeclarationEdgeCases:
    def test_bitfield_parsed_and_ignored(self):
        unit = parse("struct H { unsigned op : 4; unsigned len : 4; };")
        struct = unit.decls[0]
        assert [f.name for f in struct.fields_] == ["op", "len"]

    def test_anonymous_typedef_struct(self):
        unit = parse("typedef struct { int a; } Anon;\nAnon x;")
        assert isinstance(unit.decls[1], ast.VarDecl)

    def test_typedef_struct_with_tag(self):
        unit = parse("typedef struct hdr_s { int a; } hdr_t;\nhdr_t h;")
        info = annotate(unit)
        sym = info.file_scope.lookup("h")
        assert isinstance(sym.ctype, ctypes.Struct)
        assert sym.ctype.tag == "hdr_s"

    def test_struct_with_array_field(self):
        unit = parse("struct B { unsigned words[8]; };")
        info = annotate(unit)
        struct = info.structs["B"]
        assert struct.member("words").size_bits() == 8 * 32

    def test_nested_struct_members_resolve(self):
        src = """
        struct Inner { unsigned len; };
        struct Outer { struct Inner nh; };
        void f(void) { struct Outer o; o.nh.len; }
        """
        unit = parse(src)
        annotate(unit)
        expr = unit.function("f").body.stmts[1].expr
        assert expr.ctype is ctypes.UNSIGNED

    def test_const_qualifiers(self):
        unit = parse("const unsigned limit = 8;")
        assert unit.decls[0].type_name.qualifiers == ["const"]

    def test_pointer_to_const(self):
        stmt = parse_statement("const char *msg;")
        assert stmt.decls[0].type_name.pointer_depth == 1

    def test_double_pointer(self):
        stmt = parse_statement("int **pp;")
        assert stmt.decls[0].type_name.pointer_depth == 2

    def test_mixed_pointer_decl_list(self):
        stmt = parse_statement("int a, *b, **c;")
        depths = [d.type_name.pointer_depth for d in stmt.decls]
        assert depths == [0, 1, 2]

    def test_star_binds_to_first_declarator_only(self):
        stmt = parse_statement("int *a, b;")
        depths = [d.type_name.pointer_depth for d in stmt.decls]
        assert depths == [1, 0]

    def test_each_declarator_needs_its_own_star(self):
        stmt = parse_statement("int *a, *b;")
        depths = [d.type_name.pointer_depth for d in stmt.decls]
        assert depths == [1, 1]

    def test_array_with_constant_expression_size(self):
        unit = parse("enum K { N = 4 };\nint table[N * 2];")
        info = annotate(unit)
        sym = info.file_scope.lookup("table")
        assert sym.ctype.length == 8

    def test_initializer_list(self):
        unit = parse("int table[3] = { 1, 2, 3 };")
        assert isinstance(unit.decls[0].init, ast.Comma)
        assert len(unit.decls[0].init.parts) == 3

    def test_extern_storage(self):
        unit = parse("extern unsigned LEN_NODATA;")
        assert unit.decls[0].storage == "extern"

    def test_static_function(self):
        unit = parse("static void helper(void) { }")
        assert unit.function("helper").storage == "static"

    def test_unnamed_parameters(self):
        unit = parse("void cb(int, unsigned);")
        proto = unit.decls[0]
        assert [p.name for p in proto.params] == ["", ""]

    def test_array_parameter(self):
        unit = parse("void f(int data[4]) { }")
        param = unit.function("f").params[0]
        assert len(param.type_name.array_dims) == 1


class TestExpressionEdgeCases:
    def test_chained_relational(self):
        expr = parse_expression("a < b < c")  # parses as (a<b)<c
        assert expr.op == "<"
        assert expr.left.op == "<"

    def test_shift_assignment(self):
        expr = parse_expression("mask <<= 2")
        assert expr.op == "<<="

    def test_sizeof_binds_tighter_than_binary(self):
        expr = parse_expression("sizeof(x) + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.SizeofExpr)

    def test_unary_minus_on_parenthesized(self):
        expr = parse_expression("-(a + b)")
        assert isinstance(expr, ast.UnaryOp)

    def test_cast_of_call(self):
        expr = parse_expression("(unsigned)f(x)")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.operand, ast.Call)

    def test_address_of_member(self):
        expr = parse_expression("&h.nh")
        assert isinstance(expr, ast.UnaryOp)
        assert isinstance(expr.operand, ast.Member)

    def test_nested_index(self):
        expr = parse_expression("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_through_member_is_rejected_gracefully(self):
        # Function pointers are out of scope; callee_name is None but
        # the expression still parses as a call on a member.
        expr = parse_expression("ops.send(1)")
        assert isinstance(expr, ast.Call)
        assert expr.callee_name is None

    def test_char_arith(self):
        expr = parse_expression("'a' + 1")
        assert expr.op == "+"

    def test_deeply_nested_parens(self):
        expr = parse_expression("((((x))))")
        assert isinstance(expr, ast.Ident)


class TestStatementEdgeCases:
    def test_if_without_braces(self):
        stmt = parse_statement("if (a) f(); else g();")
        assert isinstance(stmt.then, ast.ExprStmt)

    def test_nested_loops(self):
        stmt = parse_statement(
            "while (a) { for (i = 0; i < 3; i++) { do { f(); } while (b); } }"
        )
        assert isinstance(stmt, ast.While)

    def test_label_then_statement(self):
        unit = parse("""
            void f(void) {
                goto out;
                f2();
            out:
                g();
            }
        """)
        body = unit.function("f").body
        kinds = [type(s).__name__ for s in body.stmts]
        assert "Label" in kinds

    def test_switch_with_nested_block(self):
        stmt = parse_statement("""
            switch (x) {
            case 1: { int t; t = 1; f(t); } break;
            }
        """)
        assert isinstance(stmt, ast.Switch)

    def test_empty_function_body(self):
        unit = parse("void f(void) { }")
        assert unit.function("f").body.stmts == []

    def test_statement_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f(void) { a = 1 }")

    def test_comma_in_for_step(self):
        stmt = parse_statement("for (i = 0, j = 9; i < j; i++, j--) { }")
        assert isinstance(stmt.init, ast.Comma)
        assert isinstance(stmt.step, ast.Comma)
