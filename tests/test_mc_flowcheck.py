"""Flow-graph-search checking (§11's pre-metal style) and its
equivalence with the metal formulation."""

from repro.cfg import build_cfg
from repro.checkers import BufferRaceChecker
from repro.lang import annotate, parse
from repro.mc.flowcheck import find_unfollowed, find_unguarded, is_call_to

READ = is_call_to("MISCBUS_READ_DB", "MISCBUS_READ")
WAIT = is_call_to("WAIT_FOR_DB_FULL")


def cfg_of(src, name="h"):
    unit = parse(src)
    annotate(unit)
    return build_cfg(unit.function(name)), unit


class TestFindUnguarded:
    def test_unguarded_use_found(self):
        cfg, _ = cfg_of("void h(void) { unsigned v; v = MISCBUS_READ_DB(a, 0); }")
        assert len(find_unguarded(cfg, READ, WAIT)) == 1

    def test_guarded_use_clean(self):
        cfg, _ = cfg_of("""
            void h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(a);
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        assert find_unguarded(cfg, READ, WAIT) == []

    def test_guard_on_one_path_only(self):
        cfg, _ = cfg_of("""
            void h(void) {
                unsigned v;
                if (c) { WAIT_FOR_DB_FULL(a); }
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        assert len(find_unguarded(cfg, READ, WAIT)) == 1

    def test_guard_on_both_paths(self):
        cfg, _ = cfg_of("""
            void h(void) {
                unsigned v;
                if (c) { WAIT_FOR_DB_FULL(a); } else { WAIT_FOR_DB_FULL(a); }
                v = MISCBUS_READ_DB(a, 0);
            }
        """)
        assert find_unguarded(cfg, READ, WAIT) == []

    def test_results_sorted_by_location(self):
        cfg, _ = cfg_of("""
            void h(void) {
                unsigned v;
                v = MISCBUS_READ_DB(a, 0);
                v = MISCBUS_READ_DB(a, 4);
            }
        """)
        found = find_unguarded(cfg, READ, WAIT)
        assert [n.location.line for n in found] == sorted(
            n.location.line for n in found)

    def test_equivalent_to_metal_checker_on_protocols(self, bitvector):
        """The flow-graph search and Figure 2 find the same bitvector bugs."""
        program = bitvector.program()
        flow_hits = set()
        for function in program.functions():
            for node in find_unguarded(program.cfg(function), READ, WAIT):
                flow_hits.add((node.location.filename, node.location.line))
        metal = BufferRaceChecker().check(program)
        metal_hits = {
            (r.location.filename, r.location.line) for r in metal.reports
        }
        assert flow_hits == metal_hits


WAIT_SEND = is_call_to("PI_SEND")
PI_WAIT = is_call_to("WAIT_FOR_PI_REPLY")


class TestFindUnfollowed:
    def test_followed_trigger_clean(self):
        cfg, _ = cfg_of("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                WAIT_FOR_PI_REPLY();
                return;
            }
        """)
        assert find_unfollowed(cfg, WAIT_SEND, PI_WAIT) == []

    def test_unfollowed_trigger_found(self):
        cfg, _ = cfg_of("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                return;
            }
        """)
        assert len(find_unfollowed(cfg, WAIT_SEND, PI_WAIT)) == 1

    def test_followed_on_one_path_only(self):
        cfg, _ = cfg_of("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                if (c) { WAIT_FOR_PI_REPLY(); }
                return;
            }
        """)
        assert len(find_unfollowed(cfg, WAIT_SEND, PI_WAIT)) == 1

    def test_followed_on_all_paths(self):
        cfg, _ = cfg_of("""
            void h(void) {
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                if (c) { WAIT_FOR_PI_REPLY(); } else { WAIT_FOR_PI_REPLY(); }
                return;
            }
        """)
        assert find_unfollowed(cfg, WAIT_SEND, PI_WAIT) == []

    def test_wait_in_branch_then_join(self):
        cfg, _ = cfg_of("""
            void h(void) {
                if (c) { PI_SEND(F_DATA, 1, 0, 1, 1, 0); }
                WAIT_FOR_PI_REPLY();
                return;
            }
        """)
        assert find_unfollowed(cfg, WAIT_SEND, PI_WAIT) == []


class TestAnnotationVerification:
    """§6: "the extension can warn when they are wrong"."""

    def run(self, src):
        from repro.checkers import BufferMgmtChecker
        from repro.project import HandlerInfo, ProtocolInfo, program_from_source
        info = ProtocolInfo(name="t", handlers={
            "HW": HandlerInfo("HW", "hw"),
        })
        checker = BufferMgmtChecker(check_annotations=True)
        return checker.check(program_from_source(src, info))

    def test_needed_annotation_not_warned(self):
        result = self.run("""
            void HW(void) {
                if (c) { no_free_needed(); return; }
                DB_FREE();
            }
        """)
        assert result.warnings == []

    def test_redundant_annotation_warned(self):
        result = self.run("""
            void HW(void) {
                DB_FREE();
                no_free_needed();
                return;
            }
        """)
        assert len(result.warnings) == 1
        assert "not needed" in result.warnings[0].message

    def test_redundant_has_buffer_warned(self):
        result = self.run("""
            void HW(void) {
                has_buffer();
                DB_FREE();
            }
        """)
        assert len(result.warnings) == 1

    def test_disabled_by_default(self):
        from repro.checkers import BufferMgmtChecker
        from repro.project import HandlerInfo, ProtocolInfo, program_from_source
        info = ProtocolInfo(name="t", handlers={
            "HW": HandlerInfo("HW", "hw"),
        })
        result = BufferMgmtChecker().check(program_from_source("""
            void HW(void) { DB_FREE(); no_free_needed(); return; }
        """, info))
        assert result.warnings == []

    def test_generated_protocol_annotations_all_meaningful(self, common):
        # Every seeded annotation in the generated code changes the
        # checker's state on some path, so none are flagged.
        from repro.checkers import BufferMgmtChecker
        checker = BufferMgmtChecker(check_annotations=True)
        result = checker.check(common.program())
        assert [w for w in result.warnings if "not needed" in w.message] == []
