"""Node-level builtin bindings: each FLASH macro against one node."""

import pytest

from repro.flash.sim import Message, Node
from repro.project import program_from_source


def make_node(src="void noop(void) { return; }", **kwargs):
    program = program_from_source(src)
    functions = {f.name: f for f in program.functions()}
    return Node(0, functions, **kwargs)


def incoming(opcode=1, addr=0x40, length=0, payload=None):
    return Message(opcode=opcode, addr=addr, src=1, dest=0, lane=0,
                   has_data=bool(payload), length=length,
                   payload=payload or [])


class TestHandlerDispatch:
    def test_run_handler_sets_header_globals(self):
        node = make_node("""
            void h(void) {
                t_probe();
                DB_FREE();
                return;
            }
        """)
        captured = {}
        node.interp.builtins["t_probe"] = lambda: captured.update(
            op=node.globals.read("header.nh.op"),
            addr=node.globals.read("header.nh.addr"),
        )
        node.run_handler("h", incoming(opcode=7, addr=0x99))
        assert captured == {"op": 7, "addr": 0x99}

    def test_outgoing_messages_returned(self):
        node = make_node("""
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
                DB_FREE();
                return;
            }
        """)
        out = node.run_handler("h", incoming())
        assert len(out) == 1
        assert out[0].opcode == 1

    def test_handler_counts(self):
        node = make_node("void h(void) { DB_FREE(); return; }")
        node.run_handler("h", incoming())
        node.run_handler("h", incoming())
        assert node.handlers_run == 2

    def test_buffer_allocated_per_message_and_freed(self):
        node = make_node("void h(void) { DB_FREE(); return; }")
        node.run_handler("h", incoming())
        assert node.pool.free_count == len(node.pool.buffers)

    def test_leak_reduces_pool(self):
        node = make_node("void h(void) { return; }")
        node.run_handler("h", incoming())
        assert node.pool.live_count == 1

    def test_deadlock_when_pool_empty(self):
        from repro.errors import ProtocolDeadlock
        node = make_node("void h(void) { return; }", n_buffers=2)
        node.run_handler("h", incoming())
        node.run_handler("h", incoming())
        with pytest.raises(ProtocolDeadlock):
            node.run_handler("h", incoming())


class TestDataPath:
    def test_payload_visible_after_wait(self):
        node = make_node("""
            unsigned h(void) {
                unsigned v;
                WAIT_FOR_DB_FULL(0);
                v = MISCBUS_READ_DB(0, 0);
                DB_FREE();
                return v;
            }
        """)
        node.run_handler("h", incoming(payload=[0xABCD]))
        # return value not observable through run_handler; call directly:
        node.current_buffer = node.pool.hw_allocate(fill_data=[0xABCD])
        assert node.interp.call("h") == 0xABCD

    def test_read_before_wait_is_garbage(self):
        node = make_node("""
            void h(void) {
                unsigned v;
                v = MISCBUS_READ_DB(0, 0);
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming(payload=[5]))
        assert node.pool.unsynchronized_reads == 1

    def test_db_alloc_failure_returns_zero(self):
        node = make_node("""
            unsigned h(void) {
                unsigned b;
                b = DB_ALLOC();
                return DB_IS_ERROR(b);
            }
        """, n_buffers=1)
        # Fill the pool so DB_ALLOC inside the handler fails.
        node.pool.hw_allocate()
        assert node.interp.call("h") == 1

    def test_db_inc_refcount_binding(self):
        node = make_node("""
            void h(void) {
                DB_INC_REFCOUNT(0);
                DB_FREE();
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming())
        # refcount bumped to 2, freed twice: balanced, no error.
        assert node.pool.double_frees == 0


class TestDirectoryBindings:
    def test_load_modify_writeback_round_trip(self):
        node = make_node("""
            void h(void) {
                unsigned a;
                a = HANDLER_GLOBALS(header.nh.addr);
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(a);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 4;
                DIR_WRITEBACK(a, HANDLER_GLOBALS(dirEntry));
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming(addr=0x80))
        assert node.directory.entry(0x80) == 4
        assert node.directory.stale_writebacks == 0

    def test_load_without_modify_not_stale(self):
        node = make_node("""
            void h(void) {
                unsigned t;
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(8);
                t = HANDLER_GLOBALS(dirEntry);
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming())
        assert node.directory.stale_writebacks == 0

    def test_modify_without_writeback_is_stale(self):
        node = make_node("""
            void h(void) {
                HANDLER_GLOBALS(dirEntry) = DIR_LOAD(8);
                HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 1;
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming())
        assert node.directory.stale_writebacks == 1


class TestWaitBindings:
    def test_matched_wait_clears(self):
        node = make_node("""
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                WAIT_FOR_PI_REPLY();
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming())
        assert node.pending_wait_violations == 0

    def test_wrong_interface_wait_counted(self):
        node = make_node("""
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                PI_SEND(F_DATA, 1, 0, 1, 1, 0);
                WAIT_FOR_NI_REPLY();
                DB_FREE();
                return;
            }
        """)
        node.run_handler("h", incoming())
        assert node.pending_wait_violations == 1

    def test_wait_for_space_drains_lane(self):
        node = make_node("""
            void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
                WAIT_FOR_SPACE(LANE_NI_REQUEST);
                NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
                DB_FREE();
                return;
            }
        """, lane_capacity=1)
        out = node.run_handler("h", incoming())
        assert len(out) == 2
        assert node.queues.overruns == 0
