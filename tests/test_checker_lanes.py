"""§7 lane deadlock checker unit tests."""

from repro.checkers import LaneChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def run(src, handlers):
    info = ProtocolInfo(name="t", handlers={
        name: HandlerInfo(name, "hw", lane_allowance=tuple(allowance))
        for name, allowance in handlers.items()
    })
    return LaneChecker().check(program_from_source(src, info))


def test_within_allowance_clean():
    result = run("""
        void H(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []


def test_exceeding_allowance_flagged():
    result = run("""
        void H(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert len(result.errors) == 1
    assert "ni-request" in result.errors[0].message


def test_lanes_are_independent():
    result = run("""
        void H(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            IO_SEND(F_NODATA, 1, 0, 0, 1, 0);
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []


def test_branches_take_max_not_sum():
    result = run("""
        void H(void) {
            if (c) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
            else { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []


def test_wait_for_space_resets_quota():
    result = run("""
        void H(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            WAIT_FOR_SPACE(LANE_PI);
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []


def test_sends_through_callee_counted():
    result = run("""
        void helper(void) { NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0); }
        void H(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            helper();
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert len(result.errors) == 1


def test_callee_two_levels_deep():
    result = run("""
        void leaf(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); }
        void mid(void) { leaf(); }
        void H(void) { mid(); PI_SEND(F_NODATA, 1, 0, 0, 1, 0); DB_FREE(); }
    """, {"H": (1, 1, 1, 1)})
    assert len(result.errors) == 1


def test_backtrace_present_for_interprocedural_error():
    result = run("""
        void helper(void) { NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0); }
        void H(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            helper();
        }
    """, {"H": (1, 1, 1, 1)})
    assert len(result.errors) == 1
    assert result.errors[0].backtrace


def test_send_free_recursion_is_fixed_point():
    result = run("""
        void walk(void) { if (c) { walk(); } }
        void H(void) { walk(); PI_SEND(F_NODATA, 1, 0, 0, 1, 0); DB_FREE(); }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []


def test_recursion_with_sends_warned():
    result = run("""
        void spin(void) { NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0); if (c) { spin(); } }
        void H(void) { DB_FREE(); }
    """, {"H": (4, 4, 4, 4)})
    assert len(result.reports) == 1
    assert "cycle" in result.reports[0].message


def test_mutual_recursion_with_sends_warned_once():
    result = run("""
        void a(void) { PI_SEND(F_NODATA, 1, 0, 0, 1, 0); b(); }
        void b(void) { a(); }
        void H(void) { DB_FREE(); }
    """, {"H": (4, 4, 4, 4)})
    cycle_reports = [r for r in result.reports if "cycle" in r.message]
    assert len(cycle_reports) == 1


def test_allowance_of_two_allows_two():
    result = run("""
        void H(void) {
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 2, 1)})
    assert result.reports == []


def test_applied_counts_send_events():
    result = run("""
        void H(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (4, 4, 4, 4)})
    assert result.applied == 2


def test_proc_routines_not_checked_against_allowance():
    # Subroutines have no allowance; only handlers are checked.
    result = run("""
        void helper2(void) {
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
        }
    """, {})
    assert result.reports == []


def test_loop_without_sends_ignored():
    result = run("""
        void H(void) {
            unsigned i;
            for (i = 0; i < 8; i++) { t = t + 1; }
            PI_SEND(F_NODATA, 1, 0, 0, 1, 0);
            DB_FREE();
        }
    """, {"H": (1, 1, 1, 1)})
    assert result.reports == []
