"""Tokenizer tests."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_identifier_with_underscore_and_digits(self):
        assert texts("_x9 __foo a1b2") == ["_x9", "__foo", "a1b2"]

    def test_keyword_recognized(self):
        (tok,) = tokenize("while")[:-1]
        assert tok.kind is TokenKind.KEYWORD

    def test_keyword_prefix_is_identifier(self):
        (tok,) = tokenize("whilem")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_all_c_keywords(self):
        for kw in ("if", "else", "return", "switch", "case", "struct",
                   "unsigned", "void", "typedef", "goto", "sizeof"):
            assert tokenize(kw)[0].kind is TokenKind.KEYWORD


class TestNumbers:
    def test_decimal(self):
        (tok,) = tokenize("1234")[:-1]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.text == "1234"

    def test_hex(self):
        (tok,) = tokenize("0xDEADbeef")[:-1]
        assert tok.kind is TokenKind.INT_LIT

    def test_octal(self):
        (tok,) = tokenize("0777")[:-1]
        assert tok.kind is TokenKind.INT_LIT

    def test_unsigned_long_suffixes(self):
        for text in ("1u", "2UL", "3LL", "4uLL"):
            (tok,) = tokenize(text)[:-1]
            assert tok.kind is TokenKind.INT_LIT, text

    def test_float(self):
        for text in ("1.5", "2.", ".5", "1e10", "1.5e-3", "2f", "3.0F"):
            (tok,) = tokenize(text)[:-1]
            assert tok.kind is TokenKind.FLOAT_LIT, text

    def test_int_then_member_not_float(self):
        # "1..." forms: ensure a.b after number doesn't glue
        toks = texts("x[1].f")
        assert toks == ["x", "[", "1", "]", ".", "f"]

    def test_ellipsis_not_consumed_by_number(self):
        toks = texts("f(1, ...)")
        assert "..." in toks


class TestStringsAndChars:
    def test_string(self):
        (tok,) = tokenize('"hello world"')[:-1]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.text == '"hello world"'

    def test_string_with_escapes(self):
        (tok,) = tokenize(r'"a\"b\n"')[:-1]
        assert tok.kind is TokenKind.STRING_LIT

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        (tok,) = tokenize("'a'")[:-1]
        assert tok.kind is TokenKind.CHAR_LIT

    def test_escaped_char(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.kind is TokenKind.CHAR_LIT

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* 1\n2\n3 */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_comment_containing_string(self):
        assert texts('a /* "not a string */ b') == ["a", "b"]


class TestDirectives:
    def test_include_quoted_keeps_rest_of_line(self):
        # Critical for the metal preamble { #include "x.h" }.
        assert texts('{ #include "flash-includes.h" }') == ["{", "}"]

    def test_include_angle(self):
        assert texts("#include <stdio.h>\nx") == ["x"]

    def test_define_skips_line(self):
        assert texts("#define FOO 12 + bar\nx") == ["x"]

    def test_define_with_continuation(self):
        assert texts("#define FOO \\\n 12\nx") == ["x"]

    def test_ifdef_endif(self):
        assert texts("#ifdef A\nx\n#endif\n") == ["x"]


class TestPunctuation:
    def test_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]

    def test_arrow_vs_minus(self):
        assert texts("a->b - c") == ["a", "->", "b", "-", "c"]

    def test_increment_vs_plus(self):
        assert texts("a++ + b") == ["a", "++", "+", "b"]

    def test_all_compound_assignment_ops(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="):
            assert texts(f"a {op} b")[1] == op

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a ` b")


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  bb\n   c")
        a, bb, c = tokens[:-1]
        assert (a.location.line, a.location.column) == (1, 1)
        assert (bb.location.line, bb.location.column) == (2, 3)
        assert (c.location.line, c.location.column) == (3, 4)

    def test_filename_propagates(self):
        tok = tokenize("x", filename="proto.c")[0]
        assert tok.location.filename == "proto.c"
