"""Property-based and fuzz tests across the stack.

Three families:

1. the frontend never hangs or crashes with non-library exceptions on
   arbitrary input — it either parses or raises a Repro error;
2. metamorphic checker properties (e.g. guarding every read makes the
   buffer-race checker clean; removing guards can only add reports);
3. the cached engine and the naive engine agree on randomly generated
   structured programs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cfg import build_cfg, enumerate_paths, path_stats
from repro.checkers import BufferRaceChecker
from repro.checkers.metal_sources import FIGURE_3
from repro.errors import ReproError
from repro.lang import annotate, parse
from repro.metal import ReportSink, parse_metal
from repro.mc.engine import run_machine, run_machine_naive
from repro.project import program_from_source


class TestFrontendRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            parse(text)
        except ReproError:
            pass  # LexError / ParseError are the contract

    @given(st.text(
        alphabet="abcxyz(){};=+-*/<>&|!0123456789 \n\t\"'",
        max_size=300,
    ))
    @settings(max_examples=300, deadline=None)
    def test_c_flavoured_fuzz(self, text):
        try:
            unit = parse(text)
            annotate(unit)
        except ReproError:
            pass

    @given(st.text(alphabet="smdeclpat{}()|=>;\"errxyz_ ", max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_metal_parser_never_crashes_unexpectedly(self, text):
        try:
            parse_metal(text)
        except ReproError:
            pass


# -- random structured program generation -------------------------------------

_OPS = [
    "WAIT_FOR_DB_FULL(addr);",
    "v = MISCBUS_READ_DB(addr, 0);",
    "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;",
    "HANDLER_GLOBALS(header.nh.len) = LEN_WORD;",
    "PI_SEND(F_DATA, 1, 0, 0, 1, 0);",
    "PI_SEND(F_NODATA, 1, 0, 0, 1, 0);",
    "t = t + 1;",
]


def _random_body(rng: random.Random, depth: int = 2, length: int = 6) -> str:
    parts = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.25 and depth > 0:
            inner = _random_body(rng, depth - 1, rng.randrange(1, 4))
            if rng.random() < 0.5:
                other = _random_body(rng, depth - 1, rng.randrange(1, 3))
                parts.append(f"if (c{rng.randrange(4)}) {{ {inner} }} "
                             f"else {{ {other} }}")
            else:
                parts.append(f"if (c{rng.randrange(4)}) {{ {inner} }}")
        elif roll < 0.32 and depth > 0:
            inner = _random_body(rng, depth - 1, rng.randrange(1, 3))
            parts.append(f"while (w{rng.randrange(3)}) {{ {inner} }}")
        elif roll < 0.36:
            parts.append("return;")
        else:
            parts.append(rng.choice(_OPS))
    return " ".join(parts)


def _random_function(seed: int) -> str:
    rng = random.Random(seed)
    return (
        "void h(void) { unsigned v; unsigned t; unsigned addr; "
        + _random_body(rng, depth=3, length=rng.randrange(3, 9))
        + " }"
    )


@given(st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_property_cached_vs_naive_on_random_programs(seed):
    """Cached engine covers at least the naive engine's diagnostics.

    On loop-free programs they agree exactly.  With loops, the cached
    engine is strictly more thorough: it follows back edges (memoized),
    so state changes made in a loop body propagate to code after the
    loop, whereas the naive enumerator cuts back edges and never sees
    the "body executed, then exited" paths.
    """
    src = _random_function(seed)
    unit = parse(src)
    annotate(unit)
    cfg = build_cfg(unit.function("h"))
    sm_text = FIGURE_3
    cached, naive = ReportSink(), ReportSink()
    run_machine(parse_metal(sm_text), cfg, cached)
    try:
        run_machine_naive(parse_metal(sm_text), cfg, naive, max_paths=20000)
    except ValueError:
        return  # path explosion: skip comparison
    cached_set = {str(r) for r in cached.reports}
    naive_set = {str(r) for r in naive.reports}
    assert naive_set <= cached_set, src
    if not cfg.back_edges():
        assert naive_set == cached_set, src


@given(st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_property_path_count_dp_equals_enumeration_random(seed):
    src = _random_function(seed)
    unit = parse(src)
    cfg = build_cfg(unit.function("h"))
    stats = path_stats(cfg)
    try:
        enumerated = len(list(enumerate_paths(cfg, max_paths=20000)))
    except ValueError:
        return
    assert stats.path_count == enumerated, src


@given(st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_metamorphic_guarding_reads_silences_buffer_race(seed):
    """Inserting WAIT_FOR_DB_FULL before every read removes all reports."""
    src = _random_function(seed)
    guarded = src.replace(
        "v = MISCBUS_READ_DB(addr, 0);",
        "WAIT_FOR_DB_FULL(addr); v = MISCBUS_READ_DB(addr, 0);",
    )
    result = BufferRaceChecker().check(program_from_source(guarded))
    assert result.reports == []


@given(st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_metamorphic_removing_guards_never_reduces_reports(seed):
    src = _random_function(seed)
    stripped = src.replace("WAIT_FOR_DB_FULL(addr);", "t = t;")
    with_guards = BufferRaceChecker().check(program_from_source(src))
    without = BufferRaceChecker().check(program_from_source(stripped))
    assert len(without.reports) >= len(with_guards.reports), src
