"""§8 execution restriction and no-float checker unit tests."""

from repro.checkers import ExecRestrictChecker, NoFloatChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def make_info(handlers=None):
    handlers = handlers or {}
    return ProtocolInfo(name="t", handlers={
        name: HandlerInfo(name, kind, nostack=nostack)
        for name, (kind, nostack) in handlers.items()
    })


def run(src, handlers=None):
    return ExecRestrictChecker().check(
        program_from_source(src, make_info(handlers)))


class TestSignature:
    def test_handler_with_params_flagged(self):
        result = run("void H(int x) { HANDLER_DEFS(); HANDLER_PROLOGUE(); }",
                     {"H": ("hw", False)})
        assert any("no parameters" in r.message for r in result.reports)

    def test_handler_with_return_value_flagged(self):
        result = run("int H(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); return 0; }",
                     {"H": ("hw", False)})
        assert any("return void" in r.message for r in result.reports)

    def test_conforming_handler_clean(self):
        result = run("void H(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); }",
                     {"H": ("hw", False)})
        assert result.reports == []

    def test_procs_may_take_params(self):
        result = run("int util(int x) { SUBROUTINE_PROLOGUE(); return x; }")
        assert result.reports == []


class TestSimulatorHooks:
    def test_hw_handler_missing_first_hook(self):
        result = run("void H(void) { HANDLER_PROLOGUE(); }",
                     {"H": ("hw", False)})
        assert any("HANDLER_DEFS" in r.message for r in result.reports)

    def test_hw_handler_missing_second_hook(self):
        result = run("void H(void) { HANDLER_DEFS(); f(); }",
                     {"H": ("hw", False)})
        assert any("HANDLER_PROLOGUE" in r.message for r in result.reports)

    def test_sw_handler_needs_sw_prologue(self):
        result = run("void S(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); }",
                     {"S": ("sw", False)})
        assert any("SWHANDLER_PROLOGUE" in r.message for r in result.reports)

    def test_sw_handler_correct(self):
        result = run("void S(void) { HANDLER_DEFS(); SWHANDLER_PROLOGUE(); }",
                     {"S": ("sw", False)})
        assert result.reports == []

    def test_proc_needs_subroutine_prologue(self):
        result = run("void util(void) { f(); }")
        assert any("SUBROUTINE_PROLOGUE" in r.message for r in result.reports)

    def test_proc_correct(self):
        result = run("void util(void) { SUBROUTINE_PROLOGUE(); f(); }")
        assert result.reports == []


class TestDeprecated:
    def test_deprecated_macro_warned(self):
        result = run("""
            void util(void) { SUBROUTINE_PROLOGUE(); OLD_PI_SEND(1, 2); }
        """)
        assert len(result.warnings) == 1

    def test_counts(self):
        result = run("""
            void util(void) {
                SUBROUTINE_PROLOGUE();
                OLD_PI_SEND(1, 2);
                OLD_LEN_SET(3);
            }
        """)
        assert len(result.warnings) == 2


class TestNoStack:
    def test_address_of_local_flagged(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                unsigned x;
                f(&x);
            }
        """, {"H": ("hw", True)})
        assert any("address" in r.message for r in result.reports)

    def test_address_of_global_allowed(self):
        result = run("""
            unsigned g;
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                f(&g);
            }
        """, {"H": ("hw", True)})
        assert result.reports == []

    def test_array_declaration_flagged(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                unsigned a[8];
            }
        """, {"H": ("hw", True)})
        assert any("array" in r.message for r in result.reports)

    def test_large_struct_declaration_flagged(self):
        result = run("""
            struct Big { unsigned a; unsigned b; unsigned c; };
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                struct Big b;
            }
        """, {"H": ("hw", True)})
        assert any("aggregate" in r.message for r in result.reports)

    def test_small_struct_fits_in_registers(self):
        # §8: structures up to 64 bits "safely reside in registers".
        result = run("""
            struct Pair { unsigned lo; unsigned hi; };
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                struct Pair p;
            }
        """, {"H": ("hw", True)})
        assert result.reports == []

    def test_unknown_struct_size_flagged_conservatively(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                struct Mystery m;
            }
        """, {"H": ("hw", True)})
        assert any("unknown size" in r.message for r in result.reports)

    def test_too_many_locals_flagged(self):
        decls = "\n".join(f"unsigned v{i};" for i in range(20))
        result = run(f"""
            void H(void) {{
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                {decls}
            }}
        """, {"H": ("hw", True)})
        assert any("locals" in r.message for r in result.reports)

    def test_call_without_set_stackptr(self):
        result = run("""
            void util(void) { SUBROUTINE_PROLOGUE(); }
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                util();
            }
        """, {"H": ("hw", True)})
        assert any("without SET_STACKPTR" in r.message for r in result.reports)

    def test_call_with_set_stackptr_clean(self):
        result = run("""
            void util(void) { SUBROUTINE_PROLOGUE(); }
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                SET_STACKPTR();
                util();
            }
        """, {"H": ("hw", True)})
        assert result.reports == []

    def test_spurious_set_stackptr_flagged(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                SET_STACKPTR();
                x = 1;
            }
        """, {"H": ("hw", True)})
        assert any("not followed by a call" in r.message
                   for r in result.reports)

    def test_macro_calls_need_no_stackptr(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                DB_FREE();
            }
        """, {"H": ("hw", True)})
        assert result.reports == []

    def test_nostack_annotation_required(self):
        # Declared no-stack in the spec but missing the NOSTACK() marker.
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                t = 1;
            }
        """, {"H": ("hw", True)})
        assert any("exactly one NOSTACK()" in r.message
                   for r in result.reports)

    def test_nostack_annotation_correct(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                t = 1;
            }
        """, {"H": ("hw", True)})
        assert result.reports == []

    def test_duplicate_nostack_annotation_flagged(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                NOSTACK();
            }
        """, {"H": ("hw", True)})
        assert any("exactly one NOSTACK() annotation (found 2)" in r.message
                   for r in result.reports)

    def test_late_nostack_annotation_flagged(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                t = 1;
                NOSTACK();
            }
        """, {"H": ("hw", True)})
        assert any("first statement after the simulator hooks" in r.message
                   for r in result.reports)

    def test_annotation_alone_triggers_stack_rules(self):
        # A NOSTACK() marker without a spec entry still enforces the
        # stack restrictions.
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                NOSTACK();
                unsigned a[4];
            }
        """, {"H": ("hw", False)})
        assert any("array" in r.message for r in result.reports)

    def test_stack_rules_not_applied_to_normal_handlers(self):
        result = run("""
            void H(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                unsigned a[8];
                f(&a);
            }
        """, {"H": ("hw", False)})
        assert result.reports == []


class TestCounters:
    def test_handlers_and_vars_counted(self):
        result = run("""
            void a(void) { SUBROUTINE_PROLOGUE(); unsigned x, y; }
            void b(int p) { SUBROUTINE_PROLOGUE(); unsigned z; }
        """)
        assert result.extra["handlers_checked"] == 2
        assert result.extra["vars_checked"] == 4  # x, y, p, z


class TestNoFloat:
    def run(self, src):
        return NoFloatChecker().check(program_from_source(src))

    def test_float_literal_flagged(self):
        result = self.run("void f(void) { x = 1.5; }")
        assert len(result.errors) >= 1

    def test_float_declaration_flagged(self):
        result = self.run("void f(void) { float x; }")
        assert len(result.errors) >= 1

    def test_double_param_flagged(self):
        result = self.run("void f(double d) { }")
        assert len(result.errors) >= 1

    def test_float_arithmetic_via_types(self):
        result = self.run("void f(float a) { x = a + 1; }")
        assert len(result.errors) >= 1

    def test_integer_code_clean(self):
        result = self.run("""
            void f(void) { unsigned a; a = (3 << 2) / 5 % 7; }
        """)
        assert result.reports == []

    def test_applied_counts_nodes(self):
        result = self.run("void f(void) { a = 1; }")
        assert result.applied > 3
