"""Type model and semantic annotation tests."""

import pytest

from repro.lang import ast, ctypes
from repro.lang.parser import parse
from repro.lang.sema import annotate


def annotate_source(src, prelude_src=None):
    unit = parse(src)
    prelude = parse(prelude_src) if prelude_src else None
    info = annotate(unit, prelude=prelude)
    return unit, info


def expr_of(unit, func, index=0):
    """The expression of the index-th ExprStmt in a function body."""
    stmts = [s for s in unit.function(func).body.stmts
             if isinstance(s, ast.ExprStmt)]
    return stmts[index].expr


class TestCTypes:
    def test_integer_sizes(self):
        assert ctypes.CHAR.size_bits() == 8
        assert ctypes.SHORT.size_bits() == 16
        assert ctypes.INT.size_bits() == 32
        assert ctypes.LONG_LONG.size_bits() == 64

    def test_scalar_classification(self):
        assert ctypes.INT.is_scalar
        assert ctypes.FLOAT.is_scalar
        assert ctypes.Pointer(ctypes.INT).is_scalar
        assert not ctypes.VOID.is_scalar
        assert not ctypes.Struct("s").is_scalar

    def test_floating_flags(self):
        assert ctypes.DOUBLE.is_floating
        assert not ctypes.DOUBLE.is_integer
        assert ctypes.UNSIGNED.is_integer

    def test_pointer_size_is_32bit_mips(self):
        assert ctypes.Pointer(ctypes.DOUBLE).size_bits() == 32

    def test_array_size(self):
        arr = ctypes.Array(ctypes.INT, 4)
        assert arr.size_bits() == 128
        assert ctypes.Array(ctypes.INT, None).size_bits() is None

    def test_struct_size_sums_members(self):
        s = ctypes.Struct("s", (("a", ctypes.INT), ("b", ctypes.CHAR)))
        assert s.size_bits() == 40

    def test_union_size_is_max(self):
        u = ctypes.Struct("u", (("a", ctypes.INT), ("b", ctypes.LONG_LONG)),
                          is_union=True)
        assert u.size_bits() == 64

    def test_struct_member_lookup(self):
        s = ctypes.Struct("s", (("a", ctypes.INT),))
        assert s.member("a") is ctypes.INT
        assert s.member("z") is None

    def test_base_type_spelling_lookup(self):
        assert ctypes.lookup_base_type("unsigned long") is ctypes.UNSIGNED_LONG
        assert ctypes.lookup_base_type("long int") is ctypes.LONG
        assert ctypes.lookup_base_type("bogus") is None

    def test_str_representations(self):
        assert str(ctypes.Pointer(ctypes.INT)) == "int*"
        assert str(ctypes.Array(ctypes.CHAR, 3)) == "char[3]"
        assert str(ctypes.Struct("hdr")) == "struct hdr"


class TestAnnotation:
    def test_int_literal_type(self):
        unit, _ = annotate_source("void f(void) { 1 + 2; }")
        assert expr_of(unit, "f").ctype.is_integer

    def test_local_variable_type(self):
        unit, _ = annotate_source("void f(void) { unsigned x; x; }")
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_parameter_type(self):
        unit, _ = annotate_source("void f(double d) { d; }")
        assert expr_of(unit, "f").ctype.is_floating

    def test_float_propagates_through_arithmetic(self):
        unit, _ = annotate_source("void f(float a) { a + 1; }")
        assert expr_of(unit, "f").ctype.is_floating

    def test_comparison_is_int(self):
        unit, _ = annotate_source("void f(float a) { a < 1.0; }")
        assert expr_of(unit, "f").ctype is ctypes.INT

    def test_unknown_identifier_is_unknown_not_error(self):
        unit, _ = annotate_source("void f(void) { mystery; }")
        assert isinstance(expr_of(unit, "f").ctype, ctypes.Unknown)

    def test_call_returns_function_return_type(self):
        unit, _ = annotate_source(
            "unsigned g(void);\nvoid f(void) { g(); }"
        )
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_member_access_resolves(self):
        unit, _ = annotate_source(
            "struct H { unsigned len; };\n"
            "void f(void) { struct H h; h.len; }"
        )
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_arrow_through_pointer(self):
        unit, _ = annotate_source(
            "struct H { unsigned len; };\n"
            "void f(struct H *p) { p->len; }"
        )
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_index_into_array(self):
        unit, _ = annotate_source("void f(void) { int a[3]; a[0]; }")
        assert expr_of(unit, "f").ctype.is_integer

    def test_deref_pointer(self):
        unit, _ = annotate_source("void f(int *p) { *p; }")
        assert expr_of(unit, "f").ctype.is_integer

    def test_address_of(self):
        unit, _ = annotate_source("void f(void) { int x; &x; }")
        assert isinstance(expr_of(unit, "f").ctype, ctypes.Pointer)

    def test_cast_type(self):
        unit, _ = annotate_source("void f(void) { (unsigned)1; }")
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_typedef_resolution(self):
        unit, _ = annotate_source(
            "typedef unsigned long u32;\nvoid f(void) { u32 x; x; }"
        )
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED_LONG

    def test_enum_constants_fold(self):
        unit, info = annotate_source(
            "enum E { A = 2, B, C = A + 4 };\nint arr[C];\n"
        )
        sym = info.file_scope.lookup("C")
        assert sym.value == 6

    def test_scopes_shadowing(self):
        unit, _ = annotate_source(
            "void f(void) { unsigned x; { float x; x; } }"
        )
        block = unit.function("f").body.stmts[1]
        inner_expr = block.stmts[1].expr
        assert inner_expr.ctype.is_floating

    def test_for_loop_scope(self):
        unit, _ = annotate_source(
            "void f(void) { for (int i = 0; i < 3; i++) { i; } }"
        )
        # no crash, loop variable resolved
        loop = unit.function("f").body.stmts[0]
        assert loop.cond.ctype is ctypes.INT

    def test_function_locals_recorded(self):
        _, info = annotate_source(
            "void f(int a) { unsigned b; { char c; } }"
        )
        names = [s.name for s in info.function_locals["f"]]
        assert names == ["a", "b", "c"]

    def test_prelude_declarations_visible(self):
        unit, _ = annotate_source(
            "void f(void) { DB_ALLOC(); }",
            prelude_src="unsigned DB_ALLOC(void);",
        )
        assert expr_of(unit, "f").ctype is ctypes.UNSIGNED

    def test_prelude_does_not_shift_line_numbers(self):
        unit, _ = annotate_source(
            "void f(void) { g(); }",
            prelude_src="void g(void);\nvoid h(void);\n",
        )
        assert unit.function("f").location.line == 1

    def test_strict_mode_raises_on_unknown_type(self):
        from repro.errors import SemanticError
        unit = parse("void f(void) { mystery_t x; }", typedefs={"mystery_t"})
        with pytest.raises(SemanticError):
            annotate(unit, strict=True)
