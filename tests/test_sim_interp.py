"""AST interpreter tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterpError
from repro.flash.sim.interp import GlobalsView, Interpreter
from repro.lang.parser import parse


def make(src, builtins=None, constants=None):
    unit = parse(src)
    functions = {f.name: f for f in unit.functions()}
    return Interpreter(functions, builtins=builtins, constants=constants)


def run_expr(expr_text, constants=None):
    interp = make(f"unsigned f(void) {{ return {expr_text}; }}",
                  constants=constants)
    return interp.call("f")


class TestExpressions:
    @pytest.mark.parametrize("text,value", [
        ("1 + 2", 3), ("7 - 3", 4), ("4 * 5", 20), ("9 / 2", 4),
        ("9 % 4", 1), ("1 << 4", 16), ("32 >> 2", 8), ("6 & 3", 2),
        ("4 | 1", 5), ("5 ^ 1", 4), ("~0", 0xFFFFFFFF),
        ("1 == 1", 1), ("1 != 1", 0), ("2 < 3", 1), ("3 <= 3", 1),
        ("4 > 5", 0), ("5 >= 5", 1), ("!0", 1), ("!7", 0),
        ("-1", 0xFFFFFFFF), ("1 ? 10 : 20", 10), ("0 ? 10 : 20", 20),
        ("(2 + 3) * 4", 20), ("0x10 + 010", 24),
    ])
    def test_arithmetic(self, text, value):
        assert run_expr(text) == value

    def test_unsigned_wraparound(self):
        assert run_expr("0xFFFFFFFF + 1") == 0
        assert run_expr("0 - 1") == 0xFFFFFFFF

    def test_short_circuit_and(self):
        interp = make("""
            unsigned side(void) { return 1; }
            unsigned f(void) { return 0 && boom(); }
        """)
        assert interp.call("f") == 0  # boom() never evaluated

    def test_short_circuit_or(self):
        interp = make("unsigned f(void) { return 1 || boom(); }")
        assert interp.call("f") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            run_expr("1 / 0")

    def test_constants_resolved(self):
        assert run_expr("LEN_WORD + 1", constants={"LEN_WORD": 1}) == 2

    def test_undefined_variable_raises(self):
        with pytest.raises(InterpError):
            run_expr("mystery")

    def test_float_literal_raises(self):
        # The protocol processor has no floating point.
        with pytest.raises(InterpError):
            run_expr("1.5")

    def test_char_literal(self):
        assert run_expr("'A'") == 65

    def test_comma(self):
        interp = make("unsigned f(void) { unsigned a; return (a = 3, a + 1); }")
        assert interp.call("f") == 4


class TestStatements:
    def test_locals_and_assignment(self):
        interp = make("""
            unsigned f(void) { unsigned a = 3; a += 4; a *= 2; return a; }
        """)
        assert interp.call("f") == 14

    def test_if_else(self):
        interp = make("""
            unsigned f(unsigned x) {
                if (x > 10) { return 1; } else { return 2; }
            }
        """)
        assert interp.call("f", [11]) == 1
        assert interp.call("f", [5]) == 2

    def test_while_loop(self):
        interp = make("""
            unsigned f(void) {
                unsigned i = 0, total = 0;
                while (i < 5) { total += i; i++; }
                return total;
            }
        """)
        assert interp.call("f") == 10

    def test_for_loop(self):
        interp = make("""
            unsigned f(void) {
                unsigned total = 0;
                for (unsigned i = 1; i <= 4; i++) { total += i; }
                return total;
            }
        """)
        assert interp.call("f") == 10

    def test_do_while(self):
        interp = make("""
            unsigned f(void) {
                unsigned i = 0;
                do { i++; } while (i < 3);
                return i;
            }
        """)
        assert interp.call("f") == 3

    def test_break_and_continue(self):
        interp = make("""
            unsigned f(void) {
                unsigned total = 0;
                for (unsigned i = 0; i < 10; i++) {
                    if (i == 2) { continue; }
                    if (i == 5) { break; }
                    total += i;
                }
                return total;
            }
        """)
        assert interp.call("f") == 0 + 1 + 3 + 4

    def test_switch_dispatch(self):
        interp = make("""
            unsigned f(unsigned x) {
                unsigned r = 0;
                switch (x) {
                case 1: r = 10; break;
                case 2: r = 20; break;
                default: r = 99; break;
                }
                return r;
            }
        """)
        assert interp.call("f", [1]) == 10
        assert interp.call("f", [2]) == 20
        assert interp.call("f", [7]) == 99

    def test_switch_fallthrough(self):
        interp = make("""
            unsigned f(unsigned x) {
                unsigned r = 0;
                switch (x) {
                case 1: r += 1;
                case 2: r += 2; break;
                case 3: r += 4; break;
                }
                return r;
            }
        """)
        assert interp.call("f", [1]) == 3
        assert interp.call("f", [2]) == 2

    def test_postfix_and_prefix_increment(self):
        interp = make("""
            unsigned f(void) {
                unsigned a = 5, b;
                b = a++;
                b += ++a;
                return b * 100 + a;
            }
        """)
        assert interp.call("f") == (5 + 7) * 100 + 7

    def test_infinite_loop_hits_step_budget(self):
        interp = make("void f(void) { while (1) { } }")
        interp.max_steps = 1000
        with pytest.raises(InterpError):
            interp.call("f")

    def test_goto_forward_to_top_level_label(self):
        interp = make("""
            unsigned f(void) {
                unsigned r = 0;
                goto out;
                r = 99;
            out:
                r = r + 1;
                return r;
            }
        """)
        assert interp.call("f") == 1

    def test_goto_error_exit_idiom(self):
        interp = make("""
            unsigned f(unsigned x) {
                unsigned cleanup = 0;
                if (x > 10) { goto fail; }
                return 0;
            fail:
                cleanup = 1;
                return cleanup + 100;
            }
        """)
        assert interp.call("f", [20]) == 101
        assert interp.call("f", [1]) == 0

    def test_goto_into_nested_block_rejected(self):
        interp = make("""
            void f(void) {
                goto inner;
                if (x) { inner: return; }
            }
        """)
        with pytest.raises(InterpError):
            interp.call("f")

    def test_goto_loop_hits_step_budget(self):
        interp = make("void f(void) { again: goto again; }")
        interp.max_steps = 1000
        with pytest.raises(InterpError):
            interp.call("f")


class TestCallsAndGlobals:
    def test_program_function_call(self):
        interp = make("""
            unsigned add(unsigned a, unsigned b) { return a + b; }
            unsigned f(void) { return add(40, 2); }
        """)
        assert interp.call("f") == 42

    def test_recursion(self):
        interp = make("""
            unsigned fact(unsigned n) {
                if (n < 2) { return 1; }
                return n * fact(n - 1);
            }
        """)
        assert interp.call("fact", [6]) == 720

    def test_recursion_depth_limit(self):
        interp = make("unsigned f(unsigned n) { return f(n + 1); }")
        with pytest.raises(InterpError):
            interp.call("f", [0])

    def test_builtin_call(self):
        seen = []
        interp = make("void f(void) { log_it(7); }",
                      builtins={"log_it": lambda v: seen.append(v)})
        interp.call("f")
        assert seen == [7]

    def test_handler_globals_read_write(self):
        interp = make("""
            unsigned f(void) {
                HANDLER_GLOBALS(header.nh.len) = 2;
                return HANDLER_GLOBALS(header.nh.len) + 1;
            }
        """)
        assert interp.call("f") == 3
        assert interp.globals.read("header.nh.len") == 2

    def test_handler_globals_compound_assign(self):
        interp = make("""
            void f(void) { HANDLER_GLOBALS(dirEntry) |= 4; }
        """)
        interp.call("f")
        assert interp.globals.read("dirEntry") == 4

    def test_undefined_call_raises(self):
        interp = make("void f(void) { nothere(); }")
        with pytest.raises(InterpError):
            interp.call("f")


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_property_add_matches_c_semantics(a, b):
    interp = make("unsigned f(unsigned a, unsigned b) { return a + b; }")
    assert interp.call("f", [a, b]) == (a + b) % 2**32


@given(st.integers(0, 2**32 - 1), st.integers(1, 31))
def test_property_shift_matches_c_semantics(a, s):
    interp = make("unsigned f(unsigned a, unsigned s) { return a << s; }")
    assert interp.call("f", [a, s]) == (a << s) % 2**32
