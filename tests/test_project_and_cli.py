"""Program/ProtocolInfo model and CLI tests."""

import pytest

from repro.cli import main
from repro.project import (
    HandlerInfo,
    Program,
    ProtocolInfo,
    program_from_source,
)


class TestHandlerInfo:
    def test_valid_kinds(self):
        for kind in ("hw", "sw", "proc"):
            HandlerInfo("x", kind)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            HandlerInfo("x", "hardware")

    def test_allowance_must_cover_lanes(self):
        with pytest.raises(ValueError):
            HandlerInfo("x", "hw", lane_allowance=(1, 2))


class TestProtocolInfo:
    def test_kind_of_unknown_is_proc(self):
        info = ProtocolInfo()
        assert info.kind_of("anything") == "proc"
        assert not info.is_handler("anything")

    def test_handler_queries(self):
        info = ProtocolInfo(handlers={
            "A": HandlerInfo("A", "hw"),
            "B": HandlerInfo("B", "sw"),
        })
        assert info.is_handler("A") and info.is_handler("B")
        assert info.hardware_handlers() == ["A"]
        assert info.software_handlers() == ["B"]


class TestProgram:
    def test_functions_across_files(self):
        program = Program({
            "a.c": "void f(void) { }",
            "b.c": "void g(void) { }",
        })
        assert sorted(fn.name for fn in program.functions()) == ["f", "g"]

    def test_function_lookup(self):
        program = program_from_source("void f(void) { }")
        assert program.function("f").name == "f"
        with pytest.raises(KeyError):
            program.function("g")

    def test_cfg_cached(self):
        program = program_from_source("void f(void) { a(); }")
        func = program.function("f")
        assert program.cfg(func) is program.cfg(func)

    def test_flash_header_types_available(self):
        # DB_ALLOC comes from the implicit flash-includes.h prelude.
        program = program_from_source(
            "void f(void) { unsigned b; b = DB_ALLOC(); }"
        )
        func = program.function("f")
        call = func.body.stmts[1].expr.value
        assert call.ctype.is_integer

    def test_header_does_not_shift_lines(self):
        program = program_from_source("void f(void) { }")
        assert program.function("f").location.line == 1

    def test_header_can_be_disabled(self):
        program = Program({"a.c": "void f(void) { }"},
                          include_flash_header=False)
        assert program.function("f").name == "f"

    def test_loc_counts_nonblank(self):
        program = Program({"a.c": "void f(void)\n{\n\n}\n"})
        assert program.loc() == 3

    def test_callgraph(self):
        program = Program({
            "a.c": "void f(void) { g(); }\nvoid g(void) { }",
        })
        assert program.callgraph.callees("f") == {"g"}


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "buffer-race" in out and "220" in out

    def test_check_clean_file(self, tmp_path, capsys):
        f = tmp_path / "clean.c"
        f.write_text("""
void util(void) {
    SUBROUTINE_PROLOGUE();
    unsigned a;
    a = 1 + 2;
    return;
}
""")
        assert main(["check", str(f)]) == 0
        assert "no errors" in capsys.readouterr().out

    def test_check_buggy_file(self, tmp_path, capsys):
        f = tmp_path / "buggy.c"
        f.write_text("""
void util(void) {
    SUBROUTINE_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(addr, 0);
    return;
}
""")
        assert main(["check", str(f), "--checker", "buffer-race"]) == 1
        assert "Buffer not synchronized" in capsys.readouterr().out

    def test_metal_subcommand(self, tmp_path, capsys):
        checker = tmp_path / "race.metal"
        checker.write_text("""
sm my_race {
    decl { scalar } a, b;
    start:
      { WAIT_FOR_DB_FULL(a); } ==> stop
    | { MISCBUS_READ_DB(a, b); } ==> { err("race"); }
    ;
}
""")
        source = tmp_path / "x.c"
        source.write_text(
            "void h(void) { unsigned v; v = MISCBUS_READ_DB(a, 0); }"
        )
        assert main(["metal", str(checker), str(source)]) == 1
        out = capsys.readouterr().out
        assert "race" in out and "my_race" in out

    def test_generate_subcommand(self, tmp_path, capsys):
        assert main(["generate", "common", "-o", str(tmp_path)]) == 0
        files = {p.name for p in tmp_path.iterdir()}
        assert "common_util.c" in files
        assert "common.manifest.tsv" in files
        manifest = (tmp_path / "common.manifest.tsv").read_text()
        assert "buffer-race" in manifest

    def test_transform_subcommand(self, tmp_path, capsys):
        f = tmp_path / "legacy.c"
        f.write_text("""
void h(void) {
    unsigned v;
    WAIT_FOR_DB_FULL(0);
    WAIT_FOR_DB_FULL(0);
    v = MISCBUS_READ_DB(0, 0);
}
""")
        assert main(["transform", "--write", str(f)]) == 0
        out = capsys.readouterr().out
        assert "1 redundant" in out
        assert f.read_text().count("WAIT_FOR_DB_FULL") == 1

    def test_paths_subcommand(self, tmp_path, capsys):
        f = tmp_path / "p.c"
        f.write_text("""
void a(void) { if (x) { f(); } g(); }
void b(void) { h(); }
""")
        assert main(["paths", str(f)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "a" in out and "b" in out

    def test_generated_protocol_checks_from_disk(self, tmp_path, capsys):
        # generate + check round trip through real files
        main(["generate", "common", "-o", str(tmp_path)])
        files = sorted(str(p) for p in tmp_path.glob("*.c"))
        code = main(["check", "--checker", "buffer-race", *files])
        out = capsys.readouterr().out
        # common carries one seeded (false positive) race report
        assert "Buffer not synchronized" in out
        assert code == 1
