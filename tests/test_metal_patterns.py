"""Pattern unification tests."""

import pytest

from repro.errors import PatternError
from repro.lang.parser import parse_expression, parse_statement
from repro.lang.sema import annotate
from repro.lang.parser import parse
from repro.metal.patterns import MetaVar, Pattern, compile_pattern


def make(text, **constraints):
    metavars = {name: MetaVar(name, c) for name, c in constraints.items()}
    return compile_pattern(text, metavars)


class TestLiteralMatching:
    def test_exact_call(self):
        pattern = make("DB_FREE()")
        assert pattern.match(parse_expression("DB_FREE()")) == {}

    def test_wrong_name_no_match(self):
        pattern = make("DB_FREE()")
        assert pattern.match(parse_expression("DB_ALLOC()")) is None

    def test_arity_must_match(self):
        pattern = make("f(x)", x="any")
        assert pattern.match(parse_expression("f(1, 2)")) is None

    def test_int_literal_by_value(self):
        pattern = make("f(1)")
        assert pattern.match(parse_expression("f(0x1)")) is not None
        assert pattern.match(parse_expression("f(2)")) is None

    def test_member_chain(self):
        pattern = make("HANDLER_GLOBALS(header.nh.len)")
        assert pattern.match(
            parse_expression("HANDLER_GLOBALS(header.nh.len)")) is not None
        assert pattern.match(
            parse_expression("HANDLER_GLOBALS(header.nh.op)")) is None

    def test_assignment_pattern(self):
        pattern = make("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA")
        target = parse_expression("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA")
        assert pattern.match(target) is not None

    def test_assignment_op_must_match(self):
        pattern = make("x = y", x="any", y="any")
        assert pattern.match(parse_expression("a += b")) is None

    def test_binary_op(self):
        pattern = make("x + 1", x="any")
        assert pattern.match(parse_expression("a + 1")) is not None
        assert pattern.match(parse_expression("a - 1")) is None

    def test_unary(self):
        pattern = make("!x", x="any")
        assert pattern.match(parse_expression("!ready")) is not None

    def test_return_statement_pattern(self):
        pattern = make("return")
        assert pattern.match(parse_statement("return;")) is not None
        assert pattern.match(parse_expression("f()")) is None


class TestWildcards:
    def test_binding_captured(self):
        pattern = make("WAIT_FOR_DB_FULL(addr)", addr="scalar")
        bindings = pattern.match(parse_expression("WAIT_FOR_DB_FULL(a + 4)"))
        assert bindings is not None
        assert "addr" in bindings

    def test_same_var_twice_must_bind_equal(self):
        pattern = make("f(x, x)", x="any")
        assert pattern.match(parse_expression("f(a, a)")) is not None
        assert pattern.match(parse_expression("f(a, b)")) is None

    def test_different_vars_can_differ(self):
        pattern = make("f(x, y)", x="any", y="any")
        assert pattern.match(parse_expression("f(a, b)")) is not None

    def test_wildcard_matches_nested_expression(self):
        pattern = make("MISCBUS_READ_DB(addr, buf)", addr="scalar",
                       buf="scalar")
        target = parse_expression("MISCBUS_READ_DB(base + 8, idx * 2)")
        bindings = pattern.match(target)
        assert bindings is not None


class TestConstraints:
    def _typed_expr(self, src, func="f"):
        unit = parse(src)
        annotate(unit)
        stmt = unit.function(func).body.stmts[-1]
        return stmt.expr

    def test_scalar_accepts_unsigned(self):
        expr = self._typed_expr("void f(void) { unsigned u; f2(u); }")
        pattern = make("f2(x)", x="scalar")
        assert pattern.match(expr) is not None

    def test_scalar_rejects_struct(self):
        expr = self._typed_expr(
            "struct S { int a; };\nvoid f(void) { struct S s; f2(s); }"
        )
        pattern = make("f2(x)", x="scalar")
        assert pattern.match(expr) is None

    def test_scalar_accepts_unknown(self):
        expr = self._typed_expr("void f(void) { f2(mystery); }")
        pattern = make("f2(x)", x="scalar")
        assert pattern.match(expr) is not None

    def test_float_constraint(self):
        expr = self._typed_expr("void f(void) { float g; f2(g); }")
        assert make("f2(x)", x="float").match(expr) is not None
        int_expr = self._typed_expr("void f(void) { int g; f2(g); }")
        assert make("f2(x)", x="float").match(int_expr) is None

    def test_pointer_constraint(self):
        expr = self._typed_expr("void f(int *p) { f2(p); }")
        assert make("f2(x)", x="pointer").match(expr) is not None

    def test_unknown_constraint_rejected(self):
        with pytest.raises(PatternError):
            MetaVar("x", "bogus")

    def test_wildcard_only_matches_expressions(self):
        pattern = make("x", x="any")
        assert pattern.match(parse_statement("return;")) is None


class TestSearch:
    def test_search_finds_nested_match(self):
        pattern = make("MISCBUS_READ_DB(a, b)", a="scalar", b="scalar")
        event = parse_expression("v = MISCBUS_READ_DB(addr, 0) + 1")
        matches = list(pattern.search(event))
        assert len(matches) == 1

    def test_search_finds_multiple(self):
        pattern = make("g(x)", x="any")
        event = parse_expression("g(1) + g(2)")
        assert len(list(pattern.search(event))) == 2

    def test_matches_anywhere(self):
        pattern = make("DB_FREE()")
        assert pattern.matches_anywhere(parse_expression("a + DB_FREE()"))
        assert not pattern.matches_anywhere(parse_expression("a + b"))


class TestCompilation:
    def test_statement_form_unwrapped(self):
        pattern = compile_pattern("WAIT_FOR_DB_FULL(a);",
                                  {"a": MetaVar("a", "scalar")})
        assert pattern.match(parse_expression("WAIT_FOR_DB_FULL(x)")) is not None

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern("   ")

    def test_garbage_pattern_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern("+++---")

    def test_repr(self):
        pattern = make("f(x)", x="any")
        assert "f" in repr(pattern)
