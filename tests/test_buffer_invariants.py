"""BufferPool invariant regressions: typed errors and accounting edges.

The §6 bug classes must surface as *typed* errors so the sim loop (and
callers embedding the pool) can tell a protocol bug from a pool-invariant
breach: double frees raise :class:`DoubleFreeError` in strict mode, and
a negative reference count — an invariant breach, not just a protocol
bug — raises :class:`RefcountError` even in lenient mode.
"""

import pytest

from repro.errors import (
    BufferAccounting,
    DoubleFreeError,
    RefcountError,
    ReproError,
)
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.flash.sim import BufferPool


class TestTypedErrors:
    def test_double_free_raises_typed_error(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate()
        pool.free(buf)
        with pytest.raises(DoubleFreeError):
            pool.free(buf)

    def test_double_free_error_is_buffer_accounting(self):
        # Existing except BufferAccounting handlers keep working.
        assert issubclass(DoubleFreeError, BufferAccounting)
        assert issubclass(RefcountError, BufferAccounting)
        assert issubclass(DoubleFreeError, ReproError)

    def test_free_of_none_counts_in_lenient_mode(self):
        pool = BufferPool(1)
        pool.strict = False
        pool.free(None)
        assert pool.double_frees == 1

    def test_negative_refcount_fatal_even_in_lenient_mode(self):
        pool = BufferPool(1)
        pool.strict = False
        buf = pool.hw_allocate()
        pool.free(buf)
        pool.free(buf)                       # counted, refcount stays 0
        buf.refcount = -1                    # simulate unrecorded breach
        with pytest.raises(RefcountError):
            pool.free(buf)


class TestIncRefcountEdges:
    def test_inc_on_dead_buffer_strict_raises(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate()
        pool.free(buf)
        with pytest.raises(RefcountError):
            pool.inc_refcount(buf)

    def test_inc_on_dead_buffer_lenient_counts_without_resurrecting(self):
        pool = BufferPool(1)
        pool.strict = False
        buf = pool.hw_allocate()
        pool.free(buf)
        pool.inc_refcount(buf)
        assert pool.refcount_errors == 1
        assert not buf.live                  # not resurrected
        assert pool.free_count == 1          # still allocatable

    def test_inc_on_live_buffer_still_works(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate()
        pool.inc_refcount(buf)
        assert buf.refcount == 2
        pool.free(buf)
        assert buf.live
        pool.free(buf)
        assert not buf.live


class TestLeakCountEdges:
    def test_leak_count_zero_on_fresh_pool(self):
        assert BufferPool(4).leak_count() == 0

    def test_leak_count_never_negative(self):
        pool = BufferPool(4)
        pool.hw_allocate()
        assert pool.leak_count(outstanding_ok=3) == 0

    def test_leak_count_tracks_extra_refcounts_as_live(self):
        pool = BufferPool(4)
        buf = pool.hw_allocate()
        pool.inc_refcount(buf)
        pool.free(buf)
        # refcount 1 -> still live -> still a potential leak
        assert pool.leak_count() == 1
        pool.free(buf)
        assert pool.leak_count() == 0


class TestInjectedAllocFailures:
    def test_injected_failure_is_accounted_separately(self):
        plan = FaultPlan(rules=(FaultRule(site="alloc_fail", every=2),))
        pool = BufferPool(4, injector=FaultInjector(plan))
        results = [pool.allocate() for _ in range(4)]
        # every=2 fires on the first eligible call, then every 2nd
        assert [r is None for r in results] == [True, False, True, False]
        assert pool.injected_alloc_failures == 2
        assert pool.allocation_failures == 2

    def test_genuine_exhaustion_not_counted_as_injected(self):
        pool = BufferPool(1)
        assert pool.hw_allocate() is not None
        assert pool.hw_allocate() is None
        assert pool.allocation_failures == 1
        assert pool.injected_alloc_failures == 0

    def test_hw_alloc_fail_site_hits_hardware_path_only(self):
        plan = FaultPlan(rules=(FaultRule(site="hw_alloc_fail",),))
        pool = BufferPool(4, injector=FaultInjector(plan))
        assert pool.hw_allocate() is None
        assert pool.injected_alloc_failures == 1
