"""Engine graceful degradation: crash isolation, budgets, fallback.

The acceptance behaviour for the robustness work: a checker whose
action raises mid-path costs only its own (checker, function) pair —
everything else still reports — and a budget turns "hangs forever" into
"partial results, marked degraded".
"""

import pytest

from repro.checkers.base import Checker, CheckerResult, run_all
from repro.lang import annotate
from repro.lang.parser import parse
from repro.metal.runtime import ReportSink
from repro.metal.sm import StateMachine
from repro.mc import (
    Budget,
    Quarantine,
    check_unit,
    find_unguarded,
    format_sink,
    is_call_to,
    quarantining,
    run_machine,
    run_machine_naive,
)
from repro.cfg import build_cfg
from repro.project import program_from_source


def build_unit(src):
    unit = parse(src)
    annotate(unit)
    return unit


SRC = """
void bad(void) { use(1); }
void also_bad(void) { use(2); }
void fine(void) { open(1); use(1); }
"""


def reporting_machine():
    """use() before open() is an error."""
    sm = StateMachine("resil")
    sm.decl("any", "x")
    sm.state("start")
    sm.add_rule("start", "open(x)", target="opened")
    sm.state("opened")
    sm.add_rule("start", "use(x)",
                action=lambda ctx: ctx.err("use before open"))
    return sm


def crashing_machine(boom_in: str = "bad"):
    """Raises only inside the named function; reports elsewhere."""
    sm = StateMachine("crashy")
    sm.decl("any", "x")
    sm.state("start")

    def action(ctx):
        if ctx.function_name == boom_in:
            raise RuntimeError("checker bug!")
        ctx.err("use before open")
    sm.add_rule("start", "open(x)", target="opened")
    sm.state("opened")
    sm.add_rule("start", "use(x)", action=action)
    return sm


class TestCrashIsolation:
    def test_crash_propagates_without_keep_going(self):
        unit = build_unit(SRC)
        with pytest.raises(RuntimeError):
            check_unit(crashing_machine(), unit)

    def test_quarantine_isolates_the_pair(self):
        unit = build_unit(SRC)
        sink = check_unit(crashing_machine(), unit, keep_going=True)
        # "bad" is quarantined; "also_bad" still reports its bug.
        assert len(sink.quarantines) == 1
        q = sink.quarantines[0]
        assert (q.checker, q.function) == ("crashy", "bad")
        assert q.error_type == "RuntimeError"
        assert [r.function for r in sink.reports] == ["also_bad"]
        assert sink.degraded

    def test_quarantine_deduplicates(self):
        sink = ReportSink()
        q = Quarantine("c", "f", "path-walk", "ValueError", "x")
        assert sink.add_quarantine(q)
        assert not sink.add_quarantine(q)
        assert len(sink.quarantines) == 1

    def test_run_machine_isolate_flag(self):
        unit = build_unit("void bad(void) { use(1); }")
        sink = ReportSink()
        run_machine(crashing_machine(), build_cfg(unit.function("bad")),
                    sink, isolate=True)
        assert len(sink.quarantines) == 1

    def test_format_sink_renders_quarantine_and_degraded(self):
        unit = build_unit(SRC)
        sink = check_unit(crashing_machine(), unit, keep_going=True)
        text = format_sink(sink)
        assert "quarantined [crashy] bad" in text
        assert "DEGRADED" in text


class TestNaiveFallback:
    def test_cache_only_crash_recovers_via_naive(self):
        # A crash that depends on the cached engine's exploration:
        # fail the first call only — the naive retry then succeeds.
        unit = build_unit("void once(void) { use(1); }")
        calls = {"n": 0}

        sm = StateMachine("flaky")
        sm.decl("any", "x")
        sm.state("start")

        def action(ctx):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            ctx.err("use before open")
        sm.add_rule("start", "use(x)", action=action)

        sink = check_unit(sm, unit, keep_going=True)
        assert sink.quarantines == []       # recovered
        assert len(sink.reports) == 1
        assert sink.degraded                # but honest about the retry
        assert any("recovered" in n for n in sink.degradation_notes)

    def test_fallback_disabled_when_budget_exhausted(self):
        unit = build_unit("void bad(void) { use(1); }\n"
                          "void bad2(void) { use(2); }")
        budget = Budget(max_steps=1)
        sink = check_unit(crashing_machine("never"), unit,
                          keep_going=True, budget=budget)
        # Budget died before any crash; no quarantines, but degraded.
        assert budget.exhausted
        assert sink.degraded


class TestBudgets:
    def test_step_budget_stops_exploration(self):
        unit = build_unit(SRC)
        budget = Budget(max_steps=3)
        sink = check_unit(reporting_machine(), unit, budget=budget)
        assert budget.exhausted_by == "steps"
        assert sink.degraded
        assert any("budget exhausted" in n for n in sink.degradation_notes)

    def test_unlimited_budget_changes_nothing(self):
        unit = build_unit(SRC)
        plain = check_unit(reporting_machine(), unit)
        budgeted = check_unit(reporting_machine(), unit, budget=Budget())
        assert len(plain) == len(budgeted) == 2
        assert not budgeted.degraded

    def test_path_budget_caps_naive_engine(self):
        unit = build_unit("""
            void f(void) {
                if (a) { x(); } if (b) { x(); } if (c) { x(); }
                use(1);
            }
        """)
        sink = ReportSink()
        budget = Budget(max_paths=2)
        run_machine_naive(reporting_machine(), build_cfg(unit.function("f")),
                          sink, budget=budget)
        assert budget.exhausted_by == "paths"
        assert sink.degraded

    def test_time_budget(self):
        budget = Budget(max_seconds=0.0)
        budget.start_clock()
        assert budget.charge_path() is False
        assert budget.exhausted_by == "time"

    def test_budget_is_shared_across_units(self):
        unit = build_unit(SRC)
        budget = Budget(max_steps=1000)
        check_unit(reporting_machine(), unit, budget=budget)
        first = budget.steps
        check_unit(reporting_machine(), unit, budget=budget)
        assert budget.steps > first


class TestFlowcheckQuarantine:
    def test_raising_predicate_is_quarantined(self):
        unit = build_unit("void f(void) { use(1); wait(1); }")
        cfg = build_cfg(unit.function("f"))

        def bomb(node):
            raise ValueError("predicate bug")

        sink = ReportSink()
        wrapped = quarantining(bomb, sink, "flowcheck", "f")
        found = find_unguarded(cfg, wrapped, is_call_to("wait"))
        assert found == []
        assert len(sink.quarantines) == 1
        assert sink.quarantines[0].phase == "flow-search"

    def test_healthy_predicate_untouched(self):
        unit = build_unit("void f(void) { use(1); }")
        cfg = build_cfg(unit.function("f"))
        sink = ReportSink()
        wrapped = quarantining(is_call_to("use"), sink, "flowcheck", "f")
        found = find_unguarded(cfg, wrapped, is_call_to("wait"))
        assert len(found) == 1
        assert sink.quarantines == []


class _BoomChecker(Checker):
    name = "boom"
    metal_loc = 0

    def check(self, program) -> CheckerResult:
        raise RuntimeError("deliberately broken checker")


class TestCheckerLevelIsolation:
    def test_run_all_keep_going_quarantines_crashing_checker(self,
                                                             monkeypatch):
        from repro.checkers import base as checkers_base
        monkeypatch.setitem(checkers_base._REGISTRY, "boom", _BoomChecker)
        program = program_from_source("""
void h(void) {
    SWHANDLER_PROLOGUE();
    unsigned v;
    v = MISCBUS_READ_DB(0, 0);
    return;
}
""")
        with pytest.raises(RuntimeError):
            run_all(program)
        results = run_all(program, keep_going=True)
        boom = results["boom"]
        assert boom.degraded
        assert len(boom.quarantines) == 1
        assert boom.quarantines[0].phase == "checker"
        # every other checker still ran and the seeded race is reported
        others = [r for name, r in results.items() if name != "boom"]
        assert all(not r.quarantines for r in others)
        assert any(r.reports for r in others)
