"""Simulator component and machine-level tests."""

import pytest

from repro.errors import BufferAccounting, ProtocolDeadlock
from repro.flash.sim import (
    BufferPool,
    Directory,
    FlashMachine,
    Message,
    OutputQueues,
    WorkloadSpec,
)
from repro.flash.sim.workload import generate
from repro.project import program_from_source


class TestBufferPool:
    def test_alloc_and_free(self):
        pool = BufferPool(2)
        buf = pool.hw_allocate()
        assert buf is not None and buf.live
        pool.free(buf)
        assert not buf.live
        assert pool.free_count == 2

    def test_exhaustion_returns_none(self):
        pool = BufferPool(1)
        assert pool.hw_allocate() is not None
        assert pool.hw_allocate() is None
        assert pool.allocation_failures == 1

    def test_double_free_strict_raises(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate()
        pool.free(buf)
        with pytest.raises(BufferAccounting):
            pool.free(buf)

    def test_double_free_counted_when_lenient(self):
        pool = BufferPool(1)
        pool.strict = False
        buf = pool.hw_allocate()
        pool.free(buf)
        pool.free(buf)
        assert pool.double_frees == 1

    def test_refcount_keeps_buffer_alive(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate()
        pool.inc_refcount(buf)
        pool.free(buf)
        assert buf.live
        pool.free(buf)
        assert not buf.live

    def test_read_before_fill_counts_race(self):
        pool = BufferPool(1)
        pool.strict = False
        buf = pool.hw_allocate(fill_data=[7, 8])
        value = pool.read(buf, 0)
        assert value == 0xDEAD
        assert pool.unsynchronized_reads == 1

    def test_read_after_fill_returns_data(self):
        pool = BufferPool(1)
        buf = pool.hw_allocate(fill_data=[7, 8])
        pool.complete_fill(buf)
        assert pool.read(buf, 0) == 7
        assert pool.read(buf, 4) == 8

    def test_use_after_free_detected(self):
        pool = BufferPool(1)
        pool.strict = False
        buf = pool.hw_allocate()
        pool.free(buf)
        pool.read(buf, 0)
        assert pool.use_after_free == 1

    def test_leak_count(self):
        pool = BufferPool(4)
        pool.hw_allocate()
        pool.hw_allocate()
        assert pool.leak_count() == 2
        assert pool.leak_count(outstanding_ok=1) == 1


class TestDirectory:
    def test_load_and_writeback(self):
        d = Directory()
        assert d.load(0x100) == 0
        d.writeback(0x100, 7)
        assert d.entry(0x100) == 7
        assert d.load(0x100) == 7

    def test_stale_writeback_accounting(self):
        d = Directory()
        d.load(0x40)
        d.note_modified_without_writeback(0x40)
        assert d.stale_writebacks == 1


class TestOutputQueues:
    def _message(self, lane):
        return Message(opcode=1, addr=0, src=0, dest=1, lane=lane,
                       has_data=False, length=0)

    def test_send_and_drain(self):
        q = OutputQueues(0, capacity=2)
        q.send(self._message(0))
        q.send(self._message(2))
        assert q.pending() == 2
        drained = q.drain()
        assert len(drained) == 2
        assert q.pending() == 0

    def test_space_accounting(self):
        q = OutputQueues(0, capacity=2)
        assert q.space(1) == 2
        q.send(self._message(1))
        assert q.space(1) == 1

    def test_overrun_deadlocks(self):
        q = OutputQueues(0, capacity=1)
        q.send(self._message(3))
        with pytest.raises(ProtocolDeadlock):
            q.send(self._message(3))
        assert q.overruns == 1


class TestWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(messages=20, seed=3)
        first = [(m.opcode, m.addr) for m in generate(spec)]
        second = [(m.opcode, m.addr) for m in generate(spec)]
        assert first == second

    def test_message_count(self):
        assert len(list(generate(WorkloadSpec(messages=17)))) == 17

    def test_opcode_weights_respected(self):
        spec = WorkloadSpec(messages=100, opcode_weights=((9, 1),))
        assert all(m.opcode == 9 for m in generate(spec))


def machine_for(src, dispatch, **kwargs):
    prog = program_from_source(src)
    funcs = {f.name: f for f in prog.functions()}
    return FlashMachine(funcs, dispatch, **kwargs)


GOOD = """
void Handler(void) {
    unsigned addr;
    unsigned v;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    v = MISCBUS_READ_DB(addr, 0);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 1;
    DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
    DB_FREE();
    return;
}
"""


class TestMachine:
    def test_clean_protocol_runs_clean(self):
        m = machine_for(GOOD, {1: "Handler"})
        stats = m.run(WorkloadSpec(messages=200, opcode_weights=((1, 1),)))
        assert stats.deadlock is None
        assert stats.clean
        assert stats.handlers_run == 200

    def test_unknown_opcodes_skipped(self):
        m = machine_for(GOOD, {1: "Handler"})
        stats = m.run(WorkloadSpec(messages=50, opcode_weights=((2, 1),)))
        assert stats.handlers_run == 0

    def test_leak_eventually_deadlocks(self):
        src = GOOD + """
        void Leaky(void) {
            unsigned addr;
            addr = HANDLER_GLOBALS(header.nh.addr);
            if ((addr & 255) == 16) { return; }
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "Leaky"}, n_buffers=4)
        stats = m.run(WorkloadSpec(messages=50000,
                                   opcode_weights=((1, 1),)))
        assert stats.deadlock is not None
        assert "no data buffer" in stats.deadlock
        # the leak takes a while to drain the pool - "after days of use"
        assert stats.handlers_run > 100

    def test_double_free_detected(self):
        src = """
        void Buggy(void) {
            DB_FREE();
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "Buggy"})
        stats = m.run(WorkloadSpec(messages=5, opcode_weights=((1, 1),)))
        assert stats.double_frees > 0

    def test_lane_overrun_recorded_per_event(self):
        sends = "\n".join(
            "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
            "NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);" for _ in range(9)
        )
        src = f"void Chatty(void) {{ {sends} DB_FREE(); return; }}"
        m = machine_for(src, {1: "Chatty"}, lane_capacity=8)
        stats = m.run(WorkloadSpec(messages=5, opcode_weights=((1, 1),)))
        # One overrun aborts that handler, not the run.
        assert stats.deadlock is None
        assert stats.lane_overruns == 5
        assert stats.lane_overflow_events == 5
        assert not stats.clean

    def test_lane_overrun_strict_mode_deadlocks(self):
        sends = "\n".join(
            "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
            "NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);" for _ in range(9)
        )
        src = f"void Chatty(void) {{ {sends} DB_FREE(); return; }}"
        m = machine_for(src, {1: "Chatty"}, lane_capacity=8, strict=True)
        stats = m.run(WorkloadSpec(messages=5, opcode_weights=((1, 1),)))
        assert stats.deadlock is not None
        assert "overran" in stats.deadlock

    def test_msglen_mismatch_observed(self):
        src = """
        void WrongLen(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "WrongLen"})
        stats = m.run(WorkloadSpec(messages=10, opcode_weights=((1, 1),)))
        assert stats.msglen_mismatches == stats.sends > 0

    def test_unwaited_send_counted(self):
        src = """
        void NoWait(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
            PI_SEND(F_DATA, 1, 0, 1, 1, 0);
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "NoWait"})
        stats = m.run(WorkloadSpec(messages=4, opcode_weights=((1, 1),)))
        assert stats.pending_wait_violations > 0

    def test_spin_wait_is_dynamically_fine(self):
        # The §9 false positive: spinning on the raw status register does
        # consume the reply, so the simulator sees no violation.
        src = """
        void Spin(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
            NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);
            while (!NI_REPLY_READY()) { SPIN(); }
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "Spin"})
        stats = m.run(WorkloadSpec(messages=10, opcode_weights=((1, 1),)))
        assert stats.pending_wait_violations == 0

    def test_stale_directory_writeback_counted(self):
        src = """
        void Stale(void) {
            unsigned addr;
            addr = HANDLER_GLOBALS(header.nh.addr);
            HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
            HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) | 2;
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "Stale"})
        stats = m.run(WorkloadSpec(messages=8, opcode_weights=((1, 1),)))
        assert stats.stale_directory_writebacks == 8

    def test_racy_read_counted(self):
        src = """
        void Racy(void) {
            unsigned v;
            v = MISCBUS_READ_DB(0, 0);
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "Racy"})
        stats = m.run(WorkloadSpec(messages=6, opcode_weights=((1, 1),)))
        assert stats.unsynchronized_reads == 6

    def test_strict_mode_raises_on_unwaited_send(self):
        src = """
        void NoWait(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
            PI_SEND(F_DATA, 1, 0, 1, 1, 0);
            DB_FREE();
            return;
        }
        """
        m = machine_for(src, {1: "NoWait"}, strict=True)
        stats = m.run(WorkloadSpec(messages=2, opcode_weights=((1, 1),)))
        assert stats.deadlock is not None
