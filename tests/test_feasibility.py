"""Path-feasibility pruning, report ranking, and `mc-check lint`.

The PR's contract, end to end:

- the Table 2 correlated-branch false positive is suppressed by default
  and restored by ``--feasibility off``;
- pruning never drops a true bug — proved by property: over generated
  guarded handlers, every read that a concrete-execution oracle says is
  reachable un-waited on some *feasible* path is still reported with
  feasibility on;
- the cache, the parallel fleet, and journal resume all stay
  byte-identical with feasibility enabled, and cache entries are keyed
  by the feasibility configuration;
- confidence scores rank the surviving reports deterministically;
- ``mc-check lint`` finds undeclared targets, unreachable states, and
  dead rules in metal machines, and the shipped checkers are clean.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import check_source, parse_metal
from repro.checkers.metal_sources import BUILTIN_LISTINGS, FIGURE_2
from repro.mc import (
    ResultCache,
    check_files,
    confidence_of,
    feasibility,
    filter_by_confidence,
    format_reports,
    score_run,
)
from repro.mc.engine import run_machine, run_machine_naive
from repro.mc.supervisor import RunJournal, SupervisorPolicy
from repro.metal import StateMachine, lint_machine, lint_source
from repro.metal.runtime import ReportSink
from repro.project import program_from_source

SRC = Path(__file__).resolve().parent.parent / "src"

#: The Table 2 shape: wait and read guarded by the same already-tested
#: local, so the unguarded-read path exists only syntactically.
CORRELATED = """
void NILocalGet(void) {
    unsigned addr;
    unsigned buf;
    unsigned has_data;
    addr = HANDLER_GLOBALS(header.nh.addr);
    has_data = HANDLER_GLOBALS(header.nh.len);
    if (has_data) {
        WAIT_FOR_DB_FULL(addr);
    }
    if (has_data) {
        MISCBUS_READ_DB(addr, buf);
    }
    DB_FREE();
    return;
}
"""

TRUE_BUG = """
void RealBug(void) {
    unsigned addr;
    unsigned buf;
    addr = HANDLER_GLOBALS(header.nh.addr);
    MISCBUS_READ_DB(addr, buf);
    return;
}
"""


def run_cli(*argv, timeout=120, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["MC_CHECK_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def _reports(source: str, enabled: bool, engine: str = "summary"):
    from repro.mc import summary
    previous = feasibility.set_default_enabled(enabled)
    previous_engine = summary.set_default_engine(engine)
    try:
        return check_source(parse_metal(FIGURE_2), source)
    finally:
        feasibility.set_default_enabled(previous)
        summary.set_default_engine(previous_engine)


# -- the Table 2 false positive ------------------------------------------------

class TestCorrelatedBranchFP:
    def test_suppressed_by_default(self):
        assert _reports(CORRELATED, enabled=True) == []

    def test_restored_with_feasibility_off(self):
        reports = _reports(CORRELATED, enabled=False)
        assert len(reports) == 1
        assert "not synchronized" in reports[0].message

    def test_true_bug_survives_pruning(self):
        assert len(_reports(TRUE_BUG, enabled=True)) == 1

    def test_cli_default_on_and_off(self, tmp_path):
        unit = tmp_path / "corr.c"
        unit.write_text(CORRELATED)
        on = run_cli("check", "--checker", "buffer-race", str(unit))
        assert on.returncode == 0, on.stdout + on.stderr
        off = run_cli("check", "--feasibility", "off",
                      "--checker", "buffer-race", str(unit))
        assert off.returncode == 1
        assert "not synchronized" in off.stdout

    def test_naive_engine_prunes_too(self):
        program = program_from_source(CORRELATED)
        sm = parse_metal(FIGURE_2)
        cfg = program.cfgs()[0]
        walked = {}
        for enabled in (False, True):
            sink = ReportSink()
            walked[enabled] = run_machine_naive(sm, cfg, sink,
                                                feasibility=enabled)
        assert walked[True] < walked[False]

    def test_pruned_edge_recorded_in_provenance(self):
        # A true bug whose path passes a branch with a pruned sibling
        # edge: the second `if (has_data)` false edge is infeasible on
        # the has_data-true path, and the surviving report's provenance
        # must say so.
        source = """
        void RealBugBranch(void) {
            unsigned addr;
            unsigned buf;
            unsigned has_data;
            addr = HANDLER_GLOBALS(header.nh.addr);
            has_data = HANDLER_GLOBALS(header.nh.len);
            if (has_data) {
                NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
            }
            if (has_data) {
                MISCBUS_READ_DB(addr, buf);
            }
            return;
        }
        """
        program = program_from_source(source)
        sm = parse_metal(FIGURE_2)
        sink = ReportSink()
        for cfg in program.cfgs():
            run_machine(sm, cfg, sink, feasibility=True)
        assert len(sink.reports) == 1
        (steps,) = sink.provenance.values()
        assert any(step.get("kind") == "pruned" for step in steps)


# -- property: pruning never drops a true bug ----------------------------------

#: A guarded statement: (what, guard) where guard is None (straight
#: line) or (var, negated).
_GUARDS = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["ca", "cb"]), st.booleans()),
)
_ITEMS = st.lists(
    st.tuples(st.sampled_from(["wait", "read", "free"]), _GUARDS),
    min_size=1, max_size=6,
)

_STMT = {
    "wait": "WAIT_FOR_DB_FULL(addr);",
    "read": "MISCBUS_READ_DB(addr, buf);",
    "free": "DB_FREE();",
}


def _oracle_bug_lines(items, first_line: int) -> set:
    """Read lines reachable un-waited on some feasible path.

    Guards only test two two-valued header fields, so feasibility ground
    truth is a brute-force enumeration of their concrete values.
    """
    bugs = set()
    for ca, cb in itertools.product((0, 1), repeat=2):
        values = {"ca": ca, "cb": cb}
        waited = False
        line = first_line
        for what, guard in items:
            if guard is None:
                taken, stmt_line, span = True, line, 1
            else:
                var, negated = guard
                taken = (not values[var]) if negated else bool(values[var])
                stmt_line, span = line + 1, 3
            if taken:
                if what == "wait":
                    waited = True
                elif what == "read" and not waited:
                    bugs.add(stmt_line)
            line += span
    return bugs


def _handler_from(items) -> tuple[str, int]:
    lines = [
        "void Gen(void) {",
        "    unsigned addr;",
        "    unsigned buf;",
        "    unsigned ca;",
        "    unsigned cb;",
        "    addr = HANDLER_GLOBALS(header.nh.addr);",
        "    ca = HANDLER_GLOBALS(header.nh.len);",
        "    cb = HANDLER_GLOBALS(header.nh.src);",
    ]
    first_line = len(lines) + 2  # 1-based, after the blank joined below
    for what, guard in items:
        if guard is None:
            lines.append(f"    {_STMT[what]}")
        else:
            var, negated = guard
            cond = f"!{var}" if negated else var
            lines.append(f"    if ({cond}) {{")
            lines.append(f"        {_STMT[what]}")
            lines.append("    }")
    lines.append("    return;")
    lines.append("}")
    return "\n" + "\n".join(lines) + "\n", first_line


@settings(max_examples=40, deadline=None)
@given(items=_ITEMS, engine=st.sampled_from(["paths", "summary"]))
def test_pruning_never_drops_a_true_bug(items, engine):
    source, first_line = _handler_from(items)
    expected = _oracle_bug_lines(items, first_line)
    on_lines = {r.location.line
                for r in _reports(source, enabled=True, engine=engine)}
    off_lines = {r.location.line
                 for r in _reports(source, enabled=False, engine=engine)}
    # Pruning only ever removes reports...
    assert on_lines <= off_lines
    # ...and never one the concrete-execution oracle calls a true bug.
    assert expected <= on_lines, (
        f"[{engine}] feasibility-on lost true bugs "
        f"{expected - on_lines}\n{source}")


# -- cache / parallel / resume with feasibility on -----------------------------

@pytest.fixture
def mixed_files(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(CORRELATED)
    b.write_text(TRUE_BUG)
    return [str(a), str(b)]


def _formatted(results) -> str:
    return "\n".join(
        format_reports(result.reports, heading=name)
        for name, result in results.items()
    )


class TestComposition:
    def test_parallel_byte_identical(self, mixed_files):
        one = check_files(mixed_files, jobs=1, feasibility=True)
        two = check_files(mixed_files, jobs=2, feasibility=True)
        assert _formatted(one.results) == _formatted(two.results)

    def test_warm_cache_byte_identical(self, mixed_files, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = check_files(mixed_files, cache=cache, feasibility=True)
        warm = check_files(mixed_files, cache=cache, feasibility=True)
        assert warm.stats.hits > 0
        assert _formatted(cold.results) == _formatted(warm.results)

    def test_cache_keys_include_feasibility(self, mixed_files, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        on = check_files(mixed_files, cache=cache, feasibility=True)
        off = check_files(mixed_files, cache=cache, feasibility=False)
        # The off-run must not reuse the on-run's entries: it has more
        # reports (the correlated FP) and zero hits against them.
        assert off.stats.hits == 0
        on_count = sum(len(r.reports) for r in on.results.values())
        off_count = sum(len(r.reports) for r in off.results.values())
        assert off_count > on_count

    def test_resume_byte_identical(self, mixed_files, tmp_path):
        baseline = check_files(mixed_files, jobs=2, feasibility=True)
        runs = tmp_path / "runs"
        journal = RunJournal.create(runs)
        first = check_files(
            mixed_files, jobs=2, journal=journal, feasibility=True,
            policy=SupervisorPolicy(stop_after_items=3))
        journal.close()
        assert first.interrupted
        resumed = RunJournal.resume(runs, journal.run_id)
        second = check_files(mixed_files, jobs=2, journal=resumed,
                             feasibility=True)
        resumed.close()
        assert not second.interrupted
        assert _formatted(second.results) == _formatted(baseline.results)


# -- ranking -------------------------------------------------------------------

class TestRanking:
    def test_fp_scores_below_true_bug(self, mixed_files):
        run = check_files(mixed_files, feasibility=False,
                          names=["buffer-race"])
        scores = score_run(run)
        reports = run.results["buffer-race"].reports
        by_file = {Path(r.location.filename).name: confidence_of(r, scores)
                   for r in reports}
        assert by_file["b.c"] > by_file["a.c"]

    def test_min_confidence_filters(self, mixed_files):
        run = check_files(mixed_files, feasibility=False,
                          names=["buffer-race"])
        scores = score_run(run)
        reports = run.results["buffer-race"].reports
        lo = min(confidence_of(r, scores) for r in reports)
        hi = max(confidence_of(r, scores) for r in reports)
        kept = filter_by_confidence(reports, scores, (lo + hi) / 2)
        assert [Path(r.location.filename).name for r in kept] == ["b.c"]

    def test_json_scores_deterministic(self, mixed_files):
        a = run_cli("check", "--format", "json", "--feasibility", "off",
                    *mixed_files)
        b = run_cli("check", "--format", "json", "--feasibility", "off",
                    *mixed_files)
        # The run id embeds a timestamp; the report payload (including
        # every confidence score) must be identical run to run.
        doc_a, doc_b = json.loads(a.stdout), json.loads(b.stdout)
        assert doc_a["reports"] == doc_b["reports"]
        scored = [r for r in doc_a["reports"] if "confidence" in r]
        assert scored
        assert all(0.0 <= r["confidence"] <= 1.0 for r in scored)


# -- mc-check lint -------------------------------------------------------------

BAD_METAL = """\
{ #include "flash-includes.h" }
sm broken {
    decl { scalar } addr;
    start:
      { WAIT_FOR_DB_FULL(addr); } ==> nowhere
    | { MISCBUS_READ_DB(addr, addr); } ==> stop
    | { MISCBUS_READ_DB(addr, addr); } ==>
        { err("dead: shadowed by the previous rule"); }
    ;
    lonely:
      { DB_FREE(); } ==> stop
    ;
}
"""


class TestLint:
    def test_finds_all_three_kinds(self):
        kinds = {f.kind for f in lint_source(BAD_METAL, "bad.metal")}
        assert kinds == {"undeclared-target", "unreachable-state",
                         "dead-rule"}

    def test_builtin_checkers_are_clean(self):
        for name, listing in BUILTIN_LISTINGS.items():
            assert lint_source(listing, name) == [], name

    def test_dynamic_initial_state_suppresses_unreachable(self):
        sm = StateMachine("dyn")
        sm.decl("any", "x")
        sm.state("a")
        sm.state("b")
        sm.state("c")
        sm.add_rule("a", "f(x)", target="b")
        assert [f.subject for f in lint_machine(sm)
                if f.kind == "unreachable-state"] == ["c"]
        sm.initial_state_fn = lambda fn: "c"
        assert not [f for f in lint_machine(sm)
                    if f.kind == "unreachable-state"]

    def test_python_action_reaches_all_states(self):
        # A Python action may pick any target dynamically, so lint must
        # not call states it could jump to unreachable.
        sm = StateMachine("dyn2")
        sm.decl("any", "x")
        sm.state("a")
        sm.state("b")
        sm.add_rule("a", "f(x)", action=lambda ctx: None)
        assert not [f for f in lint_machine(sm)
                    if f.kind == "unreachable-state"]

    def test_cli_lint_builtins_clean(self):
        result = run_cli("lint")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_cli_lint_flags_bad_machine(self, tmp_path):
        bad = tmp_path / "bad.metal"
        bad.write_text(BAD_METAL)
        result = run_cli("lint", str(bad))
        assert result.returncode == 1
        assert "undeclared-target" in result.stdout
        assert "unreachable-state" in result.stdout
        assert "dead-rule" in result.stdout
