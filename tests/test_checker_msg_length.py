"""§5 message length checker unit tests."""

from repro.checkers import MsgLengthChecker
from repro.project import program_from_source


def run(src):
    return MsgLengthChecker().check(program_from_source(src))


def test_zero_len_data_send():
    result = run("""
        void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            PI_SEND(F_DATA, 1, 0, 1, 1, 0);
        }
    """)
    assert len(result.errors) == 1
    assert "data send, zero len" in result.errors[0].message


def test_nonzero_len_nodata_send():
    result = run("""
        void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
            IO_SEND(F_NODATA, 1, 0, 1, 1, 0);
        }
    """)
    assert len(result.errors) == 1


def test_consistent_sends_clean():
    result = run("""
        void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
            PI_SEND(F_DATA, 1, 0, 1, 1, 0);
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            NI_SEND(t, F_NODATA, 1, 1, 1, 0);
        }
    """)
    assert result.reports == []


def test_assignment_hundreds_of_lines_before_send():
    filler = "\n".join(f"    t{i} = {i};" for i in range(200))
    result = run(f"""
        void h(void) {{
            unsigned {', '.join(f't{i}' for i in range(200))};
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
{filler}
            NI_SEND(t, F_DATA, 1, 1, 1, 0);
        }}
    """)
    assert len(result.errors) == 1


def test_reassignment_on_one_branch():
    result = run("""
        void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
            if (q) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }
            PI_SEND(F_DATA, 1, 0, 1, 1, 0);
        }
    """)
    assert len(result.errors) == 1


def test_send_without_any_assignment_ignored():
    result = run("void h(void) { PI_SEND(F_DATA, 1, 0, 1, 1, 0); }")
    assert result.reports == []


def test_runtime_flag_idiom_two_false_positives():
    # The coma idiom: the checker reports both impossible paths.
    result = run("""
        void h(void) {
            if (flag) { HANDLER_GLOBALS(header.nh.len) = LEN_WORD; }
            else { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }
            if (flag) { NI_SEND(t, F_DATA, 1, 1, 1, 0); }
            else { NI_SEND(t, F_NODATA, 1, 1, 1, 0); }
        }
    """)
    assert len(result.errors) == 2


def test_applied_counts_sends():
    result = run("""
        void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            NI_SEND(t, F_NODATA, 1, 1, 1, 0);
            NI_SEND(t, F_NODATA, 1, 1, 1, 0);
            IO_SEND(F_NODATA, 1, 0, 1, 1, 0);
        }
    """)
    assert result.applied == 3


def test_all_three_send_macros_checked():
    for macro, args in (
        ("PI_SEND", "F_DATA, 1, 0, 1, 1, 0"),
        ("IO_SEND", "F_DATA, 1, 0, 1, 1, 0"),
        ("NI_SEND", "t, F_DATA, 1, 1, 1, 0"),
    ):
        result = run(f"""
            void h(void) {{
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                {macro}({args});
            }}
        """)
        assert len(result.errors) == 1, macro


def test_length_state_does_not_leak_between_functions():
    result = run("""
        void h1(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }
        void h2(void) { PI_SEND(F_DATA, 1, 0, 1, 1, 0); }
    """)
    assert result.reports == []
