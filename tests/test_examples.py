"""Every example script runs green (the slow full-evaluation one is
covered by the integration tests and benchmarks instead)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Buffer not synchronized" in out


def test_custom_checker_locks(capsys):
    run_example("custom_checker_locks.py")
    out = capsys.readouterr().out
    assert "self-deadlock" in out
    assert "3 bugs found" in out


def test_simulate_bug_manifestation(capsys):
    run_example("simulate_bug_manifestation.py")
    out = capsys.readouterr().out
    assert "DEADLOCK" in out
    assert "static checker" in out
    assert "ran 100000 handlers cleanly" in out


def test_optimize_waits(capsys):
    run_example("optimize_waits.py")
    out = capsys.readouterr().out
    assert "2 of 4 waits removed" in out


def test_msi_protocol(capsys):
    run_example("msi_protocol.py")
    out = capsys.readouterr().out
    assert "0 diagnostics" in out
    assert "directory entries verified" in out
