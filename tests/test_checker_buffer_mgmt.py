"""§6 buffer management checker unit tests."""

import pytest

from repro.checkers import BufferMgmtChecker
from repro.project import HandlerInfo, ProtocolInfo, program_from_source


def make_info(**kwargs):
    info = ProtocolInfo(name="t", handlers={
        "HW": HandlerInfo("HW", "hw"),
        "SW": HandlerInfo("SW", "sw"),
    })
    for key, names in kwargs.items():
        getattr(info, key).update(names)
    return info


def run(src, info=None, refined=True):
    info = info if info is not None else make_info()
    checker = BufferMgmtChecker(use_branch_refinement=refined)
    return checker.check(program_from_source(src, info))


class TestHardwareHandlers:
    def test_free_then_return_clean(self):
        result = run("void HW(void) { DB_FREE(); return; }")
        assert result.reports == []

    def test_return_without_free_is_leak(self):
        result = run("void HW(void) { return; }")
        assert len(result.errors) == 1
        assert "leak" in result.errors[0].message

    def test_fall_off_end_without_free_is_leak(self):
        result = run("void HW(void) { f(); }")
        assert len(result.errors) == 1

    def test_double_free(self):
        result = run("void HW(void) { DB_FREE(); DB_FREE(); }")
        assert len(result.errors) == 1
        assert "twice" in result.errors[0].message

    def test_send_before_free_clean(self):
        result = run("""
            void HW(void) {
                PI_SEND(F_DATA, 1, 0, 0, 1, 0);
                DB_FREE();
            }
        """)
        assert result.reports == []

    def test_send_after_free_is_error(self):
        result = run("""
            void HW(void) {
                DB_FREE();
                PI_SEND(F_DATA, 1, 0, 0, 1, 0);
            }
        """)
        assert len(result.errors) == 1
        assert "without a data buffer" in result.errors[0].message

    def test_alloc_while_holding_is_error(self):
        result = run("""
            void HW(void) {
                unsigned b;
                b = DB_ALLOC();
                DB_FREE();
            }
        """)
        assert len(result.errors) == 1
        assert "leaks current" in result.errors[0].message

    def test_free_alloc_send_free_clean(self):
        result = run("""
            void HW(void) {
                unsigned b;
                DB_FREE();
                b = DB_ALLOC();
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
                DB_FREE();
            }
        """)
        assert result.reports == []

    def test_leak_on_one_branch_only(self):
        result = run("""
            void HW(void) {
                if (c) { return; }
                DB_FREE();
            }
        """)
        assert len(result.errors) == 1


class TestSoftwareHandlers:
    def test_send_before_alloc_is_error(self):
        result = run("""
            void SW(void) { NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0); }
        """)
        assert len(result.errors) == 1

    def test_alloc_then_send_then_free_clean(self):
        result = run("""
            void SW(void) {
                unsigned b;
                b = DB_ALLOC();
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
                DB_FREE();
            }
        """)
        assert result.reports == []


class TestRoutineTables:
    def test_free_routine_transitions(self):
        info = make_info(free_routines={"pass_to_io"})
        result = run("""
            void HW(void) { pass_to_io(); return; }
        """, info)
        assert result.reports == []

    def test_free_routine_then_explicit_free_is_double(self):
        info = make_info(free_routines={"pass_to_io"})
        result = run("""
            void HW(void) { pass_to_io(); DB_FREE(); }
        """, info)
        assert len(result.errors) == 1

    def test_free_routine_checked_for_consistency(self):
        # A routine in the free table that never frees exits holding.
        info = make_info(free_routines={"broken_helper"})
        result = run("void broken_helper(void) { f(); return; }", info)
        assert len(result.errors) == 1

    def test_use_routine_checked_for_consistency(self):
        # A buffer-use routine that frees breaks its contract.
        info = make_info(buffer_use_routines={"peek"})
        result = run("void peek(void) { DB_FREE(); return; }", info)
        assert len(result.errors) == 1
        assert "callers expect" in result.errors[0].message

    def test_use_routine_call_without_buffer(self):
        info = make_info(buffer_use_routines={"peek"})
        result = run("""
            void HW(void) { DB_FREE(); peek(); }
        """, info)
        assert len(result.errors) == 1

    def test_plain_proc_without_buffer_ops_clean(self):
        result = run("void util(void) { a = b + 1; return; }")
        assert result.reports == []


class TestAnnotations:
    def test_no_free_needed_suppresses_leak(self):
        result = run("""
            void HW(void) {
                if (c) { no_free_needed(); return; }
                DB_FREE();
            }
        """)
        assert result.reports == []
        assert len(result.annotations) == 1

    def test_has_buffer_asserts_state(self):
        result = run("""
            void util(void) {
                has_buffer();
                NI_SEND(NI_REQUEST, F_DATA, 1, 0, 1, 0);
                DB_FREE();
                return;
            }
        """)
        assert result.reports == []

    def test_annotation_sites_deduplicated(self):
        result = run("""
            void HW(void) {
                if (a) { f(); }
                if (b) { g(); }
                no_free_needed();
                return;
            }
        """)
        assert len(result.annotations) == 1


class TestBranchRefinement:
    SRC = """
        void HW(void) {
            if (try_forward()) { return; }
            DB_FREE();
        }
    """

    def test_frees_if_true_refinement(self):
        info = make_info(frees_if_true={"try_forward"})
        assert run(self.SRC, info).reports == []

    def test_naive_mode_cascades(self):
        info = make_info(frees_if_true={"try_forward"})
        result = run(self.SRC, info, refined=False)
        assert len(result.errors) >= 1

    def test_negated_condition(self):
        info = make_info(frees_if_true={"try_forward"})
        result = run("""
            void HW(void) {
                if (!try_forward()) { DB_FREE(); return; }
                return;
            }
        """, info)
        assert result.reports == []

    def test_alloc_failure_path_not_a_leak(self):
        result = run("""
            void SW(void) {
                unsigned b;
                b = DB_ALLOC();
                if (DB_IS_ERROR(b)) { return; }
                DB_FREE();
            }
        """)
        assert result.reports == []


class TestRefcountWarStory:
    def test_manual_refcount_flagged(self):
        result = run("""
            void HW(void) {
                DB_INC_REFCOUNT(buf);
                DB_FREE();
            }
        """)
        assert len(result.warnings) == 1
        assert "DB_INC_REFCOUNT" in result.warnings[0].message
