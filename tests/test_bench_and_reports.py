"""Benchmark-layer (tables/formatting) and report-formatting tests."""

from repro.bench.formatting import render_table
from repro.bench.tables import Cell, TableResult
from repro.bench import paper_data
from repro.lang.source import Location
from repro.mc.report import format_reports, summarize_by_severity
from repro.metal.runtime import Report, ReportSink


class TestCell:
    def test_match(self):
        assert Cell(4, 4).matches
        assert not Cell(4, 5).matches

    def test_str_marks_mismatch(self):
        assert str(Cell(4, 4)) == "4 (paper 4)"
        assert str(Cell(4, 5)).endswith("*")


class TestTableResult:
    def make(self):
        table = TableResult("T", ["label", "a", "b"])
        table.rows.append({"label": "x", "a": Cell(1, 1), "b": Cell(2, 3)})
        table.rows.append({"label": "y", "a": Cell(5, 5), "b": Cell(6, 6)})
        return table

    def test_row_lookup(self):
        table = self.make()
        assert table.row("y")["a"].measured == 5

    def test_row_missing(self):
        import pytest
        with pytest.raises(KeyError):
            self.make().row("zzz")

    def test_exact_cells(self):
        assert self.make().exact_cells() == (3, 4)

    def test_render(self):
        text = render_table(self.make())
        assert "T" in text
        assert "3/4 cells" in text
        assert "3 (paper 2) *" in text or "3 (paper 2)*" in text


class TestPaperData:
    def test_table1_totals(self):
        assert sum(v[0] for v in paper_data.TABLE1.values()) == 80507

    def test_table7_error_total(self):
        assert sum(v[1] for v in paper_data.TABLE7.values()) == 34

    def test_table7_fp_total(self):
        assert sum(v[2] for v in paper_data.TABLE7.values()) == 69

    def test_table7_loc_total(self):
        assert sum(v[0] for v in paper_data.TABLE7.values()) == 553

    def test_table5_handler_total(self):
        assert sum(v[1] for v in paper_data.TABLE5.values()) == 1064

    def test_table6_applied_totals(self):
        assert sum(v[1] for v in paper_data.TABLE6.values()) == 97
        assert sum(v[3] for v in paper_data.TABLE6.values()) == 1768
        assert sum(v[5] for v in paper_data.TABLE6.values()) == 125

    def test_table2_and_3_applied_totals(self):
        assert sum(v[2] for v in paper_data.TABLE2.values()) == 59
        assert sum(v[2] for v in paper_data.TABLE3.values()) == 1550


class TestReportSink:
    def loc(self, line=1):
        return Location("x.c", line, 1)

    def test_deduplication(self):
        sink = ReportSink()
        report = Report("c", "m", self.loc())
        assert sink.add(report) is True
        assert sink.add(Report("c", "m", self.loc())) is False
        assert len(sink) == 1

    def test_different_locations_kept(self):
        sink = ReportSink()
        sink.add(Report("c", "m", self.loc(1)))
        sink.add(Report("c", "m", self.loc(2)))
        assert len(sink) == 2

    def test_iteration(self):
        sink = ReportSink()
        sink.add(Report("c", "m", self.loc()))
        assert [r.message for r in sink] == ["m"]


class TestFormatting:
    def test_format_reports_sorted(self):
        reports = [
            Report("c", "late", Location("b.c", 9, 1)),
            Report("c", "early", Location("a.c", 2, 1)),
        ]
        text = format_reports(reports)
        assert text.index("early") < text.index("late")

    def test_format_reports_empty(self):
        assert "no diagnostics" in format_reports([])

    def test_format_with_heading(self):
        text = format_reports([], heading="results")
        assert text.startswith("results\n-------")

    def test_report_str_with_backtrace(self):
        report = Report("lanes", "too many sends", Location("p.c", 5, 1),
                        function="H", backtrace=("H:3",))
        text = str(report)
        assert "called from H:3" in text

    def test_summarize_by_severity(self):
        reports = [
            Report("c", "a", Location("x.c", 1, 1)),
            Report("c", "b", Location("x.c", 2, 1), severity="warning"),
            Report("c", "d", Location("x.c", 3, 1)),
        ]
        assert summarize_by_severity(reports) == {"error": 2, "warning": 1}


class TestExperimentObject:
    def test_shared_experiment_is_singleton(self):
        from repro.bench.tables import shared_experiment
        assert shared_experiment() is shared_experiment()

    def test_classified_before_check_returns_empty(self):
        from repro.bench.tables import ClassifiedReports
        empty = ClassifiedReports()
        assert empty.errors == 0 and empty.unmatched == 0
