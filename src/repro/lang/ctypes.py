"""Semantic type model for the C subset.

The checkers only need a coarse view of types: integer-ness ("scalar" in
metal's wildcard vocabulary), floating-ness (for the no-float execution
restriction), pointers, arrays, and struct layout (for the stack-usage
restriction, which limits aggregate sizes to 64 bits).  Sizes follow the
32-bit MIPS ABI the FLASH protocol processor used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CType:
    """Base class for resolved C types."""

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_floating(self) -> bool:
        return False

    @property
    def is_scalar(self) -> bool:
        """metal's ``scalar`` wildcard: any arithmetic or pointer type."""
        return self.is_integer or self.is_floating or isinstance(self, Pointer)

    def size_bits(self) -> Optional[int]:
        """Size in bits, or None when unknown (incomplete types)."""
        return None


@dataclass(frozen=True)
class Void(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class Integer(CType):
    """Any integer type; ``name`` is the canonical spelling."""

    name: str = "int"
    signed: bool = True
    bits: int = 32

    @property
    def is_integer(self) -> bool:
        return True

    def size_bits(self) -> Optional[int]:
        return self.bits

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Floating(CType):
    name: str = "double"
    bits: int = 64

    @property
    def is_floating(self) -> bool:
        return True

    def size_bits(self) -> Optional[int]:
        return self.bits

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Pointer(CType):
    pointee: CType = field(default_factory=Void)

    def size_bits(self) -> Optional[int]:
        return 32  # MIPS32 ABI

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class Array(CType):
    element: CType = field(default_factory=lambda: Integer())
    length: Optional[int] = None

    def size_bits(self) -> Optional[int]:
        if self.length is None:
            return None
        elem = self.element.size_bits()
        return None if elem is None else elem * self.length

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"


@dataclass(frozen=True)
class Struct(CType):
    """A struct or union type; fields are (name, type) pairs."""

    tag: str = ""
    members: tuple = ()
    is_union: bool = False

    def size_bits(self) -> Optional[int]:
        total = 0
        for _, mtype in self.members:
            mbits = mtype.size_bits()
            if mbits is None:
                return None
            total = max(total, mbits) if self.is_union else total + mbits
        return total

    def member(self, name: str) -> Optional[CType]:
        for mname, mtype in self.members:
            if mname == name:
                return mtype
        return None

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag}" if self.tag else kw


@dataclass(frozen=True)
class Function(CType):
    return_type: CType = field(default_factory=Void)
    param_types: tuple = ()

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types) or "void"
        return f"{self.return_type}({params})"


@dataclass(frozen=True)
class Unknown(CType):
    """Used for unresolved identifiers so analysis can continue."""

    def __str__(self) -> str:
        return "<unknown>"


# Singletons for the common cases.
VOID = Void()
INT = Integer("int", True, 32)
UNSIGNED = Integer("unsigned", False, 32)
CHAR = Integer("char", True, 8)
UNSIGNED_CHAR = Integer("unsigned char", False, 8)
SHORT = Integer("short", True, 16)
UNSIGNED_SHORT = Integer("unsigned short", False, 16)
LONG = Integer("long", True, 32)
UNSIGNED_LONG = Integer("unsigned long", False, 32)
LONG_LONG = Integer("long long", True, 64)
UNSIGNED_LONG_LONG = Integer("unsigned long long", False, 64)
FLOAT = Floating("float", 32)
DOUBLE = Floating("double", 64)
UNKNOWN = Unknown()

_BASE_TYPES = {
    "void": VOID,
    "char": CHAR,
    "signed char": CHAR,
    "unsigned char": UNSIGNED_CHAR,
    "short": SHORT,
    "short int": SHORT,
    "signed short": SHORT,
    "unsigned short": UNSIGNED_SHORT,
    "unsigned short int": UNSIGNED_SHORT,
    "int": INT,
    "signed": INT,
    "signed int": INT,
    "long": LONG,
    "long int": LONG,
    "signed long": LONG,
    "unsigned": UNSIGNED,
    "unsigned int": UNSIGNED,
    "unsigned long": UNSIGNED_LONG,
    "unsigned long int": UNSIGNED_LONG,
    "long long": LONG_LONG,
    "long long int": LONG_LONG,
    "unsigned long long": UNSIGNED_LONG_LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "long double": Floating("long double", 64),
}


def lookup_base_type(spelling: str) -> Optional[CType]:
    """Resolve a builtin specifier spelling like ``unsigned long``."""
    return _BASE_TYPES.get(spelling)
