"""C-subset compiler frontend: lexer, parser, AST, types, sema, unparser.

This package is the front half of the "xg++" analog described in
DESIGN.md: it turns FLASH-style C source into typed ASTs that the CFG
layer and the metal pattern matcher consume.
"""

from . import ast, ctypes
from .lexer import Lexer, Token, TokenKind, tokenize
from .memo import clear_memo, memo_stats, parse_annotated, source_fingerprint
from .parser import (FRONTEND_MODES, Parser, default_mode, parse,
                     parse_expression, parse_statement, set_default_mode)
from .sema import SemaInfo, annotate
from .source import Location, SourceFile, Span
from .symtab import Scope, Symbol, SymbolKind
from .unparse import unparse_decl, unparse_expr, unparse_stmt, unparse_unit

__all__ = [
    "ast", "ctypes",
    "Lexer", "Token", "TokenKind", "tokenize",
    "Parser", "parse", "parse_expression", "parse_statement",
    "FRONTEND_MODES", "default_mode", "set_default_mode",
    "SemaInfo", "annotate",
    "clear_memo", "memo_stats", "parse_annotated", "source_fingerprint",
    "Location", "SourceFile", "Span",
    "Scope", "Symbol", "SymbolKind",
    "unparse_decl", "unparse_expr", "unparse_stmt", "unparse_unit",
]
