"""Source-text bookkeeping: files, locations and spans.

Everything downstream of the lexer (parser, checkers, diagnostics) refers
back to positions in the input through these small value types, mirroring
how xg++ reports errors against the original FLASH source.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Location:
    """A single point in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, from ``start`` up to ``end``."""

    start: Location
    end: Location

    def __str__(self) -> str:
        return str(self.start)

    @staticmethod
    def point(loc: Location) -> "Span":
        return Span(loc, loc)


_UNKNOWN = Location("<unknown>", 0, 0)


def unknown_location() -> Location:
    """Location used for synthesized nodes that have no source position."""
    return _UNKNOWN


@dataclass
class SourceFile:
    """A named piece of source text plus per-line offsets for diagnostics."""

    name: str
    text: str
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def location(self, offset: int) -> Location:
        """Map a character offset to a (line, column) :class:`Location`."""
        if offset < 0 or offset > len(self.text):
            raise ValueError(f"offset {offset} out of range for {self.name}")
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return Location(self.name, lo + 1, offset - self._line_starts[lo] + 1)

    def line_text(self, line: int) -> str:
        """Return the text of 1-based ``line`` without its newline."""
        if line < 1 or line > len(self._line_starts):
            raise ValueError(f"line {line} out of range for {self.name}")
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    @property
    def line_count(self) -> int:
        """Number of lines in the file (a trailing newline does not add one)."""
        if not self.text:
            return 0
        n = len(self._line_starts)
        if self.text.endswith("\n"):
            n -= 1
        return max(n, 0)
