"""Abstract syntax tree for the C subset.

Nodes are plain dataclasses.  Each carries a source :class:`Location` and
supports generic traversal through :meth:`Node.children` / :meth:`Node.walk`,
which is what the metal pattern matcher and the checkers use to visit
"every tree node" the way xg++ extensions do.

Structural equality for pattern matching deliberately ignores locations:
two ``x + 1`` expressions parsed from different lines are equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

from .source import Location, unknown_location


# Per-class tuple of field names that can hold child nodes.  The
# traversal methods below are the hottest code in the engine (pattern
# matching visits "every tree node"), and ``dataclasses.fields`` is far
# too slow to call once per visit.
_CHILD_FIELDS: dict = {}


def _child_fields(cls) -> tuple:
    names = _CHILD_FIELDS.get(cls)
    if names is None:
        names = tuple(
            f.name for f in fields(cls) if f.name != "location")
        _CHILD_FIELDS[cls] = names
    return names


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: Location = field(
        default_factory=unknown_location, repr=False, compare=False, kw_only=True
    )

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes, in source order."""
        for name in _child_fields(type(self)):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant, pre-order.

        Iterative: the recursive ``yield from`` formulation costs
        O(depth) per yielded node, which dominates on real handler
        bodies.
        """
        stack = [self]
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            children = list(node.children())
            children.reverse()
            stack.extend(children)

    @property
    def kind(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions.  ``ctype`` is filled in by sema."""

    def __post_init__(self):
        # Annotated lazily by repro.lang.sema; not part of equality.
        self.ctype = None


@dataclass(eq=False)
class IntLit(Expr):
    text: str = ""

    @property
    def value(self) -> int:
        t = self.text.rstrip("uUlL")
        if t.startswith(("0x", "0X")):
            return int(t, 16)
        if len(t) > 1 and t.startswith("0"):
            return int(t, 8)
        return int(t, 10)

    def __eq__(self, other):
        return isinstance(other, IntLit) and self.value == other.value

    def __hash__(self):
        return hash(("IntLit", self.value))


@dataclass
class FloatLit(Expr):
    text: str = ""

    @property
    def value(self) -> float:
        return float(self.text.rstrip("fFlL"))


@dataclass
class CharLit(Expr):
    text: str = ""


@dataclass
class StringLit(Expr):
    text: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Call(Expr):
    func: Expr = None
    args: list[Expr] = field(default_factory=list)

    @property
    def callee_name(self) -> Optional[str]:
        """The called function's name when the callee is a plain identifier."""
        return self.func.name if isinstance(self.func, Ident) else None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnaryOp(Expr):
    """Prefix operator: ``-x``, ``!x``, ``~x``, ``*p``, ``&x``, ``++x``, ``--x``."""

    op: str = ""
    operand: Expr = None


@dataclass
class PostfixOp(Expr):
    """Postfix ``x++`` / ``x--``."""

    op: str = ""
    operand: Expr = None


@dataclass
class Assign(Expr):
    """Assignment, including compound forms (``op`` is ``=``, ``+=``, ...)."""

    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Member(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    base: Expr = None
    name: str = ""
    arrow: bool = False


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Cast(Expr):
    type_name: "TypeName" = None
    operand: Expr = None


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None


@dataclass
class SizeofType(Expr):
    type_name: "TypeName" = None


@dataclass
class Comma(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class OpaqueExpr(Expr):
    """Tolerant-mode fallback: an expression region the parser could not
    understand.  ``text`` carries the raw token span.  Analyses must
    treat it as havoc — it may read or write anything — and never match
    through it.  Produced only by the tolerant frontend."""

    text: str = ""


# ---------------------------------------------------------------------------
# Types as written in source (resolved to repro.lang.ctypes by sema)
# ---------------------------------------------------------------------------


@dataclass
class TypeName(Node):
    """A parsed type: base specifier text plus derived pointer/array layers.

    ``specifiers`` keeps the ordered keyword/identifier spelling
    (``["unsigned", "long"]``, ``["struct", "Header"]``, ``["MyTypedef"]``).
    ``pointer_depth`` counts ``*`` layers; ``array_dims`` holds one entry per
    ``[]`` (the expression, or None for ``[]``).
    """

    specifiers: list[str] = field(default_factory=list)
    pointer_depth: int = 0
    array_dims: list[Optional[Expr]] = field(default_factory=list)
    qualifiers: list[str] = field(default_factory=list)

    @property
    def base_spelling(self) -> str:
        return " ".join(self.specifiers)

    @property
    def is_void(self) -> bool:
        return self.specifiers == ["void"] and self.pointer_depth == 0

    @property
    def is_floating(self) -> bool:
        return bool(set(self.specifiers) & {"float", "double"}) and self.pointer_depth == 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Node] = None  # Expr or DeclStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Switch(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class Case(Stmt):
    value: Expr = None


@dataclass
class Default(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Label(Stmt):
    name: str = ""


@dataclass
class OpaqueStmt(Stmt):
    """Tolerant-mode fallback: a statement region the parser resynced
    over (panic-mode recovery to ``;`` / ``}``).  ``text`` carries the
    raw token span and ``reason`` the parse error that triggered
    recovery.  The CFG builder lowers it as an ordinary event; the
    feasibility layer havocs every tracked fact across it; the engine
    suppresses reports on paths that cross one."""

    text: str = ""
    reason: str = ""


@dataclass
class DeclStmt(Stmt):
    decls: list["VarDecl"] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    """Base class for file-scope declarations."""


@dataclass
class VarDecl(Decl):
    name: str = ""
    type_name: TypeName = None
    init: Optional[Expr] = None
    storage: Optional[str] = None  # "static", "extern", ...


@dataclass
class ParamDecl(Decl):
    name: str = ""
    type_name: TypeName = None


@dataclass
class FieldDecl(Decl):
    name: str = ""
    type_name: TypeName = None


@dataclass
class StructDef(Decl):
    tag: str = ""
    fields_: list[FieldDecl] = field(default_factory=list)
    is_union: bool = False


@dataclass
class EnumDef(Decl):
    tag: str = ""
    enumerators: list[tuple] = field(default_factory=list)  # (name, Expr|None)


@dataclass
class TypedefDecl(Decl):
    name: str = ""
    type_name: TypeName = None


@dataclass
class FunctionDecl(Decl):
    """A prototype (no body)."""

    name: str = ""
    return_type: TypeName = None
    params: list[ParamDecl] = field(default_factory=list)
    storage: Optional[str] = None


@dataclass
class FunctionDef(Decl):
    """A function definition with a body."""

    name: str = ""
    return_type: TypeName = None
    params: list[ParamDecl] = field(default_factory=list)
    body: Block = None
    storage: Optional[str] = None

    @property
    def takes_no_params(self) -> bool:
        if not self.params:
            return True
        if len(self.params) == 1 and self.params[0].type_name.is_void:
            return True
        return False


@dataclass
class TranslationUnit(Node):
    """One parsed source file.

    ``quarantined`` is filled by the tolerant frontend only: one
    ``(function-or-region name, message)`` pair per region that could
    not be recovered into the AST at all.  The fleet turns each entry
    into a :class:`repro.mc.resilience.Quarantine` with
    ``phase="input"``.
    """

    filename: str = ""
    decls: list[Decl] = field(default_factory=list)
    quarantined: list = field(default_factory=list)

    def functions(self) -> list[FunctionDef]:
        return [d for d in self.decls if isinstance(d, FunctionDef)]

    def function(self, name: str) -> FunctionDef:
        for d in self.decls:
            if isinstance(d, FunctionDef) and d.name == name:
                return d
        raise KeyError(name)
