"""Tokenizer for the C subset understood by the frontend.

The lexer produces a flat list of :class:`Token` objects.  It understands
the full C operator set, character/string/number literals, and both comment
styles.  FLASH macros (``WAIT_FOR_DB_FULL`` and friends) arrive here as
ordinary identifiers — exactly how xg++ saw them after preprocessing.

In **tolerant** mode (``Lexer(source, tolerant=True)``) the lexer never
raises: byte sequences it cannot tokenize become ``UNKNOWN`` tokens and
unterminated literals/comments are closed at end of line or end of file,
so the recovering parser (:mod:`repro.lang.parser`) always receives a
complete token stream for arbitrary input.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..errors import LexError
from .source import Location, SourceFile


class TokenKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    CHAR_LIT = auto()
    STRING_LIT = auto()
    PUNCT = auto()
    #: Tolerant-mode lane: input the lexer cannot classify.  Never
    #: produced in strict mode (strict raises :class:`LexError` instead).
    UNKNOWN = auto()
    EOF = auto()


KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register return short signed sizeof
    static struct switch typedef union unsigned void volatile while
    """.split()
)

# Longest-match-first punctuation table.
PUNCTUATION = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "^", "|", "!", "~",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")


@dataclass(frozen=True)
class Token:
    """One lexical token with its spelling and source location."""

    kind: TokenKind
    text: str
    location: Location

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text


class Lexer:
    """Single-pass tokenizer over a :class:`SourceFile`."""

    def __init__(self, source: SourceFile, tolerant: bool = False):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.tolerant = tolerant

    def tokenize(self) -> list[Token]:
        """Tokenize the whole file, appending a single EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenKind.EOF, "", self._loc(self.pos)))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _loc(self, offset: int) -> Location:
        return self.source.location(min(offset, len(self.text)))

    def _skip_whitespace_and_comments(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif ch == "#":
                self._skip_directive()
            elif text.startswith("//", self.pos):
                while self.pos < n and text[self.pos] != "\n":
                    self.pos += 1
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end == -1:
                    if self.tolerant:
                        # Close the comment at EOF; the rest of the file
                        # is comment-like anyway.
                        self.pos = n
                        return
                    raise LexError("unterminated block comment", self._loc(self.pos))
                self.pos = end + 2
            else:
                return

    def _skip_directive(self) -> None:
        """Skip a preprocessor directive.

        ``#include`` consumes only its filename (so the metal preamble
        ``{ #include "flash-includes.h" }`` keeps its closing brace);
        every other directive is skipped to end of line, honouring
        backslash continuations.
        """
        text, n = self.text, len(self.text)
        self.pos += 1  # '#'
        while self.pos < n and text[self.pos] in " \t":
            self.pos += 1
        start = self.pos
        while self.pos < n and text[self.pos] in _IDENT_CONT:
            self.pos += 1
        directive = text[start:self.pos]
        if directive == "include":
            while self.pos < n and text[self.pos] in " \t":
                self.pos += 1
            if self.pos < n and text[self.pos] == '"':
                end = text.find('"', self.pos + 1)
                self.pos = n if end == -1 else end + 1
            elif self.pos < n and text[self.pos] == "<":
                end = text.find(">", self.pos + 1)
                self.pos = n if end == -1 else end + 1
            return
        while self.pos < n and text[self.pos] != "\n":
            if text[self.pos] == "\\" and self.pos + 1 < n and text[self.pos + 1] == "\n":
                self.pos += 1
            self.pos += 1

    def _next_token(self) -> Token:
        ch = self.text[self.pos]
        if ch in _IDENT_START:
            return self._lex_ident()
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_char()
        return self._lex_punct()

    def _peek(self, ahead: int) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _lex_ident(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _IDENT_CONT:
            self.pos += 1
        text = self.text[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, self._loc(start))

    def _lex_number(self) -> Token:
        start = self.pos
        text = self.text
        is_float = False
        if text.startswith(("0x", "0X"), self.pos):
            self.pos += 2
            while self.pos < len(text) and text[self.pos] in _HEX_DIGITS:
                self.pos += 1
        else:
            while self.pos < len(text) and text[self.pos] in _DIGITS:
                self.pos += 1
            if self.pos < len(text) and text[self.pos] == "." and self._peek(1) != ".":
                is_float = True
                self.pos += 1
                while self.pos < len(text) and text[self.pos] in _DIGITS:
                    self.pos += 1
            if self.pos < len(text) and text[self.pos] in "eE":
                nxt = self._peek(1)
                if nxt in _DIGITS or (nxt in "+-" and self._peek(2) in _DIGITS):
                    is_float = True
                    self.pos += 1
                    if text[self.pos] in "+-":
                        self.pos += 1
                    while self.pos < len(text) and text[self.pos] in _DIGITS:
                        self.pos += 1
        # Suffixes: u/U/l/L for ints, f/F/l/L for floats.
        while self.pos < len(text) and text[self.pos] in "uUlLfF":
            if text[self.pos] in "fF":
                is_float = True
            self.pos += 1
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text[start:self.pos], self._loc(start))

    def _lex_string(self) -> Token:
        start = self.pos
        self.pos += 1
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "\\":
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                return Token(TokenKind.STRING_LIT, text[start:self.pos], self._loc(start))
            if ch == "\n":
                break
            self.pos += 1
        if self.tolerant:
            # Close the literal at end of line / end of file.
            return Token(TokenKind.STRING_LIT,
                         self.text[start:self.pos] + '"', self._loc(start))
        raise LexError("unterminated string literal", self._loc(start))

    def _lex_char(self) -> Token:
        start = self.pos
        self.pos += 1
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "\\":
                self.pos += 2
                continue
            if ch == "'":
                self.pos += 1
                return Token(TokenKind.CHAR_LIT, text[start:self.pos], self._loc(start))
            if ch == "\n":
                break
            self.pos += 1
        if self.tolerant:
            return Token(TokenKind.CHAR_LIT,
                         self.text[start:self.pos] + "'", self._loc(start))
        raise LexError("unterminated character literal", self._loc(start))

    def _lex_punct(self) -> Token:
        for punct in PUNCTUATION:
            if self.text.startswith(punct, self.pos):
                tok = Token(TokenKind.PUNCT, punct, self._loc(self.pos))
                self.pos += len(punct)
                return tok
        if self.tolerant:
            # Group a maximal run of unclassifiable bytes into a single
            # UNKNOWN token, so byte soup does not produce one token per
            # byte.
            start = self.pos
            while (self.pos < len(self.text)
                   and not self._classifiable(self.text[self.pos])):
                self.pos += 1
            return Token(TokenKind.UNKNOWN, self.text[start:self.pos],
                         self._loc(start))
        raise LexError(
            f"unexpected character {self.text[self.pos]!r}", self._loc(self.pos)
        )

    def _classifiable(self, ch: str) -> bool:
        """Could ``ch`` start an ordinary token (or whitespace)?"""
        if ch in " \t\r\n\f\v#":
            return True
        if ch in _IDENT_START or ch in _DIGITS or ch in "\"'.":
            return True
        return any(p.startswith(ch) for p in PUNCTUATION)


def tokenize(text: str, filename: str = "<input>",
             tolerant: bool = False) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` into a token list (with EOF)."""
    return Lexer(SourceFile(filename, text), tolerant=tolerant).tokenize()
