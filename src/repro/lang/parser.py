"""Recursive-descent parser for the C subset.

The grammar covers everything that appears in FLASH-style protocol code
after preprocessing: function definitions, struct/union/enum/typedef
declarations, the full statement set (if/else, while, do, for, switch,
goto/labels, break/continue/return), and the full C expression grammar with
standard precedence.

Typedef names are tracked in a growing set so that ``MyType x;`` parses as
a declaration.  Function-pointer declarators and K&R-style definitions are
out of scope (FLASH handlers do not use them; see DESIGN.md §6).

Two frontend modes (``--frontend strict|tolerant``):

``strict`` (default)
    one unsupported construct raises :class:`ParseError` — right for the
    paper corpus, whose generated C the grammar covers exactly.

``tolerant``
    never raises.  Panic-mode recovery resyncs to ``;`` / ``}`` / the
    next top-level declaration: an unparseable statement becomes an
    :class:`repro.lang.ast.OpaqueStmt` carrying the raw token span, an
    unparseable primary expression becomes an ``OpaqueExpr``, and a
    top-level region that cannot be recovered at all is recorded in
    ``TranslationUnit.quarantined`` for the fleet to surface as a
    ``Quarantine(phase="input")``.  On input the strict grammar accepts,
    tolerant mode takes byte-identical parse decisions (recovery never
    fires), so reports are identical across modes (docs/frontend-
    tolerance.md).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import Lexer, Token, TokenKind
from .source import SourceFile

TYPE_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned struct union enum".split()
)
QUALIFIERS = frozenset("const volatile".split())
STORAGE = frozenset("static extern register auto inline typedef".split())

_ASSIGN_OPS = frozenset("= += -= *= /= %= &= ^= |= <<= >>=".split())

# Binary operator precedence, loosest to tightest.
_BINOP_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_UNARY_OPS = frozenset("+ - ! ~ * & ++ --".split())

#: Valid values for the frontend ``mode`` flag (``--frontend``).
FRONTEND_MODES = ("strict", "tolerant")

_DEFAULT_MODE = "strict"


def default_mode() -> str:
    """The process-wide frontend mode used when :func:`parse` gets no mode."""
    return _DEFAULT_MODE


def set_default_mode(mode: str) -> str:
    """Set the process-wide frontend mode; returns the previous value.

    Mirrors :func:`repro.mc.feasibility.set_default_enabled`: fleet
    workers call this from their initializer so every parse in the
    process honours ``--frontend`` without threading a flag through
    each call site.
    """
    global _DEFAULT_MODE
    if mode not in FRONTEND_MODES:
        raise ValueError(f"unknown frontend mode {mode!r}")
    previous = _DEFAULT_MODE
    _DEFAULT_MODE = mode
    return previous


class Parser:
    """Parses one token stream into a :class:`repro.lang.ast.TranslationUnit`."""

    def __init__(self, tokens: list[Token], filename: str = "<input>",
                 typedefs: Optional[set[str]] = None, mode: str = "strict"):
        if mode not in FRONTEND_MODES:
            raise ValueError(f"unknown frontend mode {mode!r}")
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.typedefs: set[str] = set(typedefs or ())
        self.mode = mode
        self.tolerant = mode == "tolerant"
        #: Recovery counters, surfaced as ``frontend.*`` metrics.
        self.recovered_statements = 0
        self.opaque_expressions = 0

    # -- token helpers -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {str(self.tok)!r}", self.tok.location)
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.tok.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {str(self.tok)!r}", self.tok.location)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {str(self.tok)!r}", self.tok.location)
        return self.advance()

    def accept_punct(self, text: str) -> Optional[Token]:
        if self.tok.is_punct(text):
            return self.advance()
        return None

    # -- type recognition ----------------------------------------------------

    def _starts_type(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD:
            return tok.text in TYPE_KEYWORDS or tok.text in QUALIFIERS or tok.text in STORAGE
        return tok.kind is TokenKind.IDENT and tok.text in self.typedefs

    # -- entry points --------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        decls: list[ast.Decl] = []
        quarantined: list[tuple[str, str]] = []
        while self.tok.kind is not TokenKind.EOF:
            start = self.pos
            try:
                decl = self.parse_external_declaration()
            except (ParseError, RecursionError) as error:
                if not self.tolerant:
                    raise
                quarantined.append(self._recover_toplevel(start, error))
                continue
            if isinstance(decl, list):
                decls.extend(decl)
            elif decl is not None:
                decls.append(decl)
        return ast.TranslationUnit(filename=self.filename, decls=decls,
                                   quarantined=quarantined)

    def parse_external_declaration(self):
        start = self.tok
        storage = None
        while self.tok.kind is TokenKind.KEYWORD and self.tok.text in STORAGE:
            if self.tok.text == "typedef":
                return self._parse_typedef()
            if storage is None and self.tok.text in ("static", "extern"):
                storage = self.tok.text
            self.advance()

        if self.tok.is_keyword("struct") or self.tok.is_keyword("union"):
            # struct definition or a declaration using a struct type
            if self.peek().kind is TokenKind.IDENT and self.peek(2).is_punct("{"):
                return self._parse_struct_def()
            if self.peek().is_punct("{"):
                return self._parse_struct_def()
        if self.tok.is_keyword("enum"):
            if self.peek().is_punct("{") or (
                self.peek().kind is TokenKind.IDENT and self.peek(2).is_punct("{")
            ):
                return self._parse_enum_def()

        type_name = self.parse_type_name()
        if self.tok.is_punct(";"):
            # e.g. ``struct foo;`` forward declaration — keep nothing.
            self.advance()
            return None
        name_tok = self.expect_ident()

        if self.tok.is_punct("("):
            return self._parse_function(type_name, name_tok, storage)
        return self._parse_var_decls(type_name, name_tok, storage, start)

    # -- declarations ----------------------------------------------------------

    def parse_type_name(self) -> ast.TypeName:
        """Parse specifiers + ``*`` layers.  Array dims are parsed by callers."""
        loc = self.tok.location
        specifiers: list[str] = []
        qualifiers: list[str] = []
        while True:
            tok = self.tok
            if tok.kind is TokenKind.KEYWORD and tok.text in QUALIFIERS:
                qualifiers.append(self.advance().text)
            elif tok.kind is TokenKind.KEYWORD and tok.text in TYPE_KEYWORDS:
                if tok.text in ("struct", "union", "enum"):
                    specifiers.append(self.advance().text)
                    specifiers.append(self.expect_ident().text)
                else:
                    specifiers.append(self.advance().text)
            elif (
                tok.kind is TokenKind.IDENT
                and tok.text in self.typedefs
                and not specifiers
            ):
                specifiers.append(self.advance().text)
            else:
                break
        if not specifiers:
            raise ParseError(f"expected type, found {str(self.tok)!r}", self.tok.location)
        depth = 0
        while self.tok.is_punct("*"):
            self.advance()
            depth += 1
            while self.tok.kind is TokenKind.KEYWORD and self.tok.text in QUALIFIERS:
                self.advance()
        return ast.TypeName(
            specifiers=specifiers, pointer_depth=depth, qualifiers=qualifiers,
            location=loc,
        )

    def _parse_array_dims(self, type_name: ast.TypeName) -> ast.TypeName:
        dims: list[Optional[ast.Expr]] = []
        while self.tok.is_punct("["):
            self.advance()
            if self.tok.is_punct("]"):
                dims.append(None)
            else:
                dims.append(self.parse_expr())
            self.expect_punct("]")
        if dims:
            type_name = ast.TypeName(
                specifiers=list(type_name.specifiers),
                pointer_depth=type_name.pointer_depth,
                array_dims=dims,
                qualifiers=list(type_name.qualifiers),
                location=type_name.location,
            )
        return type_name

    def _parse_typedef(self) -> ast.TypedefDecl:
        loc = self.expect_keyword("typedef").location
        if (self.tok.is_keyword("struct") or self.tok.is_keyword("union")) and (
            self.peek().is_punct("{")
            or (self.peek().kind is TokenKind.IDENT and self.peek(2).is_punct("{"))
        ):
            struct = self._parse_struct_def(consume_semi=False)
            name = self.expect_ident().text
            self.expect_punct(";")
            self.typedefs.add(name)
            spelling = ["union" if struct.is_union else "struct", struct.tag]
            td = ast.TypedefDecl(
                name=name, type_name=ast.TypeName(specifiers=spelling, location=loc),
                location=loc,
            )
            td.struct_def = struct
            return td
        type_name = self.parse_type_name()
        name = self.expect_ident().text
        type_name = self._parse_array_dims(type_name)
        self.expect_punct(";")
        self.typedefs.add(name)
        return ast.TypedefDecl(name=name, type_name=type_name, location=loc)

    def _parse_struct_def(self, consume_semi: bool = True) -> ast.StructDef:
        kw = self.advance()  # struct / union
        is_union = kw.text == "union"
        tag = self.expect_ident().text if self.tok.kind is TokenKind.IDENT else ""
        self.expect_punct("{")
        fields: list[ast.FieldDecl] = []
        while not self.tok.is_punct("}"):
            ftype = self.parse_type_name()
            while True:
                fname = self.expect_ident()
                this_type = self._parse_array_dims(ftype)
                if self.tok.is_punct(":"):  # bitfield width — parse and ignore
                    self.advance()
                    self.parse_conditional()
                fields.append(
                    ast.FieldDecl(name=fname.text, type_name=this_type,
                                  location=fname.location)
                )
                if not self.accept_punct(","):
                    break
            self.expect_punct(";")
        self.expect_punct("}")
        if consume_semi:
            self.expect_punct(";")
        return ast.StructDef(tag=tag, fields_=fields, is_union=is_union,
                             location=kw.location)

    def _parse_enum_def(self) -> ast.EnumDef:
        kw = self.expect_keyword("enum")
        tag = self.expect_ident().text if self.tok.kind is TokenKind.IDENT else ""
        self.expect_punct("{")
        enumerators: list[tuple] = []
        while not self.tok.is_punct("}"):
            name = self.expect_ident().text
            value = None
            if self.accept_punct("="):
                value = self.parse_conditional()
            enumerators.append((name, value))
            if not self.accept_punct(","):
                break
        self.expect_punct("}")
        self.expect_punct(";")
        return ast.EnumDef(tag=tag, enumerators=enumerators, location=kw.location)

    def _parse_function(self, return_type: ast.TypeName, name_tok: Token,
                        storage: Optional[str]):
        self.expect_punct("(")
        params: list[ast.ParamDecl] = []
        if not self.tok.is_punct(")"):
            while True:
                if self.tok.is_keyword("void") and self.peek().is_punct(")"):
                    self.advance()
                    params.append(
                        ast.ParamDecl(
                            name="",
                            type_name=ast.TypeName(specifiers=["void"]),
                            location=self.tok.location,
                        )
                    )
                    break
                ptype = self.parse_type_name()
                pname = ""
                ploc = ptype.location
                if self.tok.kind is TokenKind.IDENT:
                    tok = self.advance()
                    pname, ploc = tok.text, tok.location
                ptype = self._parse_array_dims(ptype)
                params.append(ast.ParamDecl(name=pname, type_name=ptype, location=ploc))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        if self.accept_punct(";"):
            return ast.FunctionDecl(
                name=name_tok.text, return_type=return_type, params=params,
                storage=storage, location=name_tok.location,
            )
        body = self.parse_block()
        return ast.FunctionDef(
            name=name_tok.text, return_type=return_type, params=params,
            body=body, storage=storage, location=name_tok.location,
        )

    def _parse_var_decls(self, type_name: ast.TypeName, first_name: Token,
                         storage: Optional[str], start: Token):
        # ``type_name`` is the first declarator's full type (its ``*``
        # layers were consumed with the specifiers).  Later declarators
        # carry their own ``*`` layers on top of the *specifier* base:
        # ``int *a, b, **c;`` makes a ptr, b int, c ptr-to-ptr.
        base = ast.TypeName(
            specifiers=list(type_name.specifiers),
            pointer_depth=0,
            qualifiers=list(type_name.qualifiers),
            location=type_name.location,
        )
        decls: list[ast.VarDecl] = []
        name_tok = first_name
        current = type_name
        while True:
            this_type = self._parse_array_dims(current)
            init = None
            if self.accept_punct("="):
                init = self._parse_initializer()
            decls.append(
                ast.VarDecl(name=name_tok.text, type_name=this_type, init=init,
                            storage=storage, location=name_tok.location)
            )
            if not self.accept_punct(","):
                break
            extra_depth = 0
            while self.tok.is_punct("*"):
                self.advance()
                extra_depth += 1
            if extra_depth:
                current = ast.TypeName(
                    specifiers=list(base.specifiers),
                    pointer_depth=base.pointer_depth + extra_depth,
                    qualifiers=list(base.qualifiers),
                    location=base.location,
                )
            else:
                current = base
            name_tok = self.expect_ident()
        self.expect_punct(";")
        return decls

    def _parse_initializer(self) -> ast.Expr:
        if self.tok.is_punct("{"):
            loc = self.advance().location
            parts: list[ast.Expr] = []
            while not self.tok.is_punct("}"):
                parts.append(self._parse_initializer())
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            return ast.Comma(parts=parts, location=loc)
        return self.parse_assignment()

    # -- statements --------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self.expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokenKind.EOF:
                if self.tolerant:
                    # Unterminated block: close it at EOF so the function
                    # still reaches the CFG, leaving an opaque marker so
                    # the engine treats the tail conservatively.
                    self.recovered_statements += 1
                    stmts.append(ast.OpaqueStmt(
                        text="", reason="unterminated block",
                        location=open_tok.location))
                    return ast.Block(stmts=stmts, location=open_tok.location)
                raise ParseError("unterminated block", open_tok.location)
            if not self.tolerant:
                stmts.append(self.parse_statement())
                continue
            start = self.pos
            try:
                stmts.append(self.parse_statement())
            except (ParseError, RecursionError) as error:
                stmts.append(self._recover_statement(start, error))
        self.expect_punct("}")
        return ast.Block(stmts=stmts, location=open_tok.location)

    # -- panic-mode recovery (tolerant frontend) ---------------------------

    def _span_text(self, start: int, end: int) -> str:
        return " ".join(str(t) for t in self.tokens[start:end])

    def _recover_statement(self, start: int, error: Exception) -> ast.OpaqueStmt:
        """Resync after a failed statement parse.

        Skips forward to the next ``;`` at brace depth zero (consumed)
        or to the ``}`` closing the enclosing block (left for the block
        loop), tracking nested braces so a broken statement inside a
        compound body does not eat the rest of the function.
        """
        depth = 0
        while self.tok.kind is not TokenKind.EOF:
            if self.tok.is_punct("}") and depth == 0:
                break  # the enclosing block's close brace — leave it
            tok = self.advance()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                break
        if self.pos == start and self.tok.kind is not TokenKind.EOF:
            self.advance()  # guarantee progress
        span = self.tokens[start:self.pos]
        loc = span[0].location if span else self.tok.location
        reason = ("nesting too deep for the parser"
                  if isinstance(error, RecursionError) else str(error))
        self.recovered_statements += 1
        return ast.OpaqueStmt(text=self._span_text(start, self.pos),
                              reason=reason, location=loc)

    def _recover_toplevel(self, start: int, error: Exception) -> tuple[str, str]:
        """Resync after a failed external declaration.

        Skips to the next plausible top-level boundary — past a ``;`` at
        brace depth zero or past the ``}`` closing the region's
        outermost brace — and returns the ``(name, message)`` quarantine
        entry recorded on the translation unit.  The name is the best
        guess at the region's function (first IDENT followed by ``(`` in
        the skipped span), so per-function quarantines from different
        regions stay distinct through fleet-level dedup.
        """
        depth = 0
        while self.tok.kind is not TokenKind.EOF:
            tok = self.advance()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth <= 0:
                    break
            elif tok.is_punct(";") and depth == 0:
                break
        if self.pos == start and self.tok.kind is not TokenKind.EOF:
            self.advance()  # guarantee progress
        span = self.tokens[start:self.pos]
        name = ""
        for i, tok in enumerate(span):
            if (tok.kind is TokenKind.IDENT and i + 1 < len(span)
                    and span[i + 1].is_punct("(")):
                name = tok.text
                break
        if not name:
            loc = span[0].location if span else self.tok.location
            name = f"<top-level@{loc.line}>"
        message = ("nesting too deep for the parser"
                   if isinstance(error, RecursionError) else str(error))
        return name, message

    def parse_statement(self) -> ast.Stmt:
        tok = self.tok
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_punct(";"):
            self.advance()
            return ast.EmptyStmt(location=tok.location)
        if tok.kind is TokenKind.KEYWORD:
            handler = {
                "if": self._parse_if, "while": self._parse_while,
                "do": self._parse_do, "for": self._parse_for,
                "switch": self._parse_switch, "return": self._parse_return,
                "break": self._parse_break, "continue": self._parse_continue,
                "goto": self._parse_goto, "case": self._parse_case,
                "default": self._parse_default,
            }.get(tok.text)
            if handler is not None:
                return handler()
        # Label: IDENT ':' not followed by what could be a ternary tail.
        if (tok.kind is TokenKind.IDENT and self.peek().is_punct(":")
                and tok.text not in self.typedefs):
            self.advance()
            self.advance()
            return ast.Label(name=tok.text, location=tok.location)
        if self._starts_type(tok):
            return self._parse_decl_stmt()
        expr = self.parse_expr()
        self.expect_punct(";")
        return ast.ExprStmt(expr=expr, location=tok.location)

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        start = self.tok
        storage = None
        while self.tok.kind is TokenKind.KEYWORD and self.tok.text in STORAGE:
            if self.tok.text in ("static", "extern"):
                storage = self.tok.text
            self.advance()
        type_name = self.parse_type_name()
        name_tok = self.expect_ident()
        decls = self._parse_var_decls(type_name, name_tok, storage, start)
        return ast.DeclStmt(decls=decls, location=start.location)

    def _parse_if(self) -> ast.If:
        loc = self.expect_keyword("if").location
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_statement()
        otherwise = None
        if self.tok.is_keyword("else"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, location=loc)

    def _parse_while(self) -> ast.While:
        loc = self.expect_keyword("while").location
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body, location=loc)

    def _parse_do(self) -> ast.DoWhile:
        loc = self.expect_keyword("do").location
        body = self.parse_statement()
        self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhile(body=body, cond=cond, location=loc)

    def _parse_for(self) -> ast.For:
        loc = self.expect_keyword("for").location
        self.expect_punct("(")
        init: Optional[ast.Node] = None
        if not self.tok.is_punct(";"):
            if self._starts_type(self.tok):
                init = self._parse_decl_stmt()  # consumes ';'
            else:
                init = self.parse_expr()
                self.expect_punct(";")
        else:
            self.advance()
        cond = None
        if not self.tok.is_punct(";"):
            cond = self.parse_expr()
        self.expect_punct(";")
        step = None
        if not self.tok.is_punct(")"):
            step = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, location=loc)

    def _parse_switch(self) -> ast.Switch:
        loc = self.expect_keyword("switch").location
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_block()
        return ast.Switch(cond=cond, body=body, location=loc)

    def _parse_case(self) -> ast.Case:
        loc = self.expect_keyword("case").location
        value = self.parse_conditional()
        self.expect_punct(":")
        return ast.Case(value=value, location=loc)

    def _parse_default(self) -> ast.Default:
        loc = self.expect_keyword("default").location
        self.expect_punct(":")
        return ast.Default(location=loc)

    def _parse_return(self) -> ast.Return:
        loc = self.expect_keyword("return").location
        value = None
        if not self.tok.is_punct(";"):
            value = self.parse_expr()
        self.expect_punct(";")
        return ast.Return(value=value, location=loc)

    def _parse_break(self) -> ast.Break:
        loc = self.expect_keyword("break").location
        self.expect_punct(";")
        return ast.Break(location=loc)

    def _parse_continue(self) -> ast.Continue:
        loc = self.expect_keyword("continue").location
        self.expect_punct(";")
        return ast.Continue(location=loc)

    def _parse_goto(self) -> ast.Goto:
        loc = self.expect_keyword("goto").location
        label = self.expect_ident().text
        self.expect_punct(";")
        return ast.Goto(label=label, location=loc)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Full expression including the comma operator."""
        first = self.parse_assignment()
        if not self.tok.is_punct(","):
            return first
        parts = [first]
        while self.accept_punct(","):
            parts.append(self.parse_assignment())
        return ast.Comma(parts=parts, location=first.location)

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        if self.tok.kind is TokenKind.PUNCT and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            right = self.parse_assignment()
            return ast.Assign(op=op, target=left, value=right, location=left.location)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.accept_punct("?"):
            then = self.parse_expr()
            self.expect_punct(":")
            otherwise = self.parse_conditional()
            return ast.Ternary(cond=cond, then=then, otherwise=otherwise,
                               location=cond.location)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINOP_LEVELS):
            return self._parse_unary()
        ops = _BINOP_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.tok.kind is TokenKind.PUNCT and self.tok.text in ops:
            op = self.advance().text
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op=op, left=left, right=right, location=left.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self.tok
        if tok.is_keyword("sizeof"):
            self.advance()
            if self.tok.is_punct("(") and self._starts_type(self.peek()):
                self.advance()
                type_name = self.parse_type_name()
                type_name = self._parse_array_dims(type_name)
                self.expect_punct(")")
                return ast.SizeofType(type_name=type_name, location=tok.location)
            operand = self._parse_unary()
            return ast.SizeofExpr(operand=operand, location=tok.location)
        if tok.kind is TokenKind.PUNCT and tok.text in _UNARY_OPS:
            self.advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=tok.text, operand=operand, location=tok.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.tok
            if tok.is_punct("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.tok.is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = ast.Call(func=expr, args=args, location=expr.location)
            elif tok.is_punct("["):
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                expr = ast.Index(base=expr, index=index, location=expr.location)
            elif tok.is_punct(".") or tok.is_punct("->"):
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(base=expr, name=name, arrow=tok.text == "->",
                                  location=tok.location)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self.advance()
                expr = ast.PostfixOp(op=tok.text, operand=expr, location=tok.location)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind is TokenKind.INT_LIT:
            self.advance()
            return ast.IntLit(text=tok.text, location=tok.location)
        if tok.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(text=tok.text, location=tok.location)
        if tok.kind is TokenKind.CHAR_LIT:
            self.advance()
            return ast.CharLit(text=tok.text, location=tok.location)
        if tok.kind is TokenKind.STRING_LIT:
            self.advance()
            text = tok.text
            # Adjacent string literals concatenate.
            while self.tok.kind is TokenKind.STRING_LIT:
                text = text[:-1] + self.advance().text[1:]
            return ast.StringLit(text=text, location=tok.location)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return ast.Ident(name=tok.text, location=tok.location)
        if tok.is_punct("("):
            # Cast or parenthesized expression.
            if self._starts_type(self.peek()):
                self.advance()
                type_name = self.parse_type_name()
                self.expect_punct(")")
                operand = self._parse_unary()
                return ast.Cast(type_name=type_name, operand=operand,
                                location=tok.location)
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if self.tolerant and tok.kind is not TokenKind.EOF:
            # UNKNOWN tokens (and any stray punctuation) become opaque
            # leaves; at EOF we fall through to ParseError so statement
            # recovery can close the enclosing region instead.
            bad = self.advance()
            self.opaque_expressions += 1
            return ast.OpaqueExpr(text=str(bad), location=bad.location)
        raise ParseError(f"unexpected token {str(tok)!r}", tok.location)


def parse(text: str, filename: str = "<input>",
          typedefs: Optional[set[str]] = None,
          mode: Optional[str] = None) -> ast.TranslationUnit:
    """Parse C source text into a :class:`TranslationUnit`.

    ``mode=None`` defers to the process-wide default
    (:func:`default_mode`, normally ``"strict"``).  The returned unit
    carries a ``frontend_stats`` dict with the recovery counters for
    this parse (all zero in strict mode and on clean tolerant parses).
    """
    mode = default_mode() if mode is None else mode
    if mode not in FRONTEND_MODES:
        raise ValueError(f"unknown frontend mode {mode!r}")
    tolerant = mode == "tolerant"
    tokens = Lexer(SourceFile(filename, text), tolerant=tolerant).tokenize()
    parser = Parser(tokens, filename, typedefs=typedefs, mode=mode)
    try:
        unit = parser.parse_translation_unit()
    except RecursionError:
        # Deep nesting is an input problem, not an internal crash:
        # surface it as a ParseError like any other rejected construct.
        raise ParseError("nesting too deep for the parser",
                         tokens[0].location) from None
    unit.frontend_stats = {
        "recovered_statements": parser.recovered_statements,
        "opaque_expressions": parser.opaque_expressions,
        "quarantined_functions": len(unit.quarantined),
    }
    return unit


def parse_expression(text: str, typedefs: Optional[set[str]] = None) -> ast.Expr:
    """Parse a single C expression (used by metal patterns and tests)."""
    tokens = Lexer(SourceFile("<expr>", text)).tokenize()
    parser = Parser(tokens, "<expr>", typedefs=typedefs)
    try:
        expr = parser.parse_expr()
    except RecursionError:
        raise ParseError("nesting too deep for the parser",
                         tokens[0].location) from None
    if parser.tok.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {str(parser.tok)!r}", parser.tok.location)
    return expr


def parse_statement(text: str, typedefs: Optional[set[str]] = None) -> ast.Stmt:
    """Parse a single C statement (used by metal patterns and tests)."""
    tokens = Lexer(SourceFile("<stmt>", text)).tokenize()
    parser = Parser(tokens, "<stmt>", typedefs=typedefs)
    try:
        stmt = parser.parse_statement()
    except RecursionError:
        raise ParseError("nesting too deep for the parser",
                         tokens[0].location) from None
    if parser.tok.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {str(parser.tok)!r}", parser.tok.location)
    return stmt
