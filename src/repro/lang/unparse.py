"""AST -> C source text.

Used in two directions: the FLASH code generator emits specs as ASTs and
unparses them to files, and diagnostics quote offending expressions back
to the user the way xg++ error messages do.
"""

from __future__ import annotations

from . import ast

_INDENT = "    "

# Precedence table for minimal-parenthesis expression printing.
_PREC = {
    ",": 1, "=": 2, "?:": 3, "||": 4, "&&": 5, "|": 6, "^": 7, "&": 8,
    "==": 9, "!=": 9, "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11, "+": 12, "-": 12, "*": 13, "/": 13, "%": 13,
}
_UNARY_PREC = 14
_POSTFIX_PREC = 15


def unparse_type(type_name: ast.TypeName, declarator: str = "") -> str:
    """Render ``type_name`` with an optional declarator name."""
    parts = list(type_name.qualifiers) + list(type_name.specifiers)
    text = " ".join(parts)
    stars = "*" * type_name.pointer_depth
    decl = f"{stars}{declarator}" if (stars or declarator) else ""
    for dim in type_name.array_dims:
        decl += "[]" if dim is None else f"[{unparse_expr(dim)}]"
    return f"{text} {decl}".rstrip()


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    text, prec = _expr_with_prec(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr_with_prec(expr: ast.Expr) -> tuple[str, int]:
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit, ast.StringLit)):
        return expr.text, _POSTFIX_PREC
    if isinstance(expr, ast.Ident):
        return expr.name, _POSTFIX_PREC
    if isinstance(expr, ast.Call):
        func = unparse_expr(expr.func, _POSTFIX_PREC)
        args = ", ".join(unparse_expr(a, 2) for a in expr.args)
        return f"{func}({args})", _POSTFIX_PREC
    if isinstance(expr, ast.Index):
        return (
            f"{unparse_expr(expr.base, _POSTFIX_PREC)}[{unparse_expr(expr.index)}]",
            _POSTFIX_PREC,
        )
    if isinstance(expr, ast.Member):
        sep = "->" if expr.arrow else "."
        return f"{unparse_expr(expr.base, _POSTFIX_PREC)}{sep}{expr.name}", _POSTFIX_PREC
    if isinstance(expr, ast.PostfixOp):
        return f"{unparse_expr(expr.operand, _POSTFIX_PREC)}{expr.op}", _POSTFIX_PREC
    if isinstance(expr, ast.UnaryOp):
        operand = unparse_expr(expr.operand, _UNARY_PREC)
        space = " " if expr.op in ("++", "--") and operand.startswith(expr.op[0]) else ""
        return f"{expr.op}{space}{operand}", _UNARY_PREC
    if isinstance(expr, ast.Cast):
        return f"({unparse_type(expr.type_name)}){unparse_expr(expr.operand, _UNARY_PREC)}", _UNARY_PREC
    if isinstance(expr, ast.SizeofExpr):
        return f"sizeof({unparse_expr(expr.operand)})", _UNARY_PREC
    if isinstance(expr, ast.SizeofType):
        return f"sizeof({unparse_type(expr.type_name)})", _UNARY_PREC
    if isinstance(expr, ast.BinaryOp):
        prec = _PREC[expr.op]
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.Assign):
        target = unparse_expr(expr.target, 3)
        value = unparse_expr(expr.value, 2)
        return f"{target} {expr.op} {value}", 2
    if isinstance(expr, ast.Ternary):
        cond = unparse_expr(expr.cond, 4)
        then = unparse_expr(expr.then)
        otherwise = unparse_expr(expr.otherwise, 3)
        return f"{cond} ? {then} : {otherwise}", 3
    if isinstance(expr, ast.Comma):
        return ", ".join(unparse_expr(p, 2) for p in expr.parts), 1
    if isinstance(expr, ast.OpaqueExpr):
        # Diagnostics quote the raw span the tolerant parser skipped.
        return f"/* opaque: {expr.text} */", _POSTFIX_PREC
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a statement (and its children) as indented C text."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        inner = "".join(unparse_stmt(s, indent + 1) for s in stmt.stmts)
        return f"{pad}{{\n{inner}{pad}}}\n"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{unparse_expr(stmt.expr)};\n"
    if isinstance(stmt, ast.EmptyStmt):
        return f"{pad};\n"
    if isinstance(stmt, ast.DeclStmt):
        lines = []
        for decl in stmt.decls:
            init = f" = {unparse_expr(decl.init)}" if decl.init is not None else ""
            storage = f"{decl.storage} " if decl.storage else ""
            lines.append(f"{pad}{storage}{unparse_type(decl.type_name, decl.name)}{init};\n")
        return "".join(lines)
    if isinstance(stmt, ast.If):
        text = f"{pad}if ({unparse_expr(stmt.cond)})\n"
        text += _nested(stmt.then, indent)
        if stmt.otherwise is not None:
            text += f"{pad}else\n"
            text += _nested(stmt.otherwise, indent)
        return text
    if isinstance(stmt, ast.While):
        return f"{pad}while ({unparse_expr(stmt.cond)})\n" + _nested(stmt.body, indent)
    if isinstance(stmt, ast.DoWhile):
        return (f"{pad}do\n" + _nested(stmt.body, indent)
                + f"{pad}while ({unparse_expr(stmt.cond)});\n")
    if isinstance(stmt, ast.For):
        if isinstance(stmt.init, ast.DeclStmt):
            decl = stmt.init.decls[0]
            init_text = unparse_type(decl.type_name, decl.name)
            if decl.init is not None:
                init_text += f" = {unparse_expr(decl.init)}"
        elif isinstance(stmt.init, ast.Expr):
            init_text = unparse_expr(stmt.init)
        else:
            init_text = ""
        cond_text = unparse_expr(stmt.cond) if stmt.cond is not None else ""
        step_text = unparse_expr(stmt.step) if stmt.step is not None else ""
        return (f"{pad}for ({init_text}; {cond_text}; {step_text})\n"
                + _nested(stmt.body, indent))
    if isinstance(stmt, ast.Switch):
        return f"{pad}switch ({unparse_expr(stmt.cond)})\n" + unparse_stmt(stmt.body, indent)
    if isinstance(stmt, ast.Case):
        return f"{pad}case {unparse_expr(stmt.value)}:\n"
    if isinstance(stmt, ast.Default):
        return f"{pad}default:\n"
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return f"{pad}return;\n"
        return f"{pad}return {unparse_expr(stmt.value)};\n"
    if isinstance(stmt, ast.Break):
        return f"{pad}break;\n"
    if isinstance(stmt, ast.Continue):
        return f"{pad}continue;\n"
    if isinstance(stmt, ast.Goto):
        return f"{pad}goto {stmt.label};\n"
    if isinstance(stmt, ast.Label):
        return f"{_INDENT * max(indent - 1, 0)}{stmt.name}:\n"
    if isinstance(stmt, ast.OpaqueStmt):
        return f"{pad}/* opaque: {stmt.text} */;\n"
    raise TypeError(f"cannot unparse {type(stmt).__name__}")


def _nested(stmt: ast.Stmt, indent: int) -> str:
    if isinstance(stmt, ast.Block):
        return unparse_stmt(stmt, indent)
    return unparse_stmt(stmt, indent + 1)


def unparse_decl(decl: ast.Decl, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(decl, ast.FunctionDef):
        params = ", ".join(
            unparse_type(p.type_name, p.name) for p in decl.params
        ) or "void"
        storage = f"{decl.storage} " if decl.storage else ""
        head = f"{pad}{storage}{unparse_type(decl.return_type)} {decl.name}({params})\n"
        return head + unparse_stmt(decl.body, indent)
    if isinstance(decl, ast.FunctionDecl):
        params = ", ".join(
            unparse_type(p.type_name, p.name) for p in decl.params
        ) or "void"
        storage = f"{decl.storage} " if decl.storage else ""
        return f"{pad}{storage}{unparse_type(decl.return_type)} {decl.name}({params});\n"
    if isinstance(decl, ast.VarDecl):
        init = f" = {unparse_expr(decl.init)}" if decl.init is not None else ""
        storage = f"{decl.storage} " if decl.storage else ""
        return f"{pad}{storage}{unparse_type(decl.type_name, decl.name)}{init};\n"
    if isinstance(decl, ast.StructDef):
        kw = "union" if decl.is_union else "struct"
        fields = "".join(
            f"{pad}{_INDENT}{unparse_type(f.type_name, f.name)};\n" for f in decl.fields_
        )
        return f"{pad}{kw} {decl.tag} {{\n{fields}{pad}}};\n"
    if isinstance(decl, ast.EnumDef):
        items = ",\n".join(
            f"{pad}{_INDENT}{name}" + (f" = {unparse_expr(v)}" if v is not None else "")
            for name, v in decl.enumerators
        )
        return f"{pad}enum {decl.tag} {{\n{items}\n{pad}}};\n"
    if isinstance(decl, ast.TypedefDecl):
        return f"{pad}typedef {unparse_type(decl.type_name, decl.name)};\n"
    raise TypeError(f"cannot unparse {type(decl).__name__}")


def unparse_unit(unit: ast.TranslationUnit) -> str:
    """Render a whole translation unit."""
    return "\n".join(unparse_decl(d) for d in unit.decls)
