"""Per-process parse/annotate memo keyed by source content hash.

A run of the checker fleet analyses the same translation unit many
times: the serial driver runs every checker over one shared
:class:`repro.project.Program`, but the parallel driver
(:mod:`repro.mc.parallel`) hands each (checker, unit) work item to a
worker that builds its own ``Program`` — without a memo, a process
hosting eight checkers over the same file would parse and annotate it
eight times.  The memo keys on ``(filename, sha256(text), typedefs,
prelude)`` so shared FLASH headers and common-code units are parsed
once per process, and an *edited* file (different content hash) never
reuses a stale AST.

Memoized units are shared, mutable ASTs: callers that rewrite trees
(:mod:`repro.mc.transform`) must parse privately via
:func:`repro.lang.parser.parse` instead.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..obs.metrics import current_metrics
from ..obs.trace import current_tracer
from .parser import default_mode, parse
from .sema import SemaInfo, annotate
from . import ast


def source_fingerprint(text: str) -> str:
    """Stable content hash of one unit's source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_MEMO: dict[tuple, tuple] = {}
_STATS = {"hits": 0, "misses": 0}


def parse_annotated(
    filename: str,
    text: str,
    *,
    typedefs: Optional[set[str]] = None,
    prelude: Optional[ast.TranslationUnit] = None,
    prelude_key: str = "",
) -> tuple[ast.TranslationUnit, SemaInfo]:
    """Parse and annotate ``text``, memoized on its content hash.

    ``prelude_key`` must name the prelude fed to sema (e.g. the FLASH
    header's filename) so units parsed with different preludes never
    share an entry; the prelude object itself is not hashed.
    """
    mode = default_mode()
    key = (
        filename,
        source_fingerprint(text),
        frozenset(typedefs) if typedefs else frozenset(),
        prelude_key,
        # Frontend mode changes what a given byte string parses to, so
        # strict and tolerant ASTs never share an entry.
        mode,
    )
    metrics = current_metrics()
    cached = _MEMO.get(key)
    if cached is not None:
        _STATS["hits"] += 1
        if metrics is not None:
            metrics.inc("parse.memo_hits")
        return cached
    _STATS["misses"] += 1
    if metrics is not None:
        metrics.inc("parse.units")
    tracer = current_tracer()
    with tracer.span("unit", filename) if tracer.enabled else _noop():
        unit = parse(text, filename,
                     typedefs=set(typedefs) if typedefs else None)
        sema = annotate(unit, prelude=prelude)
    if metrics is not None:
        # Degradation observability: how much of this unit the tolerant
        # frontend had to recover or give up on (all zero in strict
        # mode).  Counted once per distinct parse, at memo-miss time.
        stats = getattr(unit, "frontend_stats", None)
        if stats:
            for name in ("recovered_statements", "opaque_expressions",
                         "quarantined_functions"):
                if stats.get(name):
                    metrics.inc(f"frontend.{name}", stats[name])
    _MEMO[key] = (unit, sema)
    return unit, sema


class _noop:
    """Stand-in context manager when tracing is off."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


def clear_memo() -> None:
    """Drop every memoized unit (tests; long-lived embedding processes)."""
    _MEMO.clear()
    _STATS["hits"] = _STATS["misses"] = 0


def memo_stats() -> dict[str, int]:
    """``{"hits": ..., "misses": ...}`` for this process's memo."""
    return dict(_STATS)
