"""Lexically scoped symbol tables.

A :class:`Scope` maps names to :class:`Symbol` entries (variables,
parameters, functions, typedefs, enumerators).  Scopes chain to their
parent, so lookup walks outward exactly like C name resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator, Optional

from . import ctypes
from .source import Location, unknown_location


class SymbolKind(Enum):
    VARIABLE = auto()
    PARAMETER = auto()
    FUNCTION = auto()
    TYPEDEF = auto()
    ENUMERATOR = auto()
    STRUCT_TAG = auto()


@dataclass
class Symbol:
    name: str
    kind: SymbolKind
    ctype: ctypes.CType = ctypes.UNKNOWN
    location: Location = field(default_factory=unknown_location)
    # Enumerator constant value, when known.
    value: Optional[int] = None

    @property
    def is_local(self) -> bool:
        return self.kind in (SymbolKind.VARIABLE, SymbolKind.PARAMETER)


class Scope:
    """One lexical scope.  ``parent=None`` makes this the file scope."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        """Insert a symbol, replacing a same-name symbol in *this* scope."""
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        """Resolve ``name``, walking outward through parent scopes."""
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope._symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        """Resolve ``name`` in this scope only."""
        return self._symbols.get(name)

    def child(self) -> "Scope":
        return Scope(parent=self)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)
