"""Semantic annotation: symbol resolution and expression typing.

:func:`annotate` walks a :class:`TranslationUnit`, builds scoped symbol
tables, resolves typedef/struct/enum references, and stores a resolved
:class:`repro.lang.ctypes.CType` on every expression node's ``ctype``
attribute.  It is deliberately forgiving — unknown identifiers get
``Unknown`` type rather than raising — because checkers must keep running
over code that references symbols defined in headers we never see
(exactly the situation xg++ faced with FLASH macros).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SemanticError
from . import ast, ctypes
from .symtab import Scope, Symbol, SymbolKind


class SemaInfo:
    """Results of semantic annotation over one translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.file_scope = Scope()
        self.structs: dict[str, ctypes.Struct] = {}
        self.typedefs: dict[str, ctypes.CType] = {}
        # Per-function scope containing parameters + all locals (flattened).
        self.function_locals: dict[str, list[Symbol]] = {}

    def struct(self, tag: str) -> Optional[ctypes.Struct]:
        return self.structs.get(tag)


class _Annotator:
    def __init__(self, unit: ast.TranslationUnit, strict: bool = False,
                 prelude: Optional[ast.TranslationUnit] = None):
        self.info = SemaInfo(unit)
        self.strict = strict
        self.scope = self.info.file_scope
        self._current_function: Optional[str] = None
        self.prelude = prelude

    # -- type resolution ---------------------------------------------------

    def resolve_type(self, type_name: Optional[ast.TypeName]) -> ctypes.CType:
        if type_name is None:
            return ctypes.UNKNOWN
        base = self._resolve_base(type_name)
        for _ in range(type_name.pointer_depth):
            base = ctypes.Pointer(base)
        for dim in reversed(type_name.array_dims):
            length = None
            if dim is not None:
                length = self._const_int(dim)
            base = ctypes.Array(base, length)
        return base

    def _resolve_base(self, type_name: ast.TypeName) -> ctypes.CType:
        spec = type_name.specifiers
        if spec and spec[0] in ("struct", "union"):
            tag = spec[1] if len(spec) > 1 else ""
            found = self.info.structs.get(tag)
            if found is not None:
                return found
            return ctypes.Struct(tag=tag, is_union=spec[0] == "union")
        if spec and spec[0] == "enum":
            return ctypes.INT
        builtin = ctypes.lookup_base_type(" ".join(spec))
        if builtin is not None:
            return builtin
        if len(spec) == 1 and spec[0] in self.info.typedefs:
            return self.info.typedefs[spec[0]]
        if self.strict:
            raise SemanticError(f"unknown type {' '.join(spec)!r}", type_name.location)
        return ctypes.UNKNOWN

    def _const_int(self, expr: ast.Expr) -> Optional[int]:
        """Best-effort constant folding for array dimensions."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            sym = self.scope.lookup(expr.name)
            if sym is not None and sym.kind is SymbolKind.ENUMERATOR:
                return sym.value
        if isinstance(expr, ast.BinaryOp):
            left = self._const_int(expr.left)
            right = self._const_int(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": lambda: left + right, "-": lambda: left - right,
                    "*": lambda: left * right, "/": lambda: left // right,
                    "%": lambda: left % right, "<<": lambda: left << right,
                    ">>": lambda: left >> right, "|": lambda: left | right,
                    "&": lambda: left & right, "^": lambda: left ^ right,
                }[expr.op]()
            except (KeyError, ZeroDivisionError):
                return None
        return None

    # -- declaration processing ----------------------------------------------

    def run(self) -> SemaInfo:
        if self.prelude is not None:
            for decl in self.prelude.decls:
                self._declare(decl)
        for decl in self.info.unit.decls:
            self._declare(decl)
        return self.info

    def _declare(self, decl: ast.Decl) -> None:
        if isinstance(decl, ast.StructDef):
            self._declare_struct(decl)
        elif isinstance(decl, ast.EnumDef):
            self._declare_enum(decl)
        elif isinstance(decl, ast.TypedefDecl):
            nested = getattr(decl, "struct_def", None)
            if nested is not None:
                self._declare_struct(nested)
            self.info.typedefs[decl.name] = self.resolve_type(decl.type_name)
            self.scope.define(Symbol(decl.name, SymbolKind.TYPEDEF,
                                     self.info.typedefs[decl.name], decl.location))
        elif isinstance(decl, ast.VarDecl):
            ctype = self.resolve_type(decl.type_name)
            self.scope.define(Symbol(decl.name, SymbolKind.VARIABLE, ctype,
                                     decl.location))
            if decl.init is not None:
                self._annotate_expr(decl.init)
        elif isinstance(decl, ast.FunctionDecl):
            self._declare_function_symbol(decl)
        elif isinstance(decl, ast.FunctionDef):
            self._declare_function_symbol(decl)
            self._annotate_function(decl)

    def _declare_struct(self, decl: ast.StructDef) -> None:
        members = tuple(
            (f.name, self.resolve_type(f.type_name)) for f in decl.fields_
        )
        struct = ctypes.Struct(tag=decl.tag, members=members, is_union=decl.is_union)
        if decl.tag:
            self.info.structs[decl.tag] = struct

    def _declare_enum(self, decl: ast.EnumDef) -> None:
        next_value = 0
        for name, value_expr in decl.enumerators:
            if value_expr is not None:
                folded = self._const_int(value_expr)
                if folded is not None:
                    next_value = folded
            self.scope.define(Symbol(name, SymbolKind.ENUMERATOR, ctypes.INT,
                                     decl.location, value=next_value))
            next_value += 1

    def _declare_function_symbol(self, decl) -> None:
        ftype = ctypes.Function(
            return_type=self.resolve_type(decl.return_type),
            param_types=tuple(self.resolve_type(p.type_name) for p in decl.params),
        )
        self.scope.define(Symbol(decl.name, SymbolKind.FUNCTION, ftype,
                                 decl.location))

    def _annotate_function(self, func: ast.FunctionDef) -> None:
        outer = self.scope
        self.scope = outer.child()
        self._current_function = func.name
        self.info.function_locals[func.name] = []
        for param in func.params:
            if not param.name:
                continue
            sym = Symbol(param.name, SymbolKind.PARAMETER,
                         self.resolve_type(param.type_name), param.location)
            self.scope.define(sym)
            self.info.function_locals[func.name].append(sym)
        self._annotate_stmt(func.body)
        self._current_function = None
        self.scope = outer

    # -- statement / expression annotation -------------------------------------

    def _annotate_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            outer = self.scope
            self.scope = outer.child()
            for child in stmt.stmts:
                self._annotate_stmt(child)
            self.scope = outer
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                ctype = self.resolve_type(decl.type_name)
                sym = Symbol(decl.name, SymbolKind.VARIABLE, ctype, decl.location)
                self.scope.define(sym)
                if self._current_function is not None:
                    self.info.function_locals[self._current_function].append(sym)
                if decl.init is not None:
                    self._annotate_expr(decl.init)
        elif isinstance(stmt, ast.ExprStmt):
            self._annotate_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._annotate_expr(stmt.cond)
            self._annotate_stmt(stmt.then)
            self._annotate_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._annotate_expr(stmt.cond)
            self._annotate_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._annotate_stmt(stmt.body)
            self._annotate_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            outer = self.scope
            self.scope = outer.child()
            if isinstance(stmt.init, ast.DeclStmt):
                self._annotate_stmt(stmt.init)
            elif isinstance(stmt.init, ast.Expr):
                self._annotate_expr(stmt.init)
            if stmt.cond is not None:
                self._annotate_expr(stmt.cond)
            if stmt.step is not None:
                self._annotate_expr(stmt.step)
            self._annotate_stmt(stmt.body)
            self.scope = outer
        elif isinstance(stmt, ast.Switch):
            self._annotate_expr(stmt.cond)
            self._annotate_stmt(stmt.body)
        elif isinstance(stmt, ast.Case):
            self._annotate_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._annotate_expr(stmt.value)
        # Break/Continue/Goto/Label/Default/Empty have nothing to annotate.
        # OpaqueStmt (tolerant frontend) deliberately falls through too:
        # its raw token span has no symbols to resolve.

    def _annotate_expr(self, expr: Optional[ast.Expr]) -> ctypes.CType:
        if expr is None:
            return ctypes.UNKNOWN
        ctype = self._compute_type(expr)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr) -> ctypes.CType:
        if isinstance(expr, ast.IntLit):
            return ctypes.INT
        if isinstance(expr, ast.FloatLit):
            return ctypes.FLOAT if expr.text[-1] in "fF" else ctypes.DOUBLE
        if isinstance(expr, ast.CharLit):
            return ctypes.CHAR
        if isinstance(expr, ast.StringLit):
            return ctypes.Pointer(ctypes.CHAR)
        if isinstance(expr, ast.Ident):
            sym = self.scope.lookup(expr.name)
            return sym.ctype if sym is not None else ctypes.UNKNOWN
        if isinstance(expr, ast.Call):
            func_type = self._annotate_expr(expr.func)
            for arg in expr.args:
                self._annotate_expr(arg)
            if isinstance(func_type, ctypes.Function):
                return func_type.return_type
            return ctypes.UNKNOWN
        if isinstance(expr, ast.BinaryOp):
            left = self._annotate_expr(expr.left)
            right = self._annotate_expr(expr.right)
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return ctypes.INT
            return self._usual_arithmetic(left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._annotate_expr(expr.operand)
            if expr.op == "&":
                return ctypes.Pointer(operand)
            if expr.op == "*":
                if isinstance(operand, ctypes.Pointer):
                    return operand.pointee
                if isinstance(operand, ctypes.Array):
                    return operand.element
                return ctypes.UNKNOWN
            if expr.op == "!":
                return ctypes.INT
            return operand
        if isinstance(expr, ast.PostfixOp):
            return self._annotate_expr(expr.operand)
        if isinstance(expr, ast.Assign):
            target = self._annotate_expr(expr.target)
            self._annotate_expr(expr.value)
            return target
        if isinstance(expr, ast.Ternary):
            self._annotate_expr(expr.cond)
            then = self._annotate_expr(expr.then)
            otherwise = self._annotate_expr(expr.otherwise)
            return self._usual_arithmetic(then, otherwise)
        if isinstance(expr, ast.Member):
            base = self._annotate_expr(expr.base)
            if expr.arrow and isinstance(base, ctypes.Pointer):
                base = base.pointee
            if isinstance(base, ctypes.Struct):
                member = base.member(expr.name)
                if member is not None:
                    return member
            return ctypes.UNKNOWN
        if isinstance(expr, ast.Index):
            base = self._annotate_expr(expr.base)
            self._annotate_expr(expr.index)
            if isinstance(base, ctypes.Array):
                return base.element
            if isinstance(base, ctypes.Pointer):
                return base.pointee
            return ctypes.UNKNOWN
        if isinstance(expr, ast.Cast):
            self._annotate_expr(expr.operand)
            return self.resolve_type(expr.type_name)
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            if isinstance(expr, ast.SizeofExpr):
                self._annotate_expr(expr.operand)
            return ctypes.UNSIGNED
        if isinstance(expr, ast.Comma):
            last = ctypes.UNKNOWN
            for part in expr.parts:
                last = self._annotate_expr(part)
            return last
        # OpaqueExpr (tolerant frontend) and anything else: unknown type.
        return ctypes.UNKNOWN

    @staticmethod
    def _usual_arithmetic(left: ctypes.CType, right: ctypes.CType) -> ctypes.CType:
        if left.is_floating or right.is_floating:
            for candidate in (left, right):
                if isinstance(candidate, ctypes.Floating) and candidate.bits == 64:
                    return candidate
            return left if left.is_floating else right
        if isinstance(left, (ctypes.Pointer, ctypes.Array)):
            return left
        if isinstance(right, (ctypes.Pointer, ctypes.Array)):
            return right
        if isinstance(left, ctypes.Unknown):
            return right
        if isinstance(right, ctypes.Unknown):
            return left
        return left


def annotate(unit: ast.TranslationUnit, strict: bool = False,
             prelude: Optional[ast.TranslationUnit] = None) -> SemaInfo:
    """Annotate every expression in ``unit`` with its resolved type.

    ``prelude`` is an optional already-parsed header whose declarations
    are entered into scope first (used for ``flash-includes.h`` so
    protocol files keep their own line numbers).
    """
    return _Annotator(unit, strict=strict, prelude=prelude).run()
