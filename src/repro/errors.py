"""Exception hierarchy for the repro package.

Every error raised by the compiler substrate, the metal language, the
analysis engine, or the FLASH simulator derives from :class:`ReproError`,
so callers can catch one type at the top level.  Errors that point at a
place in source code carry a :class:`repro.lang.source.Location`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceError(ReproError):
    """An error tied to a location in some source text.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    location:
        Optional :class:`repro.lang.source.Location` identifying where in
        the source the problem was found.
    """

    def __init__(self, message: str, location=None):
        self.message = message
        self.location = location
        super().__init__(self._render())

    def _render(self) -> str:
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class LexError(SourceError):
    """The tokenizer encountered a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser encountered a token sequence it cannot parse."""


class SemanticError(SourceError):
    """Type checking or symbol resolution failed."""


class CfgError(ReproError):
    """Control-flow-graph construction failed (e.g. goto to missing label)."""


class MetalError(SourceError):
    """A metal checker program is malformed."""


class PatternError(MetalError):
    """A metal pattern could not be compiled or matched."""


class EngineError(ReproError):
    """The path-sensitive analysis engine was misused."""


class CodegenError(ReproError):
    """The FLASH protocol code generator was given an inconsistent spec."""


class SimulationError(ReproError):
    """The FLASH machine simulator detected an unrecoverable condition."""


class ProtocolDeadlock(SimulationError):
    """The simulated machine deadlocked (the failure mode the paper's bugs cause)."""


class LaneOverflowError(ProtocolDeadlock):
    """A send overran its lane's bounded output queue (§7).

    Subclasses :class:`ProtocolDeadlock` because on the real machine an
    overrun drops a message and eventually wedges the protocol; the
    simulator records it per event so one overrun does not end the run.
    """

    def __init__(self, message: str, node: int = -1, lane: int = -1):
        super().__init__(message)
        self.node = node
        self.lane = lane


class BufferAccounting(SimulationError):
    """A data-buffer refcount rule was violated at runtime (double free, leak, use-after-free)."""


class DoubleFreeError(BufferAccounting):
    """``free()`` on a buffer whose reference count is already zero."""


class RefcountError(BufferAccounting):
    """A reference count went negative or was bumped on a dead buffer."""


class InterpError(SimulationError):
    """The AST interpreter hit an unsupported construct or a runtime fault."""


class InjectedFault(SimulationError):
    """A fault-plan rule deliberately interrupted the simulation.

    ``kind`` is ``"crash"`` (the running handler died) or
    ``"dropped_message"`` (an incoming message found no buffer and was
    NAKed); the machine loop records each kind separately.
    """

    def __init__(self, message: str, kind: str = "crash"):
        super().__init__(message)
        self.kind = kind


class FaultPlanError(ReproError):
    """A fault plan is malformed (unknown site, bad trigger, bad JSON)."""


class SourceReadError(ReproError):
    """A translation unit named on the command line cannot be read.

    Carries the failing ``path`` so callers can turn the failure into a
    per-item diagnostic instead of a stack trace (a file deleted between
    work-item dispatch and worker execution must not kill the worker).
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


class WorkerFailure(ReproError):
    """A fleet worker reported an unexpected exception for a work item.

    Deterministic failures (parse errors, checker crashes without
    ``--keep-going``) are not retried — retrying would only reproduce
    them — so the supervisor re-raises them in the parent as this type.
    """


class BudgetExhausted(EngineError):
    """An analysis budget (steps, paths, or wall time) ran out."""
