"""repro — a reproduction of "Using Meta-level Compilation to Check FLASH
Protocol Code" (Chou, Chelf, Engler, Heinrich; ASPLOS 2000).

Layers (see DESIGN.md for the full inventory):

- :mod:`repro.lang` — C-subset frontend (lexer, parser, types, sema);
- :mod:`repro.cfg` — control-flow graphs, path statistics, call graphs;
- :mod:`repro.metal` — the metal checker language (patterns + state
  machines + a parser that runs the paper's Figures 2 and 3 verbatim);
- :mod:`repro.mc` — the path-sensitive analysis engine (the xg++ analog);
- :mod:`repro.checkers` — the paper's nine checkers (§4-§9);
- :mod:`repro.flash` — the system under test: vocabulary, a deterministic
  protocol generator matching the paper's tables, and a FlashLite-style
  simulator;
- :mod:`repro.bench` — regenerates Tables 1-7 paper-vs-measured.

Quickstart::

    from repro import parse_metal, check_source

    sm = parse_metal(open("checker.metal").read())
    reports = check_source(sm, open("protocol.c").read())
"""

from .lang import annotate, parse
from .metal import MatchContext, Report, ReportSink, StateMachine, parse_metal
from .mc import check_function, check_unit, format_reports
from .project import HandlerInfo, Program, ProtocolInfo, program_from_source

__version__ = "1.0.0"


def check_source(sm, source: str, filename: str = "<input>"):
    """Run a state machine over C source text; returns the reports."""
    unit = parse(source, filename)
    annotate(unit)
    return check_unit(sm, unit).reports


__all__ = [
    "annotate", "parse", "parse_metal", "check_source",
    "MatchContext", "Report", "ReportSink", "StateMachine",
    "check_function", "check_unit", "format_reports",
    "HandlerInfo", "Program", "ProtocolInfo", "program_from_source",
    "__version__",
]
