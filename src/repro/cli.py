"""``mc-check`` — command-line front end.

Subcommands:

``mc-check check FILE...``
    Run the FLASH checkers (all, or ``--checker name`` repeated) over C
    source files and print diagnostics.

``mc-check metal CHECKER.metal FILE...``
    Compile a textual metal program and run it over C source files —
    the xg++ usage model.

``mc-check generate PROTOCOL [-o DIR]``
    Emit one generated protocol's sources (and its ground-truth
    manifest) to a directory.

``mc-check tables``
    Regenerate every table of the paper and print paper-vs-measured.

``mc-check list``
    List registered checkers with their Table 7 metadata.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .checkers import all_checkers, checker_names, get_checker
from .lang import annotate, parse
from .mc import check_unit, format_reports
from .metal import parse_metal
from .project import Program


def _load_program(paths: list[str], spec_path: str | None = None) -> Program:
    info = None
    if spec_path is not None:
        from .flash.spec import parse_spec
        info = parse_spec(Path(spec_path).read_text(), spec_path)
    files = {}
    for path in paths:
        files[path] = Path(path).read_text()
    return Program(files, info=info)


def cmd_check(args) -> int:
    program = _load_program(args.files, getattr(args, "spec", None))
    names = args.checker or None
    failures = 0
    checkers = [get_checker(n) for n in names] if names else all_checkers()
    for checker in checkers:
        result = checker.check(program)
        if result.reports:
            print(format_reports(result.reports,
                                 heading=f"checker: {checker.name}"))
            print()
            failures += len(result.errors)
    if failures == 0:
        print("no errors found")
    return 1 if failures else 0


def cmd_metal(args) -> int:
    sm = parse_metal(Path(args.checker).read_text(), filename=args.checker)
    total = 0
    for path in args.files:
        unit = parse(Path(path).read_text(), path)
        annotate(unit)
        sink = check_unit(sm, unit)
        for report in sink.reports:
            print(report)
        total += len(sink)
    print(f"{total} diagnostic(s) from sm {sm.name}")
    return 1 if total else 0


def cmd_generate(args) -> int:
    from .flash.codegen import generate_protocol
    from .flash.spec import dump_spec
    gp = generate_protocol(args.protocol)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for name, text in gp.files.items():
        (out / name).write_text(text)
    (out / f"{gp.name}.spec").write_text(dump_spec(gp.info))
    manifest = out / f"{gp.name}.manifest.tsv"
    with manifest.open("w") as fh:
        fh.write("checker\tlabel\tfile\tline\tnote\n")
        for site in gp.manifest:
            fh.write(f"{site.checker}\t{site.label}\t{site.file}\t"
                     f"{site.line}\t{site.note}\n")
    print(f"wrote {len(gp.files)} files ({gp.loc()} LOC) and "
          f"{manifest.name} to {out}")
    return 0


def cmd_transform(args) -> int:
    from .lang.unparse import unparse_unit
    from .mc.transform import RedundantWaitEliminator
    eliminator = RedundantWaitEliminator()
    total = 0
    for path in args.files:
        unit = parse(Path(path).read_text(), path)
        annotate(unit)
        removed_here = 0
        for result in eliminator.transform_unit(unit):
            for line in result.removed_lines:
                print(f"{path}:{line}: removed redundant WAIT_FOR_DB_FULL")
            removed_here += len(result.removed)
        total += removed_here
        if removed_here and args.write:
            Path(path).write_text(unparse_unit(unit))
            print(f"rewrote {path}")
        elif removed_here:
            print(unparse_unit(unit), end="")
    print(f"{total} redundant synchronization(s) removed")
    return 0


def cmd_tables(args) -> int:
    from .bench import Experiment, render_all
    experiment = Experiment()
    print(render_all(experiment.all_tables()))
    return 0


def cmd_paths(args) -> int:
    """Table-1-style size/path statistics for arbitrary C files."""
    from .cfg import build_cfg, path_stats
    program = _load_program(args.files)
    print(f"{'function':32s} {'paths':>7s} {'avg':>7s} {'max':>6s}")
    total_paths = 0
    total_len = 0
    longest = 0
    for function in program.functions():
        stats = path_stats(build_cfg(function))
        total_paths += stats.path_count
        total_len += stats.total_length
        longest = max(longest, stats.max_length)
        print(f"{function.name:32s} {stats.path_count:7d} "
              f"{stats.average_length:7.1f} {stats.max_length:6d}")
    average = total_len / total_paths if total_paths else 0.0
    print(f"{'TOTAL':32s} {total_paths:7d} {average:7.1f} {longest:6d}")
    print(f"{program.loc()} non-blank lines in {len(args.files)} file(s)")
    return 0


def cmd_list(args) -> int:
    print(f"{'checker':16s} {'metal LOC':>9s}")
    for checker in all_checkers():
        print(f"{checker.name:16s} {checker.metal_loc:9d}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mc-check",
        description="Meta-level compilation checkers for FLASH protocol "
                    "code (ASPLOS 2000 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="run FLASH checkers over C files")
    p_check.add_argument("files", nargs="+")
    p_check.add_argument("--checker", action="append",
                         choices=checker_names(),
                         help="run only this checker (repeatable)")
    p_check.add_argument("--spec",
                         help="protocol specification file (handler table, "
                              "lane allowances, buffer routine tables)")
    p_check.set_defaults(func=cmd_check)

    p_metal = sub.add_parser("metal", help="run a textual metal checker")
    p_metal.add_argument("checker", help="path to a .metal file")
    p_metal.add_argument("files", nargs="+")
    p_metal.set_defaults(func=cmd_metal)

    p_gen = sub.add_parser("generate", help="emit a generated protocol")
    p_gen.add_argument("protocol",
                       choices=["bitvector", "dyn_ptr", "sci", "coma",
                                "rac", "common"])
    p_gen.add_argument("-o", "--output", default="generated")
    p_gen.set_defaults(func=cmd_generate)

    p_transform = sub.add_parser(
        "transform", help="remove redundant WAIT_FOR_DB_FULL calls")
    p_transform.add_argument("files", nargs="+")
    p_transform.add_argument("--write", action="store_true",
                             help="rewrite files in place (default: print)")
    p_transform.set_defaults(func=cmd_transform)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.set_defaults(func=cmd_tables)

    p_paths = sub.add_parser(
        "paths", help="per-function path statistics (Table 1 style)")
    p_paths.add_argument("files", nargs="+")
    p_paths.set_defaults(func=cmd_paths)

    p_list = sub.add_parser("list", help="list registered checkers")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piped into head/less that exited early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
