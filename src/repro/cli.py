"""``mc-check`` — command-line front end.

Subcommands:

``mc-check check FILE...``
    Run the FLASH checkers (all, or ``--checker name`` repeated) over C
    source files and print diagnostics.

``mc-check metal CHECKER.metal FILE...``
    Compile a textual metal program and run it over C source files —
    the xg++ usage model.

``mc-check generate PROTOCOL [-o DIR]``
    Emit one generated protocol's sources (and its ground-truth
    manifest) to a directory.

``mc-check tables``
    Regenerate every table of the paper and print paper-vs-measured.

``mc-check simulate FILE... --dispatch OP=HANDLER``
    Run protocol handlers in the FlashLite-lite simulator, optionally
    under a deterministic fault plan (``--fault-plan plan.json``).
    Typed protocol errors (``--strict`` violations, pool-invariant
    breaches) become structured ``failure:`` records with salvaged
    counters and exit 1; interpreter/plan errors exit 2 — never a raw
    traceback.

``mc-check campaign FILE... [--spec SPEC | --dispatch OP=HANDLER]``
    Fleet-scale simulation campaign: shard deterministic (seed,
    workload, fault-plan) runs across the worker pool, shrink every
    crash to a minimal repro, and cross-tabulate dynamic violations
    against the static checkers' reports — per-report verdicts
    ``confirmed``/``unmanifested`` plus ``checker gap`` rows for
    dynamic violations nothing static predicted (docs/campaign.md).

``mc-check list``
    List registered checkers with their Table 7 metadata.

``mc-check stats METRICS.json``
    Render a ``--metrics-out`` document as a human-readable table.

``mc-check explain REPORT.json ERROR-ID``
    Show the source-line + state-transition path that produced one
    diagnostic of a ``--format json`` report.

``mc-check profile [--trace FILE | RUN-ID]``
    Aggregate a span trace into a deterministic cost tree: per-phase /
    per-checker / per-function time, hotspots, critical path, cache
    attribution (crashed and superseded attempts excluded).

``mc-check history`` / ``mc-check diff RUN-A RUN-B``
    The persistent run ledger (``<cache-dir>/ledger.jsonl``): list
    recorded runs; diff two of them — new/lost/changed report ids,
    counter deltas, wall-time regressions — exiting 1 on drift so CI
    can gate run-over-run.

Stream discipline: diagnostics and reports go to **stdout**; run
chatter (``run: id=...``, resume hints, trace/metrics summaries) goes
to **stderr**, so ``--format json`` output is parseable as-is.

Exit codes (``check``, ``metal``, ``simulate``, ``campaign``): **0**
clean, **1**
bugs/diagnostics found, **2** internal error or quarantined checker —
so CI can tell "the protocol is buggy" from "the tool is" — and
**130** when a run is interrupted (SIGINT/SIGTERM): the partial report
is flushed, and the printed ``run: id=...`` can be fed back as
``--resume RUN-ID`` to finish the run without redoing completed work.
Under ``--frontend tolerant``, unparseable input regions are expected
degradation, not tool failure: their ``phase="input"`` quarantines are
listed in the DEGRADED section but do not force exit 2, so a messy
codebase exits 0/1 (see docs/frontend-tolerance.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from . import __version__
from .checkers import all_checkers, checker_names, get_checker
from .errors import ReproError
from .lang import annotate, parse
from .mc import (
    ResultCache,
    RunJournal,
    StopFlag,
    SupervisorPolicy,
    check_files,
    default_cache_dir,
    default_runs_dir,
    format_quarantines,
    format_reports,
    graceful_shutdown,
    metal_files,
    resolve_jobs,
)
from .project import Program, read_sources

#: Exit statuses: clean / bugs found / the tool itself misbehaved /
#: interrupted by SIGINT/SIGTERM (128 + SIGINT, the shell convention).
EXIT_CLEAN = 0
EXIT_BUGS = 1
EXIT_INTERNAL = 2
EXIT_INTERRUPTED = 130


def _load_program(paths: list[str], spec_path: str | None = None) -> Program:
    info = None
    if spec_path is not None:
        from .flash.spec import parse_spec
        info = parse_spec(Path(spec_path).read_text(), spec_path)
    return Program(read_sources(paths), info=info)


def _cache_from_args(args, budgeted: bool):
    """The run's :class:`ResultCache`, or ``None`` when disabled.

    Budgeted runs bypass the cache: their results depend on the limits
    in force, not just on content, so they are neither read nor stored.
    """
    no_cache = getattr(args, "no_cache", False) or bool(
        os.environ.get("MC_CHECK_NO_CACHE"))
    if no_cache or budgeted:
        return None
    cache_dir = getattr(args, "cache_dir", None)
    return ResultCache(Path(cache_dir) if cache_dir else default_cache_dir())


def _policy_from_args(args, stop_flag: StopFlag) -> SupervisorPolicy:
    """Supervision policy for check/metal from their shared flags."""
    fault_plan = None
    plan_path = getattr(args, "fault_plan", None)
    if plan_path:
        from .faults import load_fault_plan
        fault_plan = load_fault_plan(plan_path)
    policy = SupervisorPolicy(stop_flag=stop_flag, fault_plan=fault_plan)
    item_timeout = getattr(args, "item_timeout", None)
    if item_timeout is not None:
        policy.item_timeout = item_timeout
    max_retries = getattr(args, "max_retries", None)
    if max_retries is not None:
        policy.max_retries = max_retries
    return policy


def _journal_config(args) -> dict:
    """The analysis settings recorded in (and checked against) a run
    journal's header: resuming under a different engine, feasibility,
    or frontend would mix payloads from two configurations."""
    return {
        "engine": getattr(args, "engine", "summary"),
        "feasibility": getattr(args, "feasibility", "on"),
        "frontend": getattr(args, "frontend", "strict"),
    }


def _journal_from_args(args, config: dict | None = None):
    """The run's journal: resumed from ``--resume``, else freshly
    created under ``<cache-dir>/runs``.  ``None`` (the run is simply
    not resumable) when the directory is unwritable or ``--no-cache``
    asked for no disk writes; an explicit ``--resume`` always wins.

    ``config`` overrides the header settings recorded in (and checked
    on resume against) the journal — campaign runs record the campaign
    fingerprint instead of the analysis-engine settings."""
    runs_dir = default_runs_dir(getattr(args, "cache_dir", None))
    if config is None:
        config = _journal_config(args)
    resume = getattr(args, "resume", None)
    if resume:
        return RunJournal.resume(runs_dir, resume, config)
    no_cache = getattr(args, "no_cache", False) or bool(
        os.environ.get("MC_CHECK_NO_CACHE"))
    if no_cache:
        return None
    return RunJournal.create(runs_dir, config=config)


def _interrupted(run, journal, json_mode: bool = False) -> int:
    """Footer + exit status for a gracefully interrupted run.

    The resume hint is operator chatter and goes to stderr (stdout must
    stay parseable); the INTERRUPTED marker stays in the text report but
    moves to stderr under ``--format json``.
    """
    reason = run.supervision.stop_reason if run.supervision else ""
    print(f"INTERRUPTED: {reason or 'stop requested'} — partial results above",
          file=sys.stderr if json_mode else sys.stdout)
    if journal is not None and not journal.disabled:
        print(f"resume with: --resume {journal.run_id}", file=sys.stderr)
    return EXIT_INTERRUPTED


def _observation_from_args(args, metrics: bool = True):
    """An :class:`repro.obs.Observation` when ``--trace``,
    ``--metrics-out``, or ``--progress`` asked for one, else ``None``
    (no observability code runs at all).

    ``metrics=False`` leaves ``--metrics-out`` to the caller (campaign
    derives its metrics from the finished cross-tab instead)."""
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None) if metrics else None
    want_progress = getattr(args, "progress", False)
    if not trace and not metrics_out and not want_progress:
        return None
    from .obs import Observation
    progress = None
    if want_progress:
        from .obs.progress import ProgressReporter
        progress = ProgressReporter()
    return Observation(trace_path=trace, metrics_path=metrics_out,
                       progress=progress)


def _finalize_observation(observation, run) -> None:
    """Merge the trace, write metrics, and summarise on stderr."""
    if observation is None:
        return
    out = observation.finalize(run)
    stats = out.get("trace")
    if stats is not None:
        line = (f"trace: {stats['spans']} span(s), "
                f"{stats['items_covered']} item(s) -> "
                f"{observation.trace_path}")
        if stats.get("orphan_spans"):
            line += f", {stats['orphan_spans']} orphan"
        if stats.get("superseded_spans"):
            line += f", {stats['superseded_spans']} superseded"
        print(line, file=sys.stderr)
    if observation.metrics_path is not None:
        print(f"metrics: wrote {observation.metrics_path}", file=sys.stderr)


def _ledger_path_from_args(args):
    from .obs.ledger import ledger_path
    cache_dir = getattr(args, "cache_dir", None)
    return ledger_path(Path(cache_dir) if cache_dir else None)


def _ledger_counters(observation, run) -> dict:
    """The counter snapshot a ledger record carries.

    With observability on, the run's own registry (post-finalize) is
    authoritative; otherwise count reports/cache/supervision into a
    scratch registry — same code path, so ledger counters mean the same
    thing either way.  Never feeds anything back into the run."""
    if observation is not None:
        return dict(observation.metrics.counters)
    from .obs import Observation
    scratch = Observation()
    scratch._count_reports(run)
    scratch._count_run(run)
    return dict(scratch.metrics.counters)


def _append_ledger(args, *, command: str, files, config: dict, run,
                   journal, observation, wall: float, exit_code: int,
                   doc: dict, degraded: bool = False) -> None:
    """Record one finished run in ``<cache-dir>/ledger.jsonl``.

    Pure output: derived entirely from the completed run.  Skipped when
    there is no journal (``--no-cache`` contracts to zero disk writes,
    and without a journal there is no run id to key the record by).
    Append failures are silently absorbed by :class:`RunLedger`.
    """
    if journal is None or journal.run_id is None:
        return
    no_cache = getattr(args, "no_cache", False) or bool(
        os.environ.get("MC_CHECK_NO_CACHE"))
    if no_cache:
        return
    from .obs.ledger import RunLedger, make_record, reports_from_doc
    ledger = RunLedger(_ledger_path_from_args(args))
    trace = getattr(args, "trace", None)
    ledger.append(make_record(
        run_id=journal.run_id, command=command, files=files,
        config=config, wall=wall, exit_code=exit_code,
        reports=reports_from_doc(doc),
        counters=_ledger_counters(observation, run),
        interrupted=getattr(run, "interrupted", False),
        degraded=degraded,
        trace=str(Path(trace).resolve()) if trace else None,
    ))


def _report_doc(run, min_confidence=None) -> dict:
    from .mc import run_to_json
    return run_to_json(run, min_confidence=min_confidence)


def _packs_from_args(args) -> tuple:
    """Discover and load the run's checker packs; returns the resolved
    pack-directory strings shipped to workers.

    Sources, in order: ``--pack-dir`` flags, ``$MC_CHECK_PACK_PATH``,
    and the working directory's ``mc-check.toml`` (``[packs] dirs``).
    Loading in the parent — before any worker forks — means a broken
    pack fails the run up front with a structured ``PackError`` (a
    :class:`ReproError`: ``mc-check: internal error:`` + exit 2), never
    a traceback or a half-loaded fleet.
    """
    from .packs import discover_pack_dirs, load_packs
    dirs = discover_pack_dirs(getattr(args, "pack_dir", None) or ())
    if dirs:
        load_packs(dirs)
    return tuple(str(d) for d in dirs)


def _pack_config_labels() -> list:
    """``name@version`` labels of the loaded packs, for ledger configs."""
    from .packs import loaded_packs
    return sorted(pack.label for pack in loaded_packs())


def _validate_checker_names(names) -> None:
    """``--checker`` validation, after packs have loaded (so pack
    checkers are selectable); unknown names fail structured."""
    known = checker_names()
    for name in names or ():
        if name not in known:
            raise ReproError(
                f"--checker: unknown checker {name!r}; known: "
                + ", ".join(known))


def cmd_check(args) -> int:
    pack_dirs = _packs_from_args(args)
    _validate_checker_names(args.checker)
    names = args.checker or None
    keep_going = getattr(args, "keep_going", False)
    json_mode = getattr(args, "format", "text") == "json"
    feasibility = getattr(args, "feasibility", "on") == "on"
    frontend = getattr(args, "frontend", "strict")
    engine = getattr(args, "engine", "summary")
    min_confidence = getattr(args, "min_confidence", None)
    jobs = resolve_jobs(args.jobs)
    budget_seconds = getattr(args, "budget_seconds", None)
    cache = _cache_from_args(args, budgeted=budget_seconds is not None)
    deadline = (time.time() + budget_seconds
                if budget_seconds is not None else None)
    stop_flag = StopFlag()
    policy = _policy_from_args(args, stop_flag)
    observation = _observation_from_args(args)
    journal = _journal_from_args(args)
    if journal is not None:
        print(f"run: id={journal.run_id}", file=sys.stderr, flush=True)
    wall0 = time.perf_counter()
    try:
        with graceful_shutdown(stop_flag):
            run = check_files(
                args.files, names=names, spec_path=getattr(args, "spec", None),
                jobs=jobs, cache=cache, keep_going=keep_going,
                deadline=deadline, journal=journal, policy=policy,
                observation=observation, feasibility=feasibility,
                frontend=frontend, engine=engine, pack_dirs=pack_dirs,
            )
    finally:
        if journal is not None:
            journal.close()
    wall = time.perf_counter() - wall0
    _finalize_observation(observation, run)
    from .mc import filter_by_confidence, score_run
    scores = score_run(run)
    failures = 0
    quarantines = []
    degraded = False
    notes = []
    for result in run.results.values():
        kept = filter_by_confidence(result.errors, scores, min_confidence)
        failures += len(kept)
        quarantines.extend(result.quarantines)
        degraded = degraded or result.degraded
        notes.extend(result.degradation_notes)
    doc = _report_doc(run, min_confidence=min_confidence)
    if json_mode:
        import json
        print(json.dumps(doc, indent=2))
        print(run.summary_line(), file=sys.stderr)
    else:
        for result in run.results.values():
            reports = filter_by_confidence(result.reports, scores,
                                           min_confidence)
            if reports:
                print(format_reports(reports, scores=scores,
                                     heading=f"checker: {result.checker}"))
                print()
        if quarantines:
            print(format_quarantines(quarantines))
            print()
        if degraded:
            print("DEGRADED: results are partial")
            for note in notes:
                print(f"  - {note}")
        if failures == 0 and not quarantines:
            print("no errors found")
        print(run.summary_line())
    if run.interrupted:
        code = _interrupted(run, journal, json_mode)
    elif _hard_quarantines(quarantines, frontend):
        code = EXIT_INTERNAL
    else:
        code = EXIT_BUGS if failures else EXIT_CLEAN
    _append_ledger(
        args, command="check", files=args.files,
        config={"command": "check", "engine": engine,
                "feasibility": feasibility, "frontend": frontend,
                "jobs": jobs, "checkers": sorted(names or []),
                "keep_going": keep_going,
                "min_confidence": min_confidence,
                "packs": _pack_config_labels()},
        run=run, journal=journal, observation=observation, wall=wall,
        exit_code=code, doc=doc, degraded=degraded)
    return code


def _hard_quarantines(quarantines, frontend: str) -> list:
    """Quarantines that make the run a tool failure (exit 2).

    In tolerant mode, ``phase="input"`` quarantines are the *expected*
    outcome for unparseable regions — degradation, not malfunction —
    so they report in the DEGRADED section without failing the run.
    Strict mode keeps every quarantine hard."""
    if frontend != "tolerant":
        return list(quarantines)
    return [q for q in quarantines if getattr(q, "phase", "") != "input"]


def cmd_metal(args) -> int:
    _packs_from_args(args)  # validate --pack-dir; metal runs one machine
    keep_going = getattr(args, "keep_going", False)
    json_mode = getattr(args, "format", "text") == "json"
    feasibility = getattr(args, "feasibility", "on") == "on"
    frontend = getattr(args, "frontend", "strict")
    engine = getattr(args, "engine", "summary")
    min_confidence = getattr(args, "min_confidence", None)
    jobs = resolve_jobs(args.jobs)
    budget_steps = getattr(args, "budget_steps", None)
    budget_paths = getattr(args, "budget_paths", None)
    budget_seconds = getattr(args, "budget_seconds", None)
    budgeted = (budget_steps is not None or budget_paths is not None
                or budget_seconds is not None)
    cache = _cache_from_args(args, budgeted=budgeted)
    stop_flag = StopFlag()
    policy = _policy_from_args(args, stop_flag)
    observation = _observation_from_args(args)
    journal = _journal_from_args(args)
    if journal is not None:
        print(f"run: id={journal.run_id}", file=sys.stderr, flush=True)
    wall0 = time.perf_counter()
    try:
        with graceful_shutdown(stop_flag):
            run = metal_files(
                args.checker, args.files, jobs=jobs, cache=cache,
                keep_going=keep_going, budget_steps=budget_steps,
                budget_paths=budget_paths, budget_seconds=budget_seconds,
                journal=journal, policy=policy, observation=observation,
                feasibility=feasibility, frontend=frontend, engine=engine,
            )
    finally:
        if journal is not None:
            journal.close()
    wall = time.perf_counter() - wall0
    _finalize_observation(observation, run)
    total = 0
    quarantines = []
    degraded = False
    for _path, sink in run.sinks:
        total += len(sink)
        quarantines.extend(sink.quarantines)
        degraded = degraded or sink.degraded
    doc = _report_doc(run, min_confidence=min_confidence)
    if json_mode:
        import json
        print(json.dumps(doc, indent=2))
        print(run.summary_line(), file=sys.stderr)
    else:
        for _path, sink in run.sinks:
            for report in sink.reports:
                print(report)
            if sink.quarantines:
                print(format_quarantines(sink.quarantines))
        print(f"{total} diagnostic(s) from sm {run.sm_name}")
        if degraded:
            budget = run.budget
            print("DEGRADED: results are partial"
                  + (f" ({budget.note()})"
                     if budget and budget.exhausted else ""))
        print(run.summary_line())
    if run.interrupted:
        code = _interrupted(run, journal, json_mode)
    elif _hard_quarantines(quarantines, frontend):
        code = EXIT_INTERNAL
    else:
        code = EXIT_BUGS if total else EXIT_CLEAN
    _append_ledger(
        args, command="metal", files=args.files,
        config={"command": "metal", "checker": args.checker,
                "engine": engine, "feasibility": feasibility,
                "frontend": frontend, "jobs": jobs,
                "keep_going": keep_going,
                "min_confidence": min_confidence},
        run=run, journal=journal, observation=observation, wall=wall,
        exit_code=code, doc=doc, degraded=degraded)
    return code


def _parse_dispatch(entries, functions: dict) -> dict[int, str]:
    """``OPCODE=HANDLER`` flags into a validated dispatch table."""
    dispatch: dict[int, str] = {}
    for entry in entries or ():
        opcode, sep, handler = entry.partition("=")
        if not sep or not handler:
            raise ReproError(f"--dispatch wants OPCODE=HANDLER, got {entry!r}")
        if handler not in functions:
            raise ReproError(f"--dispatch: no function named {handler!r}")
        try:
            dispatch[int(opcode, 0)] = handler
        except ValueError:
            raise ReproError(
                f"--dispatch: opcode {opcode!r} is not an integer") from None
    return dispatch


def cmd_simulate(args) -> int:
    from .campaign.runner import _error_property
    from .errors import InterpError, SimulationError
    from .faults import load_fault_plan
    from .flash.sim import FlashMachine, WorkloadSpec
    from .flash.sim.machine import SimStats

    program = _load_program(args.files)
    functions = {f.name: f for f in program.functions()}
    dispatch = _parse_dispatch(args.dispatch, functions)
    # A malformed plan raises FaultPlanError (a ReproError): main()
    # turns it into the structured internal-error line and exit 2.
    plan = load_fault_plan(args.fault_plan) if args.fault_plan else None
    machine = FlashMachine(
        functions, dispatch, nodes=args.nodes, n_buffers=args.buffers,
        lane_capacity=args.lane_capacity, strict=args.strict,
        max_hops=args.max_hops, fault_plan=plan,
    )
    spec = WorkloadSpec(
        messages=args.messages, nodes=args.nodes, seed=args.seed,
        opcode_weights=tuple((op, 1) for op in dispatch),
    )
    # Typed failures never escape as tracebacks: a protocol error (a
    # --strict violation, a pool-invariant breach) is a *finding* —
    # structured failure record, salvaged counters, exit 1 — while an
    # interpreter error means the simulation itself could not run
    # (exit 2).  See the exit-code contract in the module docstring.
    failure = None
    internal = False
    try:
        stats = machine.run(spec)
    except InterpError as exc:
        failure = ("InterpError", None, str(exc))
        internal = True
        stats = SimStats()
        machine._collect(stats)
    except SimulationError as exc:
        failure = (type(exc).__name__, _error_property(exc), str(exc))
        stats = SimStats()
        machine._collect(stats)
    print(f"handlers run: {stats.handlers_run}, sends: {stats.sends}")
    observed = {
        "double frees": stats.double_frees,
        "use after free": stats.use_after_free,
        "unsynchronized reads": stats.unsynchronized_reads,
        "msglen mismatches": stats.msglen_mismatches,
        "pending-wait violations": stats.pending_wait_violations,
        "stale directory writebacks": stats.stale_directory_writebacks,
        "lane overruns": stats.lane_overruns,
        "refcount errors": stats.refcount_errors,
        "leaked buffers": stats.leaked_buffers,
    }
    for label, value in observed.items():
        if value:
            print(f"  {label}: {value}")
    if stats.deadlock:
        print(f"  deadlock: {stats.deadlock}")
    if plan is not None:
        print(f"injected faults: {stats.injected_faults} "
              f"({stats.faults_by_site}), handler crashes: "
              f"{stats.injected_crashes}, dropped messages: "
              f"{stats.dropped_messages}")
        for event in stats.fault_events:
            print(f"  {event}")
    if failure is not None:
        etype, prop, message = failure
        record = f"failure: type={etype}"
        if prop:
            record += f" property={prop}"
        record += f" message={message}"
        print(record)
        print("NOT CLEAN")
        return EXIT_INTERNAL if internal else EXIT_BUGS
    print("clean" if stats.clean else "NOT CLEAN")
    return EXIT_CLEAN if stats.clean else EXIT_BUGS


def cmd_campaign(args) -> int:
    """Fleet-scale simulation campaign + static×dynamic cross-tab."""
    import hashlib
    import json

    from .campaign import (
        CampaignSpec,
        cross_tabulate,
        crosstab_to_json,
        render_crosstab,
        run_campaign,
    )
    from .campaign.crosstab import reports_from_json, reports_from_run

    json_mode = getattr(args, "format", "text") == "json"
    pack_dirs = _packs_from_args(args)
    spec_path = getattr(args, "spec", None)
    program = _load_program(args.files, spec_path)
    functions = {f.name: f for f in program.functions()}
    dispatch = _parse_dispatch(args.dispatch, functions)
    if not dispatch and program.info is not None:
        # Auto-dispatch from the protocol spec: the hw handlers, in
        # name order, get opcodes 1..n — the paper's §8 move of
        # extracting the handler list from the specification.
        handlers = sorted(name for name, h in program.info.handlers.items()
                          if h.kind == "hw" and name in functions)
        dispatch = dict(enumerate(handlers, start=1))
    if not dispatch:
        raise ReproError(
            "campaign needs a dispatch table: repeat --dispatch "
            "OPCODE=HANDLER, or pass --spec so the hw handler table "
            "can be extracted from the protocol specification")

    fault_sites = getattr(args, "fault_sites", None)
    extra = {}
    if fault_sites:
        extra["fault_sites"] = tuple(sorted(
            site for site in (s.strip() for s in fault_sites.split(","))
            if site))
    spec = CampaignSpec(
        files=tuple(args.files), dispatch=tuple(sorted(dispatch.items())),
        runs=args.runs, shard_size=args.shard_size, seed=args.campaign_seed,
        nodes=args.nodes, buffers=args.buffers,
        lane_capacity=args.lane_capacity, max_hops=args.max_hops,
        messages=args.messages, max_fault_rules=args.max_fault_rules,
        **extra,
    )
    jobs = resolve_jobs(args.jobs)
    cache = _cache_from_args(args, budgeted=False)
    stop_flag = StopFlag()
    policy = _policy_from_args(args, stop_flag)
    # Campaign metrics come from the finished cross-tab (below), so the
    # Observation covers --trace/--progress only.
    observation = _observation_from_args(args, metrics=False)
    spec_json = spec.to_json()
    journal = _journal_from_args(args, config={
        "mode": "campaign",
        "campaign": hashlib.sha256(spec_json.encode()).hexdigest()[:16],
    })
    if journal is not None:
        print(f"run: id={journal.run_id}", file=sys.stderr, flush=True)

    wall0 = time.perf_counter()
    try:
        with graceful_shutdown(stop_flag):
            # -- static side: prior report doc, or an in-process check -
            if getattr(args, "report", None):
                try:
                    doc = json.loads(Path(args.report).read_text())
                except OSError as exc:
                    raise ReproError(
                        f"cannot read {args.report}: {exc}") from None
                except ValueError as exc:
                    raise ReproError(
                        f"{args.report} is not JSON: {exc}") from None
                static_reports = reports_from_json(doc)
            else:
                static_run = check_files(
                    args.files, spec_path=spec_path, jobs=jobs, cache=cache,
                    keep_going=True,
                    feasibility=getattr(args, "feasibility", "on") == "on",
                    frontend=getattr(args, "frontend", "strict"),
                    engine=getattr(args, "engine", "summary"),
                    pack_dirs=pack_dirs)
                static_reports = reports_from_run(static_run)
            print(f"static: {len(static_reports)} error report(s) "
                  f"to cross-validate", file=sys.stderr)

            # -- dynamic side: the campaign over the fleet -------------
            camp = run_campaign(spec, jobs=jobs, cache=cache,
                                journal=journal, policy=policy,
                                observation=observation)
    finally:
        if journal is not None:
            journal.close()
    wall = time.perf_counter() - wall0
    _finalize_observation(observation, camp)
    print(camp.summary_line(), file=sys.stderr)
    if camp.interrupted:
        # No cross-tab for a partial campaign: verdicts over a run
        # subset would contradict the byte-identity guarantee.
        return _interrupted(camp, journal, json_mode)
    if not camp.complete:
        for slot in camp.incomplete_shards:
            print(f"mc-check: shard {slot['shard']} incomplete: "
                  f"{slot['note']}", file=sys.stderr)
        return EXIT_INTERNAL

    crosstab = cross_tabulate(static_reports, camp.outcomes)
    doc = crosstab_to_json(crosstab, spec)
    if json_mode:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_crosstab(crosstab))
    out = getattr(args, "out", None)
    if out:
        Path(out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"cross-tab: wrote {out}", file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        # Metrics are derived from the finished cross-tab — observing
        # a campaign cannot change one byte of its results.
        from .obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        for name, value in crosstab.counters.items():
            registry.inc(f"campaign.{name}", value)
        registry.inc("campaign.shards", spec.n_shards)
        Path(metrics_out).write_text(
            json.dumps(registry.snapshot(), indent=2) + "\n")
        print(f"metrics: wrote {metrics_out}", file=sys.stderr)
    code = EXIT_BUGS if crosstab.counters["crashes"] else EXIT_CLEAN
    ledger_counters = {f"campaign.{name}": value
                       for name, value in sorted(crosstab.counters.items())}
    _append_ledger(
        args, command="campaign", files=args.files,
        config={"command": "campaign",
                "campaign": hashlib.sha256(spec_json.encode())
                .hexdigest()[:16],
                "jobs": jobs, "runs": spec.runs,
                "shard_size": spec.shard_size, "seed": spec.seed},
        run=camp, journal=journal,
        observation=_StaticCounters(ledger_counters),
        wall=wall, exit_code=code, doc=doc)
    return code


class _StaticCounters:
    """Adapter handing :func:`_append_ledger` a fixed counter map (the
    campaign's cross-tab counters) through the observation interface."""

    def __init__(self, counters: dict):
        from .obs import MetricsRegistry
        self.metrics = MetricsRegistry()
        self.metrics.counters.update(counters)


def cmd_generate(args) -> int:
    from .flash.codegen import generate_protocol
    from .flash.spec import dump_spec
    gp = generate_protocol(args.protocol)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for name, text in gp.files.items():
        (out / name).write_text(text)
    (out / f"{gp.name}.spec").write_text(dump_spec(gp.info))
    manifest = out / f"{gp.name}.manifest.tsv"
    with manifest.open("w") as fh:
        fh.write("checker\tlabel\tfile\tline\tnote\n")
        for site in gp.manifest:
            fh.write(f"{site.checker}\t{site.label}\t{site.file}\t"
                     f"{site.line}\t{site.note}\n")
    print(f"wrote {len(gp.files)} files ({gp.loc()} LOC) and "
          f"{manifest.name} to {out}")
    return 0


def cmd_transform(args) -> int:
    from .lang.unparse import unparse_unit
    from .mc.transform import RedundantWaitEliminator
    eliminator = RedundantWaitEliminator()
    total = 0
    for path in args.files:
        unit = parse(Path(path).read_text(), path)
        annotate(unit)
        removed_here = 0
        for result in eliminator.transform_unit(unit):
            for line in result.removed_lines:
                print(f"{path}:{line}: removed redundant WAIT_FOR_DB_FULL")
            removed_here += len(result.removed)
        total += removed_here
        if removed_here and args.write:
            Path(path).write_text(unparse_unit(unit))
            print(f"rewrote {path}")
        elif removed_here:
            print(unparse_unit(unit), end="")
    print(f"{total} redundant synchronization(s) removed")
    return 0


def cmd_tables(args) -> int:
    from .bench import Experiment, render_all
    experiment = Experiment()
    print(render_all(experiment.all_tables()))
    return 0


def cmd_paths(args) -> int:
    """Table-1-style size/path statistics for arbitrary C files."""
    from .cfg import build_cfg, path_stats
    program = _load_program(args.files)
    print(f"{'function':32s} {'paths':>7s} {'avg':>7s} {'max':>6s}")
    total_paths = 0
    total_len = 0
    longest = 0
    for function in program.functions():
        stats = path_stats(build_cfg(function))
        total_paths += stats.path_count
        total_len += stats.total_length
        longest = max(longest, stats.max_length)
        print(f"{function.name:32s} {stats.path_count:7d} "
              f"{stats.average_length:7.1f} {stats.max_length:6d}")
    average = total_len / total_paths if total_paths else 0.0
    print(f"{'TOTAL':32s} {total_paths:7d} {average:7.1f} {longest:6d}")
    print(f"{program.loc()} non-blank lines in {len(args.files)} file(s)")
    return 0


def cmd_list(args) -> int:
    print(f"{'checker':16s} {'metal LOC':>9s}")
    for checker in all_checkers():
        print(f"{checker.name:16s} {checker.metal_loc:9d}")
    return 0


def cmd_stats(args) -> int:
    import json
    from .obs import format_metrics
    from .obs.metrics import format_prometheus, validate_metrics_snapshot
    try:
        snapshot = json.loads(Path(args.metrics).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read {args.metrics}: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"{args.metrics} is not JSON: {exc}") from None
    problem = validate_metrics_snapshot(snapshot)
    if problem is not None:
        raise ReproError(
            f"{args.metrics} is not a usable metrics document: {problem}")
    if getattr(args, "format", "text") == "prometheus":
        sys.stdout.write(format_prometheus(snapshot))
    else:
        print(format_metrics(snapshot))
    return 0


def cmd_lint(args) -> int:
    """Checker-of-checkers: lint metal state machines themselves.

    With no arguments, lints every builtin metal listing *and* every
    metal program of the discovered checker packs (``--pack-dir`` /
    ``$MC_CHECK_PACK_PATH`` / project ``mc-check.toml``) — the same
    machines a pack run would load.
    """
    from .errors import MetalError
    from .metal import lint_source

    sources: list[tuple[str, str]] = []
    if args.checkers:
        for path in args.checkers:
            try:
                sources.append((path, Path(path).read_text()))
            except OSError as exc:
                raise ReproError(f"cannot read {path}: {exc}") from None
    else:
        from .checkers.metal_sources import BUILTIN_LISTINGS
        sources.extend(BUILTIN_LISTINGS.items())
        # Packs are *not* loaded here: loading refuses lint-dirty packs
        # outright, and lint's job is to show the findings.  Read the
        # manifests and lint the machines they name directly.
        from .packs import discover_pack_dirs, load_manifest
        for pack_dir in discover_pack_dirs(
                getattr(args, "pack_dir", None) or ()):
            manifest = load_manifest(pack_dir)
            for rel in manifest.metal_checkers:
                path = manifest.root / rel
                try:
                    sources.append((f"{manifest.label}:{rel}",
                                    path.read_text()))
                except OSError as exc:
                    raise ReproError(
                        f"cannot read {path}: {exc}") from None
    total = 0
    for name, text in sources:
        try:
            findings = lint_source(text, name)
        except MetalError as exc:
            raise ReproError(f"{name}: {exc}") from None
        for finding in findings:
            print(f"{name}: {finding}")
        total += len(findings)
    label = ("1 checker" if len(sources) == 1
             else f"{len(sources)} checkers")
    if total == 0:
        print(f"lint: {label} clean")
        return EXIT_CLEAN
    print(f"lint: {total} finding(s) in {label}")
    return EXIT_BUGS


def cmd_checkers(args) -> int:
    """Enumerate what a run would dispatch: builtin checkers (the
    default pack) plus every checker of the discovered packs, each with
    the pack name and version that owns it."""
    import json as json_mod
    from .checkers.base import checker_origin
    from .packs import loaded_packs

    _packs_from_args(args)
    rows = []
    for name in checker_names():
        origin = checker_origin(name)
        checker = get_checker(name)
        rows.append({
            "name": name,
            "pack": origin.pack,
            "version": origin.version,
            "builtin": origin.builtin,
            "metal_loc": checker.metal_loc,
            "unit_parallel": checker.unit_parallel,
            **({"source": origin.source} if origin.source else {}),
        })
    if getattr(args, "format", "text") == "json":
        doc = {
            "schema": 1,
            "checkers": rows,
            "packs": [{
                "name": pack.name,
                "version": pack.version,
                "root": str(pack.manifest.root),
                "checkers": list(pack.checkers),
            } for pack in loaded_packs()],
        }
        print(json_mod.dumps(doc, indent=2))
        return EXIT_CLEAN
    print(f"{'checker':20s} {'pack':24s} {'metal LOC':>9s}")
    for row in rows:
        label = f"{row['pack']}@{row['version']}"
        print(f"{row['name']:20s} {label:24s} {row['metal_loc']:9d}")
    if loaded_packs():
        print()
        for pack in loaded_packs():
            print(f"pack {pack.label}: {len(pack.checkers)} checker(s) "
                  f"from {pack.manifest.root}")
    return EXIT_CLEAN


def cmd_explain(args) -> int:
    import json
    from .obs import render_explain
    try:
        doc = json.loads(Path(args.report).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read {args.report}: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"{args.report} is not JSON: {exc}") from None
    reports = doc.get("reports", []) if isinstance(doc, dict) else []
    if not isinstance(reports, list):
        raise ReproError(
            f"{args.report}: 'reports' is not a list — not a "
            f"'--format json' report document")
    reports = [r for r in reports if isinstance(r, dict)]
    matches = [r for r in reports
               if str(r.get("id", "")).startswith(args.error_id)]
    if not matches:
        known = ", ".join(str(r.get("id")) for r in reports[:20])
        raise ReproError(
            f"no report with id {args.error_id!r} in {args.report}"
            + (f"; known ids: {known}" if known else " (report is empty)"))
    if len(matches) > 1:
        raise ReproError(
            f"id prefix {args.error_id!r} is ambiguous: "
            + ", ".join(str(r["id"]) for r in matches))
    report = matches[0]
    try:
        print(render_explain(report, report.get("provenance", [])))
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        # A hand-edited or truncated report entry must fail structured,
        # not as a rendering traceback.
        raise ReproError(
            f"{args.report}: report {report.get('id')!r} is malformed: "
            f"{type(exc).__name__}: {exc}") from None
    return 0


def cmd_profile(args) -> int:
    """Cost attribution over a span trace: ``mc-check profile``."""
    import json
    from .obs.profile import build_profile, format_profile
    from .obs.trace import read_trace

    trace = getattr(args, "trace", None)
    if not trace and not getattr(args, "run", None):
        raise ReproError("profile wants --trace FILE or a RUN-ID "
                         "(see 'mc-check history')")
    if not trace:
        from .obs.ledger import find_run, read_ledger
        record = find_run(read_ledger(_ledger_path_from_args(args)),
                          args.run)
        trace = record.get("trace")
        if not trace:
            raise ReproError(
                f"run {record['run']} was not traced; rerun it with "
                f"--trace FILE to profile it")
    if not Path(trace).exists():
        raise ReproError(f"cannot read {trace}: no such file")
    profile = build_profile(read_trace(trace), top=args.top)
    if getattr(args, "format", "text") == "json":
        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(format_profile(profile, top=args.top))
    return 0


def cmd_history(args) -> int:
    """List the run ledger: ``mc-check history``."""
    import json
    from .obs.ledger import format_history, read_ledger
    records = read_ledger(_ledger_path_from_args(args))
    if getattr(args, "format", "text") == "json":
        shown = records[-args.limit:] if args.limit else records
        print(json.dumps(shown, indent=2, sort_keys=True))
    else:
        print(format_history(records, limit=args.limit))
    return 0


def cmd_diff(args) -> int:
    """Run-over-run drift report: ``mc-check diff RUN-A RUN-B``.

    Exit 0 means no report drift and no wall regression; exit 1 means
    either, so a CI job can gate on it directly.
    """
    import json
    from .obs.ledger import diff_runs, find_run, format_diff, read_ledger
    records = read_ledger(_ledger_path_from_args(args))
    a = find_run(records, args.run_a)
    b = find_run(records, args.run_b)
    for record in (a, b):
        if record.get("interrupted"):
            raise ReproError(
                f"run {record['run']} was interrupted; its report set is "
                f"partial and cannot be diffed")
    if a.get("command") != b.get("command"):
        raise ReproError(
            f"cannot diff a {a.get('command')!r} run against a "
            f"{b.get('command')!r} run")
    diff = diff_runs(a, b, wall_threshold=args.wall_threshold)
    if getattr(args, "format", "text") == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(format_diff(diff))
    return EXIT_BUGS if diff["regression"] else EXIT_CLEAN


def _add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    """Worker-pool and result-cache flags shared by check/metal."""
    parser.add_argument("--jobs", default=os.environ.get("MC_CHECK_JOBS", "1"),
                        metavar="N|auto",
                        help="fan (checker, file) work items across N worker "
                             "processes; 'auto' uses every core "
                             "(default: $MC_CHECK_JOBS or 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="incremental analysis cache location (default: "
                             "$MC_CHECK_CACHE_DIR or ~/.cache/mc-check)")
    parser.add_argument("--no-cache", action="store_true",
                        default=bool(os.environ.get("MC_CHECK_NO_CACHE")),
                        help="disable the content-hash result cache")
    parser.add_argument("--item-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="watchdog: kill and retry any single work item "
                             "running longer than this (default: no per-item "
                             "timeout; hung workers wait forever)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="re-dispatch an item whose worker crashed or "
                             "hung up to N times before quarantining it "
                             "(default: 2)")
    parser.add_argument("--resume", default=None, metavar="RUN-ID",
                        help="replay completed items from an interrupted "
                             "run's journal (the id printed as 'run: id=...' "
                             "and by the exit-130 footer) and run only the "
                             "remainder; the merged report is identical to "
                             "an uninterrupted run")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                        help="inject worker_crash/worker_hang/worker_slow "
                             "faults into the fleet's own workers from a "
                             "JSON fault plan (supervision testing; see "
                             "docs/resilience.md)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a structured JSONL span trace of the "
                             "run (run -> item -> unit/function -> path, "
                             "with timings and engine counters; see "
                             "docs/observability.md)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write run metrics (counters, gauges, latency "
                             "histograms) as JSON; render with "
                             "'mc-check stats FILE'")
    parser.add_argument("--progress", action="store_true",
                        help="render live fleet status to stderr: items "
                             "done, items/sec, ETA, per-worker liveness "
                             "(heartbeats), retry/quarantine counts; "
                             "reports stay byte-identical")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format: 'json' prints a machine-"
                             "readable document (report ids + path "
                             "provenance, consumed by 'mc-check explain') "
                             "on stdout and routes all chatter to stderr")
    parser.add_argument("--engine", choices=["paths", "summary"],
                        default="summary",
                        help="path exploration engine: 'summary' slices "
                             "each CFG to checker-relevant blocks, merges "
                             "states at join points, and replays cached "
                             "per-function summaries; 'paths' is the "
                             "original exhaustive per-path walk (the "
                             "equivalence oracle; see docs/engine.md; "
                             "default: summary)")
    parser.add_argument("--feasibility", choices=["on", "off"], default="on",
                        help="path-feasibility analysis: prune branch edges "
                             "whose conditions contradict facts already "
                             "established on the path (suppresses "
                             "correlated-branch false positives; 'off' "
                             "walks every syntactic path like the paper's "
                             "engine; default: on)")
    parser.add_argument("--min-confidence", type=float, default=None,
                        metavar="SCORE",
                        help="drop reports whose z-ranking confidence is "
                             "below SCORE (0..1); see docs/analysis.md")
    parser.add_argument("--pack-dir", action="append", default=None,
                        metavar="DIR",
                        help="load checker pack(s) from DIR — a directory "
                             "with a pack.toml, or one whose "
                             "subdirectories carry them (repeatable; "
                             "$MC_CHECK_PACK_PATH and a project "
                             "mc-check.toml [packs] dirs are also "
                             "consulted; see docs/checkers.md)")
    parser.add_argument("--frontend", choices=["strict", "tolerant"],
                        default="strict",
                        help="parse mode: 'strict' fails the run on the "
                             "first unsupported construct; 'tolerant' "
                             "recovers (opaque statements/expressions, "
                             "per-function input quarantines) and analyses "
                             "everything that did parse — exit stays 0/1 "
                             "on messy codebases (see "
                             "docs/frontend-tolerance.md)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mc-check",
        description="Meta-level compilation checkers for FLASH protocol "
                    "code (ASPLOS 2000 reproduction)",
        epilog="exit codes: 0 clean; 1 bugs/diagnostics found; 2 internal "
               "error or quarantined checker; 130 run interrupted by "
               "SIGINT/SIGTERM (partial report flushed; finish it with "
               "--resume RUN-ID)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="run FLASH checkers over C files")
    p_check.add_argument("files", nargs="+")
    p_check.add_argument("--checker", action="append",
                         help="run only this checker (repeatable; builtin "
                              "or pack-provided — see 'mc-check checkers')")
    p_check.add_argument("--spec",
                         help="protocol specification file (handler table, "
                              "lane allowances, buffer routine tables)")
    p_check.add_argument("--keep-going", action="store_true",
                         help="a crashing checker is quarantined (exit 2) "
                              "instead of aborting the whole run")
    _add_fleet_flags(p_check)
    p_check.add_argument("--budget-seconds", type=float, default=None,
                         help="run-wide wall-clock deadline shared by all "
                              "workers; work past it is skipped and the "
                              "result marked DEGRADED (disables the cache)")
    p_check.set_defaults(func=cmd_check)

    p_metal = sub.add_parser("metal", help="run a textual metal checker")
    p_metal.add_argument("checker", help="path to a .metal file")
    p_metal.add_argument("files", nargs="+")
    p_metal.add_argument("--keep-going", action="store_true",
                         help="quarantine crashing (checker, function) "
                              "pairs instead of aborting")
    p_metal.add_argument("--budget-steps", type=int, default=None,
                         help="stop exploring after this many machine steps "
                              "(partial results, marked DEGRADED)")
    p_metal.add_argument("--budget-paths", type=int, default=None,
                         help="path cap for the naive engine fallback")
    p_metal.add_argument("--budget-seconds", type=float, default=None,
                         help="wall-clock cap for the whole analysis "
                              "(a single run-wide deadline, shared by all "
                              "workers under --jobs)")
    _add_fleet_flags(p_metal)
    p_metal.set_defaults(func=cmd_metal)

    p_sim = sub.add_parser(
        "simulate", help="run handlers in the FlashLite-lite simulator")
    p_sim.add_argument("files", nargs="+")
    p_sim.add_argument("--dispatch", action="append", required=True,
                       metavar="OPCODE=HANDLER",
                       help="dispatch-table entry (repeatable)")
    p_sim.add_argument("--messages", type=int, default=1000)
    p_sim.add_argument("--nodes", type=int, default=2)
    p_sim.add_argument("--buffers", type=int, default=16)
    p_sim.add_argument("--lane-capacity", type=int, default=8)
    p_sim.add_argument("--max-hops", type=int, default=4)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--strict", action="store_true",
                       help="violations raise instead of being counted")
    p_sim.add_argument("--fault-plan", default=None,
                       help="JSON fault plan forcing failure paths "
                            "(see docs/simulator.md)")
    p_sim.set_defaults(func=cmd_simulate)

    p_camp = sub.add_parser(
        "campaign",
        help="fleet-scale simulation campaign with static×dynamic "
             "cross-validation: derive N deterministic (seed, workload, "
             "fault-plan) runs, shard them across the worker pool, "
             "shrink every crash to a minimal repro, and give each "
             "static report a confirmed/unmanifested verdict (plus "
             "checker gaps for uncovered dynamic violations)")
    p_camp.add_argument("files", nargs="+")
    p_camp.add_argument("--dispatch", action="append",
                        metavar="OPCODE=HANDLER",
                        help="dispatch-table entry (repeatable); omit "
                             "with --spec to auto-dispatch the spec's hw "
                             "handlers as opcodes 1..n")
    p_camp.add_argument("--spec",
                        help="protocol specification file; also feeds "
                             "the static checkers")
    p_camp.add_argument("--report", default=None, metavar="REPORT.json",
                        help="cross-validate against this prior "
                             "'check --format json' document instead of "
                             "running the static checkers in-process")
    p_camp.add_argument("--runs", type=int, default=100,
                        help="simulation runs in the campaign "
                             "(default: 100)")
    p_camp.add_argument("--shard-size", type=int, default=10,
                        help="runs per fleet work item (default: 10); "
                             "re-sharding never changes any run's "
                             "outcome, only scheduling")
    p_camp.add_argument("--campaign-seed", type=int, default=7,
                        metavar="SEED",
                        help="root seed; every run's workload seed and "
                             "fault plan derive from sha256(seed, run) "
                             "(default: 7)")
    p_camp.add_argument("--messages", type=int, default=25,
                        help="workload messages per run (default: 25)")
    p_camp.add_argument("--nodes", type=int, default=2)
    p_camp.add_argument("--buffers", type=int, default=16)
    p_camp.add_argument("--lane-capacity", type=int, default=8)
    p_camp.add_argument("--max-hops", type=int, default=2)
    p_camp.add_argument("--fault-sites", default=None, metavar="SITE,...",
                        help="simulator fault sites campaign plans draw "
                             "rules from (default: all sites)")
    p_camp.add_argument("--max-fault-rules", type=int, default=3,
                        metavar="N",
                        help="at most N generated fault rules per run; "
                             "~1/(N+1) of runs stay fault-free as the "
                             "baseline (default: 3)")
    p_camp.add_argument("--out", default=None, metavar="CROSSTAB.json",
                        help="also write the cross-tab JSON document "
                             "here (byte-identical across --resume, "
                             "--jobs, and cache states)")
    _add_fleet_flags(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_gen = sub.add_parser("generate", help="emit a generated protocol")
    p_gen.add_argument("protocol",
                       choices=["bitvector", "dyn_ptr", "sci", "coma",
                                "rac", "common"])
    p_gen.add_argument("-o", "--output", default="generated")
    p_gen.set_defaults(func=cmd_generate)

    p_transform = sub.add_parser(
        "transform", help="remove redundant WAIT_FOR_DB_FULL calls")
    p_transform.add_argument("files", nargs="+")
    p_transform.add_argument("--write", action="store_true",
                             help="rewrite files in place (default: print)")
    p_transform.set_defaults(func=cmd_transform)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.set_defaults(func=cmd_tables)

    p_paths = sub.add_parser(
        "paths", help="per-function path statistics (Table 1 style)")
    p_paths.add_argument("files", nargs="+")
    p_paths.set_defaults(func=cmd_paths)

    p_list = sub.add_parser("list", help="list registered checkers")
    p_list.set_defaults(func=cmd_list)

    p_checkers = sub.add_parser(
        "checkers",
        help="enumerate builtin + pack checkers with the pack and "
             "version each belongs to (what a run would dispatch)")
    p_checkers.add_argument("--list", action="store_true",
                            help="list checkers (the default action)")
    p_checkers.add_argument("--format", choices=["text", "json"],
                            default="text")
    p_checkers.add_argument("--pack-dir", action="append", default=None,
                            metavar="DIR",
                            help="also load checker pack(s) from DIR "
                                 "(repeatable)")
    p_checkers.set_defaults(func=cmd_checkers)

    p_lint = sub.add_parser(
        "lint",
        help="lint metal state machines (checker-of-checkers): "
             "undeclared transition targets, unreachable states, "
             "patterns that can never fire")
    p_lint.add_argument("checkers", nargs="*", metavar="CHECKER.metal",
                        help="textual metal programs to lint (default: "
                             "the built-in paper listings plus every "
                             "discovered checker pack's machines)")
    p_lint.add_argument("--pack-dir", action="append", default=None,
                        metavar="DIR",
                        help="also lint checker pack(s) from DIR "
                             "(repeatable)")
    p_lint.set_defaults(func=cmd_lint)

    p_stats = sub.add_parser(
        "stats", help="render a --metrics-out document as a table")
    p_stats.add_argument("metrics", metavar="METRICS.json",
                         help="metrics document written by --metrics-out")
    p_stats.add_argument("--format", choices=["text", "prometheus"],
                         default="text",
                         help="'prometheus' emits the registry in "
                              "Prometheus text exposition format "
                              "(counters as *_total, histograms as "
                              "summaries) — the scrape surface for a "
                              "resident daemon")
    p_stats.set_defaults(func=cmd_stats)

    p_profile = sub.add_parser(
        "profile",
        help="aggregate a --trace span file into a cost tree: time per "
             "phase (parse/engine/dispatch), per checker, per analyzed "
             "function, top-N hotspots, the fleet's critical path, and "
             "cache attribution; crashed/retried attempts are excluded "
             "so the tree is deterministic")
    p_profile.add_argument("run", nargs="?", default=None, metavar="RUN-ID",
                           help="profile this ledger run's recorded trace "
                                "(the run must have been traced; a unique "
                                "id prefix is enough)")
    p_profile.add_argument("--trace", default=None, metavar="FILE",
                           help="profile this span trace file directly "
                                "instead of resolving a RUN-ID")
    p_profile.add_argument("--top", type=int, default=10, metavar="N",
                           help="hotspot list length (default: 10)")
    p_profile.add_argument("--format", choices=["text", "json"],
                           default="text")
    p_profile.add_argument("--cache-dir", default=None,
                           help="where the run ledger lives (default: "
                                "$MC_CHECK_CACHE_DIR or ~/.cache/mc-check)")
    p_profile.set_defaults(func=cmd_profile)

    p_history = sub.add_parser(
        "history",
        help="list recorded runs from the ledger "
             "(<cache-dir>/ledger.jsonl): one line per check/metal/"
             "campaign run with wall time, exit code, and report count")
    p_history.add_argument("--limit", type=int, default=20, metavar="N",
                           help="show the N most recent runs "
                                "(default: 20; 0 = all)")
    p_history.add_argument("--format", choices=["text", "json"],
                           default="text")
    p_history.add_argument("--cache-dir", default=None,
                           help="where the run ledger lives (default: "
                                "$MC_CHECK_CACHE_DIR or ~/.cache/mc-check)")
    p_history.set_defaults(func=cmd_history)

    p_diff = sub.add_parser(
        "diff",
        help="three-part drift report between two ledger runs: "
             "new/lost/changed report ids, counter deltas, and wall-time "
             "regression past a threshold; exits 1 on report drift or "
             "regression so CI can gate run-over-run")
    p_diff.add_argument("run_a", metavar="RUN-A",
                        help="baseline run id (unique prefix is enough)")
    p_diff.add_argument("run_b", metavar="RUN-B",
                        help="candidate run id (unique prefix is enough)")
    p_diff.add_argument("--wall-threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="flag a wall-time regression when run B is "
                             "more than this fraction slower than run A "
                             "(and slower by at least 0.5s of absolute "
                             "wall; default: 0.25)")
    p_diff.add_argument("--format", choices=["text", "json"],
                        default="text")
    p_diff.add_argument("--cache-dir", default=None,
                        help="where the run ledger lives (default: "
                             "$MC_CHECK_CACHE_DIR or ~/.cache/mc-check)")
    p_diff.set_defaults(func=cmd_diff)

    p_explain = sub.add_parser(
        "explain",
        help="show the path that produced one diagnostic")
    p_explain.add_argument("report", metavar="REPORT.json",
                           help="report written by 'check/metal "
                                "--format json'")
    p_explain.add_argument("error_id", metavar="ERROR-ID",
                           help="the diagnostic's id from the JSON report "
                                "(a unique prefix is enough)")
    p_explain.set_defaults(func=cmd_explain)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piped into head/less that exited early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except KeyboardInterrupt:
        # A second SIGINT/SIGTERM during the graceful drain: abort hard,
        # but still with the conventional interrupted status.
        print("mc-check: aborted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        # The tool (or its input plumbing) failed — distinct from "the
        # checked protocol has bugs" (exit 1).  Pack problems are the
        # user's manifest, not our bug: label them as such.
        from .packs import PackError
        kind = "pack error" if isinstance(exc, PackError) else \
            "internal error"
        print(f"mc-check: {kind}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
