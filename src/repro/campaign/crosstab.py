"""Static×dynamic cross-tabulation: the campaign's three-way verdict.

Every static error report gets exactly one verdict against a campaign's
dynamic outcomes:

- ``confirmed`` — some run violated a property whose bug class the
  report's checker predicts, *and* the run pinned the violation on the
  reported function (per-handler counter attribution), or — for
  structural properties with no single culprit (leaks, deadlock) — the
  run at least executed the reported function;
- ``unmanifested`` — no run of the campaign produced a matching
  violation (the report may still be real: the campaign is evidence,
  not proof of absence);

and every dynamic violation with *no* matching static report becomes a
``checker gap`` — the paper's false-negative signal, aggregated by
(property, handler).

Verdicts are keyed by the stable report id (`repro.obs.provenance`),
so cross-tabs from different runs, job counts, and cache states line up
row for row — and a ``--resume``d campaign's cross-tab is byte-identical
to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..mc.ranking import dynamic_boost
from ..obs.provenance import report_id, report_key
from .plans import CampaignSpec
from .properties import Violation, canonical_checker, property_by_name

CROSSTAB_SCHEMA = 1


@dataclass(frozen=True)
class StaticReport:
    """One static error report, normalized for cross-tabulation."""

    id: str
    checker: str                       # registered checker name
    machine: str                       # raw report.checker (machine name)
    function: str
    file: str
    line: int
    column: int
    message: str
    key: tuple                         # ranking/report key
    confidence: Optional[float] = None


def reports_from_run(run) -> list:
    """Normalize a ``CheckRun``'s error reports (with static scores)."""
    from ..mc.ranking import score_run

    scores = score_run(run)
    out = []
    for name, result in run.results.items():
        for report in result.errors:
            loc = report.location
            key = report_key(report)
            out.append(StaticReport(
                id=report_id(report.checker, report.message, loc.filename,
                             loc.line, loc.column),
                checker=name, machine=report.checker,
                function=report.function, file=loc.filename, line=loc.line,
                column=loc.column, message=report.message, key=key,
                confidence=scores.get(key),
            ))
    return out


def reports_from_json(doc: dict) -> list:
    """Normalize a ``--format json`` report document's error reports."""
    out = []
    for obj in doc.get("reports", ()):
        if obj.get("severity", "error") != "error":
            continue
        machine = str(obj.get("checker", ""))
        out.append(StaticReport(
            id=str(obj.get("id", "")),
            checker=canonical_checker(machine), machine=machine,
            function=str(obj.get("function", "")),
            file=str(obj.get("file", "")), line=int(obj.get("line", 0)),
            column=int(obj.get("column", 0)),
            message=str(obj.get("message", "")),
            key=(machine, obj.get("message", ""), None),
            confidence=obj.get("confidence"),
        ))
    return out


def _matches(report: StaticReport, violation: Violation,
             functions_executed: set) -> bool:
    """Does one run's violation dynamically confirm one static report?"""
    prop = property_by_name(violation.property)
    if report.checker not in prop.checkers:
        return False
    if violation.handlers:
        return report.function in violation.handlers
    return report.function in functions_executed


@dataclass
class CrossTab:
    """The full verdict table for one (static run, campaign) pair."""

    entries: list = field(default_factory=list)
    gaps: list = field(default_factory=list)
    crashes: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    #: Ranking keys of every confirmed report — feed this to
    #: ``score_run(run, dynamically_confirmed=...)``.
    confirmed_keys: frozenset = frozenset()

    @property
    def confirmed(self) -> list:
        return [e for e in self.entries if e["verdict"] == "confirmed"]


def cross_tabulate(static_reports: list, outcomes: list) -> CrossTab:
    """Build the three-way verdict table.

    ``static_reports`` come from :func:`reports_from_run` or
    :func:`reports_from_json`; ``outcomes`` are the campaign's merged
    run records in run order.  Deterministic: entries sort by
    (file, line, column, checker, message), gaps by (property, handler).
    """
    entries = []
    confirmed_keys = set()
    # -- verdict per static report ------------------------------------
    for report in sorted(static_reports,
                         key=lambda r: (r.file, r.line, r.column,
                                        r.checker, r.message)):
        confirmed_by: list = []
        properties: set = set()
        for outcome in outcomes:
            executed = set(outcome.get("functions_executed", ()))
            for vobj in outcome.get("violations", ()):
                violation = Violation.from_obj(vobj)
                if _matches(report, violation, executed):
                    if not confirmed_by or confirmed_by[-1] != outcome["run"]:
                        confirmed_by.append(outcome["run"])
                    properties.add(violation.property)
        verdict = "confirmed" if confirmed_by else "unmanifested"
        if confirmed_by:
            confirmed_keys.add(report.key)
        confidence_dynamic = report.confidence
        if confirmed_by and report.confidence is not None:
            confidence_dynamic = dynamic_boost(report.confidence)
        entries.append({
            "id": report.id,
            "checker": report.checker,
            "function": report.function,
            "file": report.file,
            "line": report.line,
            "column": report.column,
            "message": report.message,
            "verdict": verdict,
            "properties": sorted(properties),
            "confirmed_runs": len(confirmed_by),
            "confirmed_by": confirmed_by[:10],
            "confidence": report.confidence,
            "confidence_dynamic": confidence_dynamic,
        })

    # -- checker gaps ---------------------------------------------------
    gap_index: dict = {}
    for outcome in outcomes:
        executed = set(outcome.get("functions_executed", ()))
        for vobj in outcome.get("violations", ()):
            violation = Violation.from_obj(vobj)
            prop = property_by_name(violation.property)
            handlers = violation.handlers or ("",)
            for handler in handlers:
                covered = any(
                    r.checker in prop.checkers
                    and (r.function == handler if handler
                         else r.function in executed)
                    for r in static_reports)
                if covered:
                    continue
                key = (violation.property, handler)
                slot = gap_index.setdefault(
                    key, {"property": violation.property,
                          "handler": handler, "runs": 0,
                          "example_run": outcome["run"]})
                slot["runs"] += 1
    gaps = [gap_index[k] for k in sorted(gap_index)]

    # -- crashes with their minimal repros ------------------------------
    crashes = []
    shrink_iterations = 0
    for outcome in outcomes:
        if outcome.get("shrunk"):
            shrink_iterations += outcome["shrunk"]["iterations"]
        if outcome.get("crashed"):
            crashes.append({
                "run": outcome["run"],
                "seed": outcome["seed"],
                "messages": outcome["messages"],
                "fault_plan": outcome.get("fault_plan"),
                "violations": sorted(v["property"]
                                     for v in outcome.get("violations", ())),
                "error": outcome.get("error"),
                "shrunk": outcome.get("shrunk"),
            })

    counters = {
        "runs": len(outcomes),
        "crashes": len(crashes),
        "confirmed": sum(1 for e in entries if e["verdict"] == "confirmed"),
        "unmanifested": sum(1 for e in entries
                            if e["verdict"] == "unmanifested"),
        "gaps": len(gaps),
        "shrink_iterations": shrink_iterations,
        "faults": sum(o.get("faults", 0) for o in outcomes),
        "handlers_run": sum(o.get("handlers_run", 0) for o in outcomes),
    }
    return CrossTab(entries=entries, gaps=gaps, crashes=crashes,
                    counters=counters,
                    confirmed_keys=frozenset(confirmed_keys))


def crosstab_to_json(crosstab: CrossTab,
                     spec: Optional[CampaignSpec] = None) -> dict:
    """The cross-tab as a deterministic JSON document.

    Nothing in the document depends on timing, scheduling, shard
    boundaries, or cache state — the byte-identity anchor for the
    kill-and-resume guarantee.
    """
    doc = {
        "schema": CROSSTAB_SCHEMA,
        "campaign": ({"runs": spec.runs, "seed": spec.seed,
                      "messages": spec.messages,
                      "shard_size": spec.shard_size,
                      "files": list(spec.files)}
                     if spec is not None else None),
        "counters": dict(crosstab.counters),
        "reports": list(crosstab.entries),
        "gaps": list(crosstab.gaps),
        "crashes": list(crosstab.crashes),
    }
    return doc


def render_crosstab(crosstab: CrossTab) -> str:
    """Human-readable cross-tab (the ``--format text`` body)."""
    lines = []
    c = crosstab.counters
    lines.append(
        f"campaign: {c['runs']} run(s), {c['crashes']} crash(es), "
        f"{c['faults']} fault(s) injected, "
        f"{c['handlers_run']} handler(s) executed")
    lines.append(
        f"cross-tab: {c['confirmed']} confirmed, "
        f"{c['unmanifested']} unmanifested, {c['gaps']} checker gap(s), "
        f"{c['shrink_iterations']} shrink iteration(s)")
    for entry in crosstab.entries:
        mark = "+" if entry["verdict"] == "confirmed" else " "
        line = (f" {mark} [{entry['verdict']:12s}] "
                f"{entry['file']}:{entry['line']}: "
                f"{entry['checker']}: {entry['function']}: "
                f"{entry['message']}")
        if entry["verdict"] == "confirmed":
            line += (f" (runs: {entry['confirmed_runs']}")
            if entry["confidence"] is not None:
                line += (f", confidence {entry['confidence']:.4f} -> "
                         f"{entry['confidence_dynamic']:.4f}")
            line += ")"
        lines.append(line)
    for gap in crosstab.gaps:
        where = gap["handler"] or "<unattributed>"
        lines.append(
            f" ! [checker gap ] {gap['property']} in {where}: "
            f"{gap['runs']} violating run(s), no static report "
            f"(example: run {gap['example_run']})")
    for crash in crosstab.crashes:
        shrunk = crash.get("shrunk")
        if shrunk:
            rules = (len(shrunk['fault_plan']['rules'])
                     if shrunk.get("fault_plan") else 0)
            lines.append(
                f"   crash run {crash['run']}: "
                f"{', '.join(crash['violations'])} — minimal repro: "
                f"seed={shrunk['seed']} messages={shrunk['messages']} "
                f"fault-rules={rules} "
                f"({shrunk['iterations']} shrink iteration(s))")
    return "\n".join(lines)
