"""Worker-side campaign execution: one shard = one fleet work item.

A shard executes a contiguous slice of the campaign's runs against one
parsed copy of the protocol (the per-worker parse memo makes the parse
cost amortize across every shard a worker executes).  Each failing run
is shrunk *in the worker*, before the payload ships back — so the
journaled payload already carries the minimal counterexample and a
``--resume`` replay is byte-identical without re-shrinking anything.

Payload shape (JSON-able, deterministic field order)::

    {"schema": <cache schema>, "campaign": <campaign schema>,
     "shard": N, "outcomes": [
        {"run", "seed", "messages", "fault_plan",
         "violations": [{"property", "count", "handlers"}...],
         "crashed", "error", "functions_executed", "handlers_run",
         "faults", "shrunk"}
     ...]}

Typed protocol errors that escape a lenient run (a negative refcount is
a pool-invariant breach and fatal even outside ``--strict``) are caught
here and recorded as the matching property violation — a worker never
dies because the *simulated protocol* is buggy.
"""

from __future__ import annotations

from typing import Optional

from ..errors import (
    DoubleFreeError,
    LaneOverflowError,
    RefcountError,
    SimulationError,
)
from .plans import CAMPAIGN_SCHEMA, CampaignSpec, RunPlan, runs_for_shard
from .properties import Violation, violations_of
from .shrink import shrink_run

#: Typed errors that escape ``FlashMachine.run`` mapped to the property
#: they witness (``None`` = tool-side failure, recorded but unmapped).
_ERROR_PROPERTY = {
    RefcountError: "refcount-negative",
    DoubleFreeError: "buffer-refcount",
    LaneOverflowError: "lane-capacity",
}


def _error_property(exc: BaseException) -> Optional[str]:
    for etype, prop in _ERROR_PROPERTY.items():
        if isinstance(exc, etype):
            return prop
    return None


def execute_plan(functions: dict, dispatch: dict, spec: CampaignSpec,
                 plan: RunPlan) -> tuple:
    """Run one plan; returns ``(stats, error)`` where ``error`` is
    ``None`` or ``(type-name, message)`` for an escaped typed failure."""
    from ..flash.sim import FlashMachine, WorkloadSpec
    from ..flash.sim.machine import SimStats

    machine = FlashMachine(
        functions, dispatch, nodes=spec.nodes, n_buffers=spec.buffers,
        lane_capacity=spec.lane_capacity, strict=False,
        max_hops=spec.max_hops, fault_plan=plan.fault_plan,
    )
    workload = WorkloadSpec(
        messages=plan.messages, nodes=spec.nodes, seed=plan.seed,
        opcode_weights=tuple((op, 1) for op, _name in sorted(dispatch.items())),
    )
    try:
        stats = machine.run(workload)
        return stats, None
    except SimulationError as exc:
        # Escaped typed failure (negative refcount, interpreter error):
        # salvage the counters the machine did accumulate.
        stats = SimStats()
        machine._collect(stats)
        return stats, (type(exc).__name__, str(exc))


def _violations(stats, error) -> list:
    found = violations_of(stats)
    if error is not None:
        prop = None
        for etype, name in _ERROR_PROPERTY.items():
            if etype.__name__ == error[0]:
                prop = name
                break
        if prop is not None and all(v.property != prop for v in found):
            found.append(Violation(prop, 1, ()))
    return found


def execute_run(functions: dict, dispatch: dict, spec: CampaignSpec,
                plan: RunPlan, shrink: bool = True) -> dict:
    """Execute one run plan into its outcome record (shrinking failures)."""
    stats, error = execute_plan(functions, dispatch, spec, plan)
    violations = _violations(stats, error)
    crashed = bool(violations) or error is not None
    shrunk_obj = None
    targets = frozenset(v.property for v in violations)
    if shrink and crashed and targets:
        def rerun(candidate: RunPlan) -> frozenset:
            c_stats, c_error = execute_plan(functions, dispatch, spec,
                                            candidate)
            return frozenset(v.property
                             for v in _violations(c_stats, c_error))

        result = shrink_run(plan, targets, rerun)
        minimal = result.plan.to_obj()
        shrunk_obj = {
            "seed": minimal["seed"],
            "messages": minimal["messages"],
            "fault_plan": minimal["fault_plan"],
            "iterations": result.iterations,
            "capped": result.capped,
        }
    return {
        "run": plan.run_index,
        "seed": plan.seed,
        "messages": plan.messages,
        "fault_plan": plan.to_obj()["fault_plan"],
        "violations": [v.to_obj() for v in violations],
        "crashed": crashed,
        "error": list(error) if error is not None else None,
        "functions_executed": list(stats.functions_executed),
        "handlers_run": stats.handlers_run,
        "faults": stats.injected_faults,
        "shrunk": shrunk_obj,
    }


def run_campaign_item(item, config) -> dict:
    """Execute one campaign shard work item (called in fleet workers).

    Mirrors the checker/metal item runners: deadline skips and
    unreadable inputs degrade to the fleet's existing skipped/quarantine
    payloads instead of killing the worker; worker-site fault rules
    (``worker_crash``/...) perturb campaign items exactly as they do
    checker items, so the supervisor's crash/retry machinery is
    exercised by the same plans.
    """
    from ..errors import SourceReadError
    from ..mc import parallel as fleet
    from ..mc.cache import SCHEMA_VERSION
    from ..project import Program, read_sources

    if fleet._past_deadline(config):
        return fleet._skipped_payload(
            item, config, "not analysed — run deadline exceeded")
    fleet._maybe_worker_fault(item)
    spec = CampaignSpec.from_json(config.campaign_spec)
    try:
        files = read_sources(item.paths)
    except SourceReadError as exc:
        return fleet._quarantine_payload(item, config, type(exc).__name__,
                                         str(exc), phase="input")
    program = Program(files, unit_memo=True)
    functions = {f.name: f for f in program.functions()}
    dispatch = {op: name for op, name in spec.dispatch}
    missing = sorted(name for name in dispatch.values()
                     if name not in functions)
    if missing:
        return fleet._quarantine_payload(
            item, config, "ReproError",
            f"dispatch handler(s) not defined by the sources: "
            f"{', '.join(missing)}", phase="input")
    outcomes = [
        execute_run(functions, dispatch, spec, plan)
        for plan in runs_for_shard(spec, item.index)
    ]
    return {
        "schema": SCHEMA_VERSION,
        "campaign": CAMPAIGN_SCHEMA,
        "shard": item.index,
        "outcomes": outcomes,
    }
