"""Parent-side campaign orchestration over the supervised worker fleet.

A campaign reuses the checker fleet's whole execution stack unchanged —
:func:`repro.mc.parallel._run_items` gives shards journal replay,
cache short-circuiting, the supervised pool (crash detection, watchdog,
retry, poison quarantine), graceful interruption, and the inline
fallback — by introducing one new work-item kind, ``"campaign"``, whose
item index *is* the shard index.

Shard keys fold together the protocol sources' content hashes, the
canonical campaign-spec JSON, the shard index, and a fingerprint of the
campaign/simulator/fault implementation — so editing a protocol file,
changing any campaign parameter, or upgrading the simulator invalidates
exactly the affected journal/cache entries, the same invalidation
discipline the checker fleet has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..lang.memo import source_fingerprint
from ..mc.cache import SCHEMA_VERSION, ResultCache, _module_digest, _sha256
from ..mc.parallel import WorkerConfig, WorkItem, _run_items
from ..mc.supervisor import RunJournal, RunStats, SupervisorPolicy
from .plans import CAMPAIGN_SCHEMA, CampaignSpec

_CAMPAIGN_FP: Optional[str] = None


def campaign_fingerprint() -> str:
    """Hash of every module whose behaviour feeds campaign outcomes.

    Covers this package (plan derivation, properties, shrinking,
    running), the whole simulator, and the fault machinery — bumping
    any of them must invalidate journaled shard payloads, exactly as
    the engine fingerprint invalidates checker results.
    """
    global _CAMPAIGN_FP
    if _CAMPAIGN_FP is None:
        from ..faults import injector as faults_injector
        from ..faults import plan as faults_plan
        from ..flash.sim import buffers, directory, interp, machine
        from ..flash.sim import network, node, workload
        from . import crosstab, plans, properties, runner, shrink

        digests = [
            _module_digest(module)
            for module in (plans, properties, runner, shrink, crosstab,
                           machine, node, interp, buffers, directory,
                           network, workload, faults_plan, faults_injector)
        ]
        _CAMPAIGN_FP = _sha256(*(d.encode() for d in digests),
                               str(CAMPAIGN_SCHEMA).encode())
    return _CAMPAIGN_FP


@dataclass
class CampaignRun:
    """A full campaign: merged outcomes plus run metadata."""

    spec: CampaignSpec
    outcomes: list                     # run records, sorted by run index
    #: Shard indexes that did not complete (interrupted/quarantined),
    #: with the reason recorded by their degraded payloads.
    incomplete_shards: list
    jobs: int = 1
    #: Cache hit/miss statistics (:class:`repro.mc.cache.CacheStats`).
    stats: Optional[object] = None
    run_id: Optional[str] = None
    supervision: Optional[RunStats] = None

    @property
    def interrupted(self) -> bool:
        return bool(self.supervision is not None
                    and self.supervision.interrupted)

    @property
    def complete(self) -> bool:
        return not self.incomplete_shards

    def summary_line(self) -> str:
        line = (f"run: jobs={self.jobs}, shards={self.spec.n_shards}, "
                f"runs={len(self.outcomes)}/{self.spec.runs}")
        if self.stats is not None:
            line += f", {self.stats.line()}, {self.stats.stores} stored"
        if self.supervision is not None and self.supervision.noteworthy():
            from ..mc.report import format_run_stats
            line += f", {format_run_stats(self.supervision)}"
        return line


def shard_keys(spec: CampaignSpec, sources: dict) -> dict:
    """Journal/cache key per shard index."""
    fp = campaign_fingerprint()
    spec_json = spec.to_json()
    digests = [(path, source_fingerprint(text))
               for path, text in sources.items()]
    keys = {}
    for shard in range(spec.n_shards):
        keys[shard] = _sha256(
            fp.encode(), spec_json.encode(), str(shard).encode(),
            *(f"{p}\x00{d}".encode() for p, d in digests),
            f"schema={SCHEMA_VERSION}".encode(),
        )
    return keys


def run_campaign(spec: CampaignSpec, *, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[RunJournal] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 observation=None) -> CampaignRun:
    """Execute a campaign's shards across the supervised fleet.

    Returns merged outcomes in global run order.  Interruption
    (SIGINT/SIGTERM via the policy's stop flag) drains gracefully:
    completed shards are journaled, the rest surface in
    ``incomplete_shards``, and a later ``--resume`` replays the journal
    and runs only the remainder — byte-identical outcomes guaranteed by
    the determinism of :mod:`repro.campaign.plans`.  ``observation``
    (a :class:`repro.obs.Observation`) enables span tracing, metrics,
    and ``--progress`` for shards exactly as for checker items; the
    cross-tab is identical with or without it.
    """
    from ..project import read_sources

    sources = read_sources(list(spec.files))
    config = WorkerConfig(
        campaign_spec=spec.to_json(),
        fault_plan=policy.fault_plan if policy is not None else None,
        trace_dir=(observation.worker_trace_dir
                   if observation is not None else None),
        collect_obs=observation is not None,
        heartbeat_dir=(observation.worker_heartbeat_dir
                       if observation is not None else None),
    )
    items = [
        WorkItem(kind="campaign", checker="", paths=tuple(spec.files),
                 weight=min(spec.runs - shard * spec.shard_size,
                            spec.shard_size),
                 index=shard)
        for shard in range(spec.n_shards)
    ]
    keys = shard_keys(spec, sources)
    payloads, _budget, run_stats = _run_items(
        items, config, jobs, cache, keys, journal=journal, policy=policy,
        observation=observation)

    outcomes = []
    incomplete = []
    for shard in range(spec.n_shards):
        payload = payloads.get(shard)
        if (payload is None or payload.get("degraded")
                or payload.get("quarantines")):
            notes = (payload or {}).get("degradation_notes") or []
            incomplete.append({"shard": shard,
                               "note": notes[0] if notes else "missing"})
            continue
        if payload.get("campaign") != CAMPAIGN_SCHEMA:
            raise ReproError(
                f"shard {shard} payload is from an incompatible campaign "
                f"schema; clear the cache or rerun without --resume")
        outcomes.extend(payload.get("outcomes", ()))
    outcomes.sort(key=lambda o: o["run"])
    return CampaignRun(
        spec=spec, outcomes=outcomes, incomplete_shards=incomplete,
        jobs=jobs, stats=cache.stats if cache is not None else None,
        run_id=journal.run_id if journal is not None else None,
        supervision=run_stats,
    )
