"""Buffer-pool/lane/directory invariants as executable properties.

Each :class:`Property` names one dynamic bug class the simulator can
observe, the :class:`~repro.flash.sim.machine.SimStats` evidence that
detects it, and the static checkers whose reports predict it.  This is
the shared vocabulary of the whole campaign subsystem:

- the **runner** evaluates properties over every run's stats;
- the **shrinker**'s predicate is "the same properties still fail";
- the **cross-tab** matches a run's violated properties against static
  report checkers to decide confirmed / unmanifested / checker gap;
- the **hypothesis property tests** drive the simulator directly and
  assert :func:`machine_invariants` — the structural state invariants —
  hold after any workload.

Counter-backed properties use the machine's per-handler attribution
(``SimStats.attribution``) so a violation is pinned to the handler that
was running when the counter moved; structural properties (leaks,
deadlock) have no single culprit handler and match against the run's
executed functions instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class Property:
    """One dynamic bug class and the static checkers that predict it."""

    name: str
    #: ``SimStats`` counter backing the property, or "" for structural
    #: properties evaluated from dedicated stats fields.
    counter: str
    #: Registered checker names whose reports this property confirms.
    checkers: tuple
    description: str


#: The campaign's property set.  Checker attributions follow the
#: paper's sections: buffer-mgmt (§6 refcounts), buffer-race (§4
#: WAIT_FOR_DB_FULL), alloc-fail (§9 unchecked DB_ALLOC — an unchecked
#: failed allocation manifests as wild derefs and double frees),
#: msg-length (§5), send-wait (§9), directory (§9), lanes (§7).
PROPERTIES = (
    Property("buffer-refcount", "double_frees",
             ("buffer-mgmt", "alloc-fail"),
             "no buffer is freed more often than it was allocated"),
    Property("buffer-use-after-free", "use_after_free",
             ("buffer-mgmt", "buffer-race", "alloc-fail"),
             "no handler reads a buffer after its refcount hit zero"),
    Property("buffer-sync", "unsynchronized_reads",
             ("buffer-race",),
             "no handler reads buffer data before WAIT_FOR_DB_FULL"),
    Property("msg-length", "msglen_mismatches",
             ("msg-length",),
             "a send's has-data flag agrees with its header length"),
    Property("send-wait", "pending_wait_violations",
             ("send-wait",),
             "every send that requests a reply is followed by a wait"),
    Property("directory-writeback", "stale_directory_writebacks",
             ("directory",),
             "modified directory entries are written back"),
    Property("lane-capacity", "lane_overruns",
             ("lanes",),
             "no handler sends beyond its lane allowance"),
    Property("refcount-negative", "refcount_errors",
             ("buffer-mgmt",),
             "refcounts never go below zero"),
    Property("buffer-leak", "leaked_buffers",
             ("buffer-mgmt", "alloc-fail"),
             "every allocated buffer is freed by the end of the run"),
    Property("no-deadlock", "",
             ("buffer-mgmt", "lanes"),
             "the machine never wedges (drained pool, FATAL_ERROR)"),
)

_BY_NAME = {p.name: p for p in PROPERTIES}

#: ``report.checker`` values that are metal machine names rather than
#: registered checker names (the two built-in checkers whose listings
#: name their state machine differently).
CHECKER_ALIASES = {
    "wait_for_db": "buffer-race",
    "msglen_check": "msg-length",
}


def property_by_name(name: str) -> Property:
    prop = _BY_NAME.get(name)
    if prop is None:
        raise ReproError(f"unknown campaign property {name!r}")
    return prop


def canonical_checker(name: str) -> str:
    """Map a report's ``checker`` field to its registered checker name."""
    return CHECKER_ALIASES.get(name, name)


@dataclass(frozen=True)
class Violation:
    """One property violated by one run."""

    property: str
    count: int
    #: Handlers the machine attributed the counter movement to, sorted;
    #: empty for structural properties (leak/deadlock), which match any
    #: executed function.
    handlers: tuple = ()

    def to_obj(self) -> dict:
        return {"property": self.property, "count": self.count,
                "handlers": list(self.handlers)}

    @classmethod
    def from_obj(cls, obj: dict) -> "Violation":
        return cls(property=obj["property"], count=int(obj["count"]),
                   handlers=tuple(obj.get("handlers", ())))


def violations_of(stats) -> list:
    """Evaluate every property over one run's :class:`SimStats`.

    Deterministic: properties are checked in declaration order and
    handler attributions come pre-sorted from the machine.
    """
    found = []
    for prop in PROPERTIES:
        if prop.counter:
            count = getattr(stats, prop.counter, 0)
            if count:
                handlers = tuple(
                    sorted(stats.attribution.get(prop.counter, ())))
                found.append(Violation(prop.name, count, handlers))
        elif prop.name == "no-deadlock" and stats.deadlock:
            handlers = ((stats.deadlock_handler,)
                        if stats.deadlock_handler else ())
            found.append(Violation(prop.name, 1, handlers))
    return found


def machine_invariants(machine) -> list:
    """Structural invariants of a live :class:`FlashMachine`.

    Returns human-readable descriptions of every violated invariant
    (empty list = healthy).  These hold *by construction* no matter how
    buggy the simulated protocol is — a violation here is a simulator
    bug, which is exactly what the hypothesis property tests hunt.
    """
    broken = []
    for node in machine.nodes:
        pool = node.pool
        for buf in pool.buffers:
            if buf.refcount < 0:
                broken.append(
                    f"node {node.node_id}: buffer {buf.index} refcount "
                    f"{buf.refcount} < 0")
        for lane, queue in enumerate(node.queues.queues):
            if len(queue) > node.queues.capacity:
                broken.append(
                    f"node {node.node_id}: lane {lane} holds {len(queue)} "
                    f"messages, capacity {node.queues.capacity}")
        for counter in ("double_frees", "use_after_free",
                        "unsynchronized_reads", "refcount_errors"):
            if getattr(pool, counter, 0) < 0:
                broken.append(
                    f"node {node.node_id}: pool counter {counter} negative")
    return broken
