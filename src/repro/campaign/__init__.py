"""Fleet-scale simulation campaigns with static×dynamic cross-validation.

The paper's checkers are *static*: they flag handler code that can
double-free a buffer or overrun a lane.  The simulator is *dynamic*: it
actually runs handlers under seeded workloads and fault plans and counts
the violations that manifest.  This package closes the loop at fleet
scale — ``mc-check campaign`` shards thousands of
``(seed, workload, fault-plan)`` simulation runs across the supervised
worker pool, journals every shard so an interrupted campaign resumes
byte-identically, shrinks every failing run to a minimal counterexample,
and cross-tabulates the dynamic outcomes against the static reports:

- **dynamically confirmed** — a static report whose bug class manifested
  in a run that executed the reported function;
- **unmanifested** — a static report the campaign never triggered;
- **checker gap** — a dynamic violation no static report predicts.

Modules: :mod:`plans` (deterministic seed derivation, per-run fault-plan
generation, sharding), :mod:`properties` (buffer-pool/lane/directory
invariants as executable properties), :mod:`runner` (worker-side shard
execution), :mod:`shrink` (delta-debugging minimizer),
:mod:`crosstab` (the three-way verdict report), :mod:`fleet`
(parent-side orchestration over :func:`repro.mc.parallel._run_items`).
"""

from .crosstab import CROSSTAB_SCHEMA, cross_tabulate, crosstab_to_json, render_crosstab
from .fleet import CampaignRun, campaign_fingerprint, run_campaign
from .plans import CAMPAIGN_SCHEMA, CampaignSpec, RunPlan, derive_seed, plan_for_run, runs_for_shard
from .properties import PROPERTIES, Violation, machine_invariants, property_by_name, violations_of
from .shrink import ShrinkResult, shrink_run

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CROSSTAB_SCHEMA",
    "CampaignRun",
    "CampaignSpec",
    "PROPERTIES",
    "RunPlan",
    "ShrinkResult",
    "Violation",
    "campaign_fingerprint",
    "cross_tabulate",
    "crosstab_to_json",
    "derive_seed",
    "machine_invariants",
    "plan_for_run",
    "property_by_name",
    "render_crosstab",
    "run_campaign",
    "runs_for_shard",
    "shrink_run",
    "violations_of",
]
