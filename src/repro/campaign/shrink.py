"""Delta-debugging shrinker for failing simulation runs.

Before a campaign reports a crash it minimizes the counterexample —
the property-based-testing discipline (Cheney/Momigliano/Pessina) that
turns "run 4217 of the campaign failed" into "2 messages under one
alloc_fail rule reproduce it".  The shrinker minimizes along the two
axes a :class:`~repro.campaign.plans.RunPlan` has:

- **fault rules**: greedy one-minimal delta debugging — repeatedly drop
  any rule whose removal keeps the failure, to a fixpoint.  The result
  is 1-minimal: removing any single remaining rule loses the failure.
- **workload size**: the workload stream is a prefix-deterministic
  function of its seed (``random.Random`` draws in message order), so
  a shorter ``messages`` is exactly a prefix of the original run.
  Binary search finds the shortest failing prefix.

The predicate is *signature-preserving*: a candidate counts as failing
only if it violates every property the original run violated, so the
minimal repro reproduces the same failure, not a different (easier)
one.  Every candidate execution is one predicate call; the caller's
``execute`` runs the simulator and returns the violated property names.
Shrinking is deterministic — same plan, same targets, same simulator →
same minimal plan and same iteration count — which keeps shrunk
counterexamples inside journaled shard payloads byte-identical on
``--resume``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..faults.plan import FaultPlan
from .plans import RunPlan

#: Hard cap on predicate executions per shrink: bounds worker time on
#: pathological plans (the cap is generous — typical shrinks take
#: 5-15 executions).
MAX_SHRINK_EXECUTIONS = 64


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal failing plan and the work it took to find it."""

    plan: RunPlan
    iterations: int
    #: True when the iteration cap stopped the search early (the plan
    #: is still failing, just not guaranteed minimal).
    capped: bool = False


def _with_rules(plan: RunPlan, rules: tuple) -> RunPlan:
    if not rules:
        return replace(plan, fault_plan=None)
    base = plan.fault_plan
    return replace(plan, fault_plan=FaultPlan(rules=tuple(rules),
                                              seed=base.seed))


def shrink_run(plan: RunPlan, targets: frozenset,
               execute: Callable[[RunPlan], frozenset],
               max_executions: int = MAX_SHRINK_EXECUTIONS) -> ShrinkResult:
    """Minimize ``plan`` while ``targets`` (property names) still fail.

    ``execute`` runs one candidate and returns its violated property
    names; the original ``plan`` is assumed failing (its execution is
    not re-counted).  Returns the smallest plan found plus the number
    of candidate executions spent.
    """
    iterations = 0
    capped = False

    def fails(candidate: RunPlan) -> bool:
        nonlocal iterations
        iterations += 1
        return targets <= frozenset(execute(candidate))

    def budget_left() -> bool:
        nonlocal capped
        if iterations >= max_executions:
            capped = True
            return False
        return True

    current = plan

    def drop_rules() -> None:
        nonlocal current
        changed = True
        while changed and budget_left():
            changed = False
            rules = (current.fault_plan.rules
                     if current.fault_plan is not None else ())
            for i in range(len(rules)):
                if not budget_left():
                    return
                candidate = _with_rules(
                    current, rules[:i] + rules[i + 1:])
                if fails(candidate):
                    current = candidate
                    changed = True
                    break  # restart over the shorter rule list

    def shrink_messages() -> None:
        nonlocal current
        lo, hi = 1, current.messages
        while lo < hi and budget_left():
            mid = (lo + hi) // 2
            candidate = replace(current, messages=mid)
            if fails(candidate):
                hi = mid
                current = candidate
            else:
                lo = mid + 1

    drop_rules()
    shrink_messages()
    # A shorter workload can make more rules redundant (their trigger
    # windows fall off the end of the run): one more pass.
    drop_rules()
    return ShrinkResult(plan=current, iterations=iterations, capped=capped)
