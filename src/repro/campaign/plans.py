"""Campaign plans: deterministic seeds, fault-plan generation, sharding.

A campaign is a batch of ``runs`` simulation runs over one protocol.
Every run is fully determined by the :class:`CampaignSpec` and its run
index — the per-run workload seed and fault plan derive from
``sha256("mc-campaign:<seed>:<role>:<run>")``, never from process state,
``PYTHONHASHSEED``, or platform word size.  That is what makes campaigns
resumable and shardable: a shard re-executed on ``--resume`` (or on a
different machine) replays exactly the runs the original shard would
have, and the journal's byte-identity guarantee holds end to end.

Shards are fixed, contiguous slices of the run-index space.  Run plans
depend only on the *global* run index, so re-sharding a campaign (a
different ``--shard-size``) changes scheduling but not one bit of any
run's workload or fault plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from ..errors import ReproError
from ..faults.plan import SIM_SITES, FaultPlan, FaultRule

#: Bump when the campaign payload/plan shape changes; folded into cache
#: and journal keys so old shard payloads can never replay.
CAMPAIGN_SCHEMA = 1

#: Fault sites a campaign draws rules from by default — every
#: simulator-side site except ``handler_crash`` is failure-path
#: *pressure*; ``handler_crash`` is included because aborted handlers
#: are exactly how leaks and stale directory entries surface.
DEFAULT_FAULT_SITES = tuple(sorted(SIM_SITES))


def derive_seed(campaign_seed: int, role: str, index: int) -> int:
    """A stable 63-bit seed for one (role, run-index) of a campaign.

    SHA-256 over a fixed textual recipe: identical on every platform,
    Python version, and process — the regression anchor for the
    campaign determinism audit (tests/test_campaign.py pins exact
    values).
    """
    material = f"mc-campaign:{campaign_seed}:{role}:{index}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's runs, JSON-serialisable.

    Shipped to workers once (``WorkerConfig.campaign_spec``) and folded
    into every shard's cache/journal key, so two campaigns differing in
    any field never share journal entries.
    """

    files: tuple = ()                 # protocol sources, in input order
    dispatch: tuple = ()              # ((opcode, handler), ...) sorted
    runs: int = 100
    shard_size: int = 10
    seed: int = 7
    nodes: int = 2
    buffers: int = 16
    lane_capacity: int = 8
    max_hops: int = 2
    messages: int = 25
    fault_sites: tuple = DEFAULT_FAULT_SITES
    max_fault_rules: int = 3

    def __post_init__(self):
        if self.runs < 1:
            raise ReproError("campaign needs at least one run")
        if self.shard_size < 1:
            raise ReproError("campaign shard size must be >= 1")
        if not self.dispatch:
            raise ReproError("campaign needs a dispatch table "
                             "(--dispatch OP=HANDLER or --spec)")
        unknown = sorted(set(self.fault_sites) - SIM_SITES)
        if unknown:
            raise ReproError(
                f"unknown fault site(s) {', '.join(unknown)}; "
                f"simulator sites: {', '.join(sorted(SIM_SITES))}")

    @property
    def n_shards(self) -> int:
        return (self.runs + self.shard_size - 1) // self.shard_size

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace variance)."""
        obj = {
            "schema": CAMPAIGN_SCHEMA,
            "files": list(self.files),
            "dispatch": [[op, name] for op, name in self.dispatch],
            "runs": self.runs,
            "shard_size": self.shard_size,
            "seed": self.seed,
            "nodes": self.nodes,
            "buffers": self.buffers,
            "lane_capacity": self.lane_capacity,
            "max_hops": self.max_hops,
            "messages": self.messages,
            "fault_sites": list(self.fault_sites),
            "max_fault_rules": self.max_fault_rules,
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            obj = json.loads(text)
        except ValueError as exc:
            raise ReproError(f"bad campaign spec JSON: {exc}") from None
        if not isinstance(obj, dict) or obj.get("schema") != CAMPAIGN_SCHEMA:
            raise ReproError("campaign spec is from an incompatible schema")
        return cls(
            files=tuple(obj["files"]),
            dispatch=tuple((int(op), str(name))
                           for op, name in obj["dispatch"]),
            runs=int(obj["runs"]),
            shard_size=int(obj["shard_size"]),
            seed=int(obj["seed"]),
            nodes=int(obj["nodes"]),
            buffers=int(obj["buffers"]),
            lane_capacity=int(obj["lane_capacity"]),
            max_hops=int(obj["max_hops"]),
            messages=int(obj["messages"]),
            fault_sites=tuple(obj["fault_sites"]),
            max_fault_rules=int(obj["max_fault_rules"]),
        )


@dataclass(frozen=True)
class RunPlan:
    """One simulation run, fully pinned: seed + workload + fault plan."""

    run_index: int
    seed: int                          # workload RNG seed
    messages: int
    fault_plan: Optional[FaultPlan] = None

    def to_obj(self) -> dict:
        return {
            "run": self.run_index,
            "seed": self.seed,
            "messages": self.messages,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None
                           and self.fault_plan.rules else None),
        }


def _fault_plan_for(spec: CampaignSpec, run_index: int) -> Optional[FaultPlan]:
    """The run's generated fault plan (possibly empty = fault-free).

    Drawn from a ``Random`` seeded *only* by ``derive_seed`` — rule
    count, sites, and trigger cadence are a pure function of
    (campaign seed, run index).  Roughly a quarter of runs get no rules
    at all: fault-free runs are the baseline that keeps "manifests
    without help" distinguishable from "manifests only under pressure".
    """
    rng = Random(derive_seed(spec.seed, "faults", run_index))
    sites = sorted(spec.fault_sites)
    n_rules = rng.randint(0, spec.max_fault_rules)
    rules = []
    for _ in range(n_rules):
        site = rng.choice(sites)
        rule = FaultRule(
            site=site,
            after=rng.randint(0, 12),
            every=rng.randint(2, 13),
            count=rng.choice((0, 0, rng.randint(1, 6))) or None,
        )
        rules.append(rule)
    if not rules:
        return None
    return FaultPlan(rules=tuple(rules),
                     seed=derive_seed(spec.seed, "plan", run_index) & 0xFFFF)


def plan_for_run(spec: CampaignSpec, run_index: int) -> RunPlan:
    """The fully-derived plan for one global run index."""
    if not 0 <= run_index < spec.runs:
        raise ReproError(f"run index {run_index} outside campaign "
                         f"(runs={spec.runs})")
    return RunPlan(
        run_index=run_index,
        seed=derive_seed(spec.seed, "workload", run_index),
        messages=spec.messages,
        fault_plan=_fault_plan_for(spec, run_index),
    )


def runs_for_shard(spec: CampaignSpec, shard_index: int) -> list:
    """The contiguous slice of run plans shard ``shard_index`` executes."""
    if not 0 <= shard_index < spec.n_shards:
        raise ReproError(f"shard {shard_index} outside campaign "
                         f"(shards={spec.n_shards})")
    start = shard_index * spec.shard_size
    stop = min(start + spec.shard_size, spec.runs)
    return [plan_for_run(spec, i) for i in range(start, stop)]
