"""Run metrics: counters, gauges, and latency histograms.

One :class:`MetricsRegistry` accumulates everything quantitative about
a run — machine steps, states created, paths explored, cache hit/miss/
corrupt, retries, quarantines, per-checker latency — and snapshots to
a plain JSON document (``--metrics-out metrics.json``) rendered for
humans by ``mc-check stats``.

The registry is deliberately dependency-free and process-local: each
worker process fills a fresh registry per work item, ships the snapshot
back inside the result payload, and the parent merges.  Names follow a
``component.measure`` convention; the glossary lives in
``docs/observability.md``.
"""

from __future__ import annotations

import math
from typing import Optional

#: Metrics document schema; bump when the snapshot shape changes.
METRICS_SCHEMA = 1


class Histogram:
    """Raw-sample histogram (run-scale cardinality: one value per item).

    Stores every observation, so percentiles are exact; a run has at
    most a few thousand work items, which keeps this honest and tiny.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def percentile(self, q: float) -> float:
        """Exact q-th percentile of the samples, nearest-rank method.

        The textbook definition: rank ``ceil(q/100 * n)`` (1-based),
        clamped to ``[1, n]``.  Unlike the interpolating variants, this
        is well-behaved on the edge cases a per-run histogram actually
        hits: an empty histogram is 0.0, a single sample is every
        percentile, and p99 of a tiny sample set is the max rather than
        an index rounded down to a middling sample.
        """
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if q <= 0:
            return ordered[0]
        rank = min(len(ordered), math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        values = self.values
        return {
            "count": len(values),
            "sum": round(sum(values), 6),
            "min": round(min(values), 6) if values else 0.0,
            "max": round(max(values), 6) if values else 0.0,
            "p50": round(self.percentile(50), 6),
            "p90": round(self.percentile(90), 6),
            "p99": round(self.percentile(99), 6),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms for one run (or one work item)."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- merging -------------------------------------------------------------

    def merge_counters(self, counters: Optional[dict]) -> None:
        """Fold a worker item's counter snapshot into this registry."""
        if not counters:
            return
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                self.counters[name] = self.counters.get(name, 0) + value

    # -- output --------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: round(self.gauges[k], 6)
                       for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].snapshot()
                           for k in sorted(self.histograms)},
        }


# -- the process-wide active registry ----------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The process's active registry, or ``None`` when collection is off."""
    return _ACTIVE


def activate_metrics(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as active; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


# -- snapshot validation -----------------------------------------------------

_HIST_KEYS = ("count", "sum", "min", "max", "p50", "p90", "p99")


def validate_metrics_snapshot(snapshot) -> Optional[str]:
    """Why ``snapshot`` is not a usable metrics document, or ``None``.

    The renderers below assume numeric values and complete histogram
    stat blocks; a hand-edited or truncated ``metrics.json`` must come
    back as a structured error from ``mc-check stats``, never a
    formatting traceback.
    """
    if not isinstance(snapshot, dict):
        return "not a JSON object"
    if snapshot.get("schema") != METRICS_SCHEMA:
        return (f"unsupported metrics schema "
                f"{snapshot.get('schema')!r} (expected {METRICS_SCHEMA})")
    for section in ("counters", "gauges", "histograms"):
        block = snapshot.get(section, {})
        if not isinstance(block, dict):
            return f"{section!r} is not an object"
        for name, value in block.items():
            if not isinstance(name, str):
                return f"{section!r} has a non-string metric name"
            if section == "histograms":
                if not isinstance(value, dict):
                    return f"histogram {name!r} is not an object"
                for key in _HIST_KEYS:
                    if not isinstance(value.get(key), (int, float)) \
                            or isinstance(value.get(key), bool):
                        return (f"histogram {name!r} is missing numeric "
                                f"{key!r}")
            elif not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                return f"{section[:-1]} {name!r} is not numeric"
    return None


# -- human rendering (``mc-check stats``) ------------------------------------

def format_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot as the ``mc-check stats`` table."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        width = max((len(n) for n in list(counters) + list(gauges)),
                    default=6)
        lines.append(f"{'metric':{width}s} {'value':>14s}")
        lines.append("-" * (width + 15))
        for name in sorted(counters):
            lines.append(f"{name:{width}s} {counters[name]:14d}")
        for name in sorted(gauges):
            lines.append(f"{name:{width}s} {gauges[name]:14.4f}")
    hists = snapshot.get("histograms", {})
    if hists:
        if lines:
            lines.append("")
        width = max(len(n) for n in hists)
        lines.append(f"{'histogram':{width}s} {'count':>6s} {'p50':>9s} "
                     f"{'p90':>9s} {'p99':>9s} {'max':>9s}")
        lines.append("-" * (width + 46))
        for name in sorted(hists):
            h = hists[name]
            lines.append(
                f"{name:{width}s} {h['count']:6d} {h['p50']:9.4f} "
                f"{h['p90']:9.4f} {h['p99']:9.4f} {h['max']:9.4f}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


# -- Prometheus text exposition (``mc-check stats --format prometheus``) -----

def _prom_name(name: str) -> str:
    """A metric name in Prometheus grammar: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "mc_check_" + (cleaned or "unnamed")


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_number(value) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return repr(float(value))


def format_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters become ``mc_check_<name>_total`` counter families, gauges
    become gauges, and histograms are exported as summaries (quantile
    labels + ``_sum``/``_count``), since the registry stores exact
    percentiles rather than cumulative buckets.  Per-checker latency
    series (``checker.wall_seconds.<name>``) fold into one family with
    a ``checker`` label.  Output is deterministically ordered so a
    golden file can pin it in CI.
    """
    out: list[str] = []

    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        prom = _prom_name(name) + "_total"
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {_prom_number(counters[name])}")

    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_prom_number(gauges[name])}")

    # Group labelled histogram families: checker.wall_seconds.<checker>
    # shares one family; everything else is its own family.
    families: dict[str, list[tuple[Optional[str], dict]]] = {}
    for name in sorted(snapshot.get("histograms", {})):
        stats = snapshot["histograms"][name]
        if name.startswith("checker.wall_seconds."):
            families.setdefault("checker.wall_seconds", []).append(
                (name[len("checker.wall_seconds."):], stats))
        else:
            families.setdefault(name, []).append((None, stats))
    for family in sorted(families):
        prom = _prom_name(family)
        out.append(f"# TYPE {prom} summary")
        for label, stats in families[family]:
            base = (f'checker="{_prom_escape(label)}",'
                    if label is not None else "")
            for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                out.append(f'{prom}{{{base}quantile="{q}"}} '
                           f"{_prom_number(stats[key])}")
            suffix = f'{{checker="{_prom_escape(label)}"}}' \
                if label is not None else ""
            out.append(f"{prom}_sum{suffix} {_prom_number(stats['sum'])}")
            out.append(f"{prom}_count{suffix} {_prom_number(stats['count'])}")

    return "\n".join(out) + ("\n" if out else "")
