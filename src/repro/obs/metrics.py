"""Run metrics: counters, gauges, and latency histograms.

One :class:`MetricsRegistry` accumulates everything quantitative about
a run — machine steps, states created, paths explored, cache hit/miss/
corrupt, retries, quarantines, per-checker latency — and snapshots to
a plain JSON document (``--metrics-out metrics.json``) rendered for
humans by ``mc-check stats``.

The registry is deliberately dependency-free and process-local: each
worker process fills a fresh registry per work item, ships the snapshot
back inside the result payload, and the parent merges.  Names follow a
``component.measure`` convention; the glossary lives in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Optional

#: Metrics document schema; bump when the snapshot shape changes.
METRICS_SCHEMA = 1


class Histogram:
    """Raw-sample histogram (run-scale cardinality: one value per item).

    Stores every observation, so percentiles are exact; a run has at
    most a few thousand work items, which keeps this honest and tiny.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank) of the samples."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        values = self.values
        return {
            "count": len(values),
            "sum": round(sum(values), 6),
            "min": round(min(values), 6) if values else 0.0,
            "max": round(max(values), 6) if values else 0.0,
            "p50": round(self.percentile(50), 6),
            "p90": round(self.percentile(90), 6),
            "p99": round(self.percentile(99), 6),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms for one run (or one work item)."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- merging -------------------------------------------------------------

    def merge_counters(self, counters: Optional[dict]) -> None:
        """Fold a worker item's counter snapshot into this registry."""
        if not counters:
            return
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                self.counters[name] = self.counters.get(name, 0) + value

    # -- output --------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: round(self.gauges[k], 6)
                       for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].snapshot()
                           for k in sorted(self.histograms)},
        }


# -- the process-wide active registry ----------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The process's active registry, or ``None`` when collection is off."""
    return _ACTIVE


def activate_metrics(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as active; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


# -- human rendering (``mc-check stats``) ------------------------------------

def format_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot as the ``mc-check stats`` table."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        width = max((len(n) for n in list(counters) + list(gauges)),
                    default=6)
        lines.append(f"{'metric':{width}s} {'value':>14s}")
        lines.append("-" * (width + 15))
        for name in sorted(counters):
            lines.append(f"{name:{width}s} {counters[name]:14d}")
        for name in sorted(gauges):
            lines.append(f"{name:{width}s} {gauges[name]:14.4f}")
    hists = snapshot.get("histograms", {})
    if hists:
        if lines:
            lines.append("")
        width = max(len(n) for n in hists)
        lines.append(f"{'histogram':{width}s} {'count':>6s} {'p50':>9s} "
                     f"{'p90':>9s} {'p99':>9s} {'max':>9s}")
        lines.append("-" * (width + 46))
        for name in sorted(hists):
            h = hists[name]
            lines.append(
                f"{name:{width}s} {h['count']:6d} {h['p50']:9.4f} "
                f"{h['p90']:9.4f} {h['p99']:9.4f} {h['max']:9.4f}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
