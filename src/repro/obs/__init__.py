"""``repro.obs`` — observability for the MC engine and checker fleet.

Three layers, importable piecemeal (nothing here imports the engine, so
the engine can import us without cycles):

* :mod:`repro.obs.trace` — structured JSONL span tracing
  (``--trace FILE``), per-worker files merged deterministically;
* :mod:`repro.obs.metrics` — counters/gauges/histograms
  (``--metrics-out FILE``, ``mc-check stats``);
* :mod:`repro.obs.provenance` — per-diagnostic path provenance
  (``mc-check explain``).

:class:`Observation` is the parent-side run context the CLI builds from
``--trace``/``--metrics-out`` and threads through
:func:`repro.mc.parallel.check_files` / ``metal_files``.  When it is
``None`` (the default) no observability code runs at all.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    activate_metrics,
    current_metrics,
    format_metrics,
)
from .provenance import (
    build_steps,
    provenance_from_obj,
    provenance_to_obj,
    render_explain,
    report_id,
    report_key,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    activate_tracer,
    current_tracer,
    merge_trace,
    read_trace,
    span_record,
)

__all__ = [
    "Observation",
    "MetricsRegistry", "activate_metrics", "current_metrics",
    "format_metrics", "METRICS_SCHEMA",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "span_record",
    "activate_tracer", "current_tracer", "merge_trace", "read_trace",
    "TRACE_SCHEMA",
    "build_steps", "provenance_from_obj", "provenance_to_obj",
    "render_explain", "report_id", "report_key",
]


class Observation:
    """Parent-side observability context for one fleet run.

    Collects three streams while the run executes — parent-side span
    records for items that never reached a worker (cache hits, journal
    replays, quarantines, interruption skips), metric counters absorbed
    from worker payloads, and per-worker trace files — then
    :meth:`finalize` merges them into the ``--trace`` file and the
    ``--metrics-out`` document.
    """

    def __init__(self, trace_path: Optional[str] = None,
                 metrics_path: Optional[str] = None,
                 progress=None):
        self.trace_path = Path(trace_path) if trace_path else None
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.metrics = MetricsRegistry()
        self.trace_dir: Optional[Path] = None
        if self.trace_path is not None:
            self.trace_dir = Path(tempfile.mkdtemp(prefix="mc-trace-"))
        self.progress = progress
        self.heartbeat_dir: Optional[Path] = None
        if progress is not None:
            self.heartbeat_dir = Path(tempfile.mkdtemp(prefix="mc-hb-"))
            progress.heartbeat_dir = str(self.heartbeat_dir)
        self._records: list[dict] = []
        self._t0 = time.time()
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        self._item_total = 0
        self._item_resolved = 0
        self.trace_stats: Optional[dict] = None

    # -- hooks called by the fleet driver ------------------------------------

    @property
    def worker_trace_dir(self) -> Optional[str]:
        return str(self.trace_dir) if self.trace_dir is not None else None

    @property
    def worker_heartbeat_dir(self) -> Optional[str]:
        return (str(self.heartbeat_dir)
                if self.heartbeat_dir is not None else None)

    def set_item_total(self, n: int) -> None:
        self._item_total = n
        self.metrics.inc("fleet.items", n)

    def begin_pool(self, pending: int) -> None:
        """The fleet is about to run ``pending`` items in the pool; the
        rest of the total resolved parent-side."""
        self._item_resolved = self._item_total - pending
        if self.progress is not None:
            self.progress.begin(self._item_total, self._item_resolved)

    def item_resolved(self, item, label: str, status: str) -> None:
        """Record an item that resolved parent-side (never ran a worker
        this attempt): cache hit, journal replay, poison quarantine, or
        an interruption skip."""
        self.metrics.inc(f"fleet.items_{status}")
        if self.trace_dir is None:
            return
        self._records.append(span_record(
            span_id=f"i{item.index}", parent="run", kind="checker",
            name=label, item=item.index, attempt=None, seq=0,
            t0=time.time(), wall=0.0, cpu=0.0, status=status,
            counters={}, attrs={"units": list(item.paths)},
        ))

    def absorb_payload(self, item, label: str, payload: dict) -> None:
        """Fold one fresh worker payload's ``obs`` section into the run
        metrics (engine counters, item latency histograms)."""
        self.metrics.inc("fleet.items_fresh")
        obs = payload.get("obs")
        if not isinstance(obs, dict):
            return
        self.metrics.merge_counters(obs.get("counters"))
        wall = obs.get("wall")
        if isinstance(wall, (int, float)):
            self.metrics.observe("item.wall_seconds", wall)
            self.metrics.observe(f"checker.wall_seconds.{label}", wall)

    # -- completion ----------------------------------------------------------

    def _count_reports(self, run) -> None:
        reports: list = []
        quarantines = 0
        degraded = 0
        results = getattr(run, "results", None)
        sinks = getattr(run, "sinks", None)
        if results is not None:
            for result in results.values():
                reports.extend(result.reports)
                quarantines += len(result.quarantines)
                degraded += 1 if result.degraded else 0
        elif sinks is not None:
            for _path, sink in sinks:
                reports.extend(sink.reports)
                quarantines += len(sink.quarantines)
                degraded += 1 if sink.degraded else 0
        else:
            # Campaign runs carry a cross-tab instead of per-file
            # sinks; report totals for them come from the cross-tab
            # counters the campaign layer merges separately.
            return
        self.metrics.inc("reports.emitted", len(reports))
        self.metrics.inc("reports.errors",
                         sum(1 for r in reports if r.severity == "error"))
        self.metrics.inc("reports.warnings",
                         sum(1 for r in reports if r.severity == "warning"))
        self.metrics.inc("quarantines", quarantines)
        self.metrics.inc("fleet.degraded_results", degraded)

    def _count_run(self, run) -> None:
        stats = getattr(run, "stats", None)
        if stats is not None:
            self.metrics.inc("cache.hits", stats.hits)
            self.metrics.inc("cache.misses", stats.misses)
            self.metrics.inc("cache.stores", stats.stores)
            self.metrics.inc("cache.corrupt", stats.corrupt)
        supervision = getattr(run, "supervision", None)
        if supervision is not None:
            self.metrics.inc("fleet.retries", supervision.retried)
            self.metrics.inc("fleet.crashes", supervision.crashes)
            self.metrics.inc("fleet.timeouts", supervision.timeouts)
            self.metrics.inc("fleet.interrupted",
                             1 if supervision.interrupted else 0)
        self.metrics.gauge("run.jobs", getattr(run, "jobs", 1))
        self.metrics.gauge("run.wall_seconds",
                           time.perf_counter() - self._w0)

    def finalize(self, run) -> dict:
        """Close the run: count totals, merge the trace, write metrics.

        ``run`` is a :class:`repro.mc.parallel.CheckRun` or ``MetalRun``.
        Returns ``{"trace": merge stats or None, "metrics": snapshot or
        None}`` so the CLI can print a one-line summary to stderr.
        """
        self._count_reports(run)
        self._count_run(run)
        out: dict = {"trace": None, "metrics": None}
        if self.trace_path is not None:
            run_record = span_record(
                span_id="run", parent=None, kind="run", name="mc-check",
                item=None, attempt=None, seq=0, t0=self._t0,
                wall=time.perf_counter() - self._w0,
                cpu=time.process_time() - self._c0,
                status="skipped" if getattr(run, "interrupted", False)
                else "ok",
                counters=dict(self.metrics.counters),
                attrs={"jobs": getattr(run, "jobs", 1),
                       "items": self._item_total,
                       "run_id": getattr(run, "run_id", None)},
            )
            self.trace_stats = merge_trace(
                self.trace_dir, [run_record] + self._records,
                self.trace_path)
            out["trace"] = self.trace_stats
            if self.trace_dir is not None:
                shutil.rmtree(self.trace_dir, ignore_errors=True)
                self.trace_dir = None
        if self.heartbeat_dir is not None:
            shutil.rmtree(self.heartbeat_dir, ignore_errors=True)
            self.heartbeat_dir = None
            if self.progress is not None:
                self.progress.heartbeat_dir = None
        snapshot = self.metrics.snapshot()
        if self.metrics_path is not None:
            import json
            self.metrics_path.write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        out["metrics"] = snapshot
        return out
