"""Diagnostic provenance: the path that produced each report.

The paper's authors triaged false positives by hand — re-deriving, for
every suspicious diagnostic, the execution path that led the checker to
it.  This module makes that path a first-class artifact: the engine
records, for the *first* emission of every report, the interleaved
source-line + state-machine-transition trail from function entry to the
reporting site, and ``mc-check explain <report.json> <error-id>``
renders it back.

Recording is always on and cheap: the cached engine already tracks one
``(block, state)`` visited set; provenance adds one parent pointer per
visited key plus the (rare) in-block transitions, and reconstructs the
step list only when a *new* report actually fires.

A provenance trail is a list of plain-dict **steps**:

``{"kind": "enter", "function", "file", "line"}``
    path start: the function the machine entered.
``{"kind": "line", "file", "line"}``
    a source statement the path executed.
``{"kind": "branch", "file", "line", "taken"}``
    a conditional edge the path followed (``"true"``/``"false"``); with
    feasibility on, an optional ``"fact"`` notes when the branch was
    already verified by facts earlier on the path.
``{"kind": "pruned", "file", "line", "taken", "reason"}``
    a sibling edge the feasibility layer cut at this point because its
    condition contradicts the path's facts — why this path *survived*.
``{"kind": "transition", "file", "line", "from", "to", "rule"}``
    the state machine moved; ``rule`` names the metal rule when named.
``{"kind": "report", "file", "line", "state"}``
    the reporting site, with the machine state that triggered it.
``{"kind": "elided", "count"}``
    middle of an over-long trail (> :data:`MAX_STEPS`) cut for size.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

#: Trails longer than this keep their head and tail and elide the middle.
MAX_STEPS = 400


# -- report identity ---------------------------------------------------------

def report_id(checker: str, message: str, filename: str, line: int,
              column: int) -> str:
    """Stable short id for one diagnostic, used by ``explain``.

    Derived from the same (checker, message, location) tuple the sink
    dedups on, so the id is identical across runs, job counts, and
    cache states.
    """
    text = f"{checker}\x00{message}\x00{filename}\x00{line}\x00{column}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def report_key(report) -> tuple:
    """The provenance-map key for a :class:`repro.metal.runtime.Report`."""
    return (report.checker, report.message, report.location)


def key_to_obj(key: tuple) -> list:
    checker, message, loc = key
    return [checker, message, [loc.filename, loc.line, loc.column]]


def key_from_obj(obj: list) -> tuple:
    from ..lang.source import Location
    checker, message, loc = obj
    return (checker, message, Location(loc[0], int(loc[1]), int(loc[2])))


def provenance_to_obj(provenance: dict) -> list:
    """Serialise a ``{report key: steps}`` map for worker payloads."""
    return [{"report": key_to_obj(key), "steps": steps}
            for key, steps in provenance.items()]


def provenance_from_obj(obj: list) -> dict:
    return {key_from_obj(entry["report"]): list(entry["steps"])
            for entry in obj or []}


# -- trail construction (called by the engine on each new report) ------------

def _loc_of(node) -> tuple[str, int]:
    loc = node.location
    return (loc.filename, loc.line)


def build_steps(cfg, parents: dict, transitions: dict,
                current_key: tuple, current_ordinal: int,
                report, pruned: Optional[dict] = None) -> list[dict]:
    """Reconstruct the trail from ``cfg``'s entry to ``report``.

    ``parents`` maps each visited ``(block index, state[, store])`` key
    to its ``(predecessor key, edge label, fact)`` — ``fact`` is the
    feasibility layer's "already known on this path" note for verified
    branches, ``None`` otherwise.  ``transitions`` maps keys to the
    in-block state changes recorded while executing them (``(event
    ordinal, file, line, from, to, rule)`` tuples); ``pruned`` maps keys
    to the sibling edges feasibility cut there.  ``current_key`` /
    ``current_ordinal`` locate the reporting site inside its block.
    """
    chain: list[tuple] = []
    key: Optional[tuple] = current_key
    seen: set[tuple] = set()
    while key is not None and key not in seen:
        seen.add(key)
        chain.append(key)
        parent = parents.get(key)
        key = parent[0] if parent else None
    chain.reverse()

    steps: list[dict] = []
    function = cfg.function
    steps.append({
        "kind": "enter", "function": cfg.name,
        "file": function.location.filename, "line": function.location.line,
        "state": chain[0][1] if chain else "",
    })
    for position, key in enumerate(chain):
        block_index = key[0]
        block = cfg.blocks[block_index]
        parent = parents.get(key) or (None, None, None)
        edge_label = parent[1]
        fact = parent[2] if len(parent) > 2 else None
        if edge_label in ("true", "false") and position > 0:
            pred_block = cfg.blocks[chain[position - 1][0]]
            if pred_block.events:
                file, line = _loc_of(pred_block.events[-1])
                step = {"kind": "branch", "file": file, "line": line,
                        "taken": edge_label}
                if fact:
                    step["fact"] = fact
                steps.append(step)
        fired = {t[0]: t for t in transitions.get(key, ())}
        last_line: Optional[tuple] = None
        is_last = position == len(chain) - 1
        for ordinal, event in enumerate(block.events):
            if is_last and ordinal > current_ordinal:
                break
            file, line = _loc_of(event)
            if (file, line) != last_line:
                steps.append({"kind": "line", "file": file, "line": line})
                last_line = (file, line)
            if ordinal in fired:
                _, tfile, tline, t_from, t_to, rule = fired[ordinal]
                steps.append({"kind": "transition", "file": tfile,
                              "line": tline, "from": t_from, "to": t_to,
                              "rule": rule})
        if pruned and not is_last:
            for cut in pruned.get(key, ()):
                steps.append(dict(cut))
    loc = report.location
    steps.append({"kind": "report", "file": loc.filename, "line": loc.line,
                  "state": current_key[1] if current_key else ""})
    return _truncate(steps)


def _truncate(steps: list[dict]) -> list[dict]:
    if len(steps) <= MAX_STEPS:
        return steps
    head = MAX_STEPS // 2
    tail = MAX_STEPS - head
    elided = len(steps) - head - tail
    return (steps[:head] + [{"kind": "elided", "count": elided}]
            + steps[-tail:])


# -- rendering (``mc-check explain``) ----------------------------------------

class _SourceLookup:
    """Best-effort source-line text for rendering (files may be gone)."""

    def __init__(self) -> None:
        self._files: dict[str, Optional[list[str]]] = {}

    def line(self, filename: str, line: int) -> str:
        lines = self._files.get(filename, ())
        if lines == ():
            try:
                lines = Path(filename).read_text().splitlines()
            except OSError:
                lines = None
            self._files[filename] = lines
        if lines is None or not 1 <= line <= len(lines):
            return ""
        return lines[line - 1].strip()


def render_explain(report_obj: dict, steps: list[dict]) -> str:
    """Render one diagnostic and its provenance trail as text."""
    lines: list[str] = []
    where = (f"{report_obj['file']}:{report_obj['line']}:"
             f"{report_obj['column']}")
    lines.append(f"error {report_obj['id']}: {where}: "
                 f"[{report_obj['checker']}] {report_obj['message']}")
    pack = report_obj.get("pack")
    if pack:
        lines.append(f"  from pack {pack['name']}@{pack['version']}")
    if report_obj.get("function"):
        lines.append(f"  in function {report_obj['function']}")
    for frame in report_obj.get("backtrace", ()):
        lines.append(f"  called from {frame}")
    if not steps:
        lines.append("")
        lines.append("(no path provenance recorded for this diagnostic — "
                     "it was produced outside the path-sensitive engine)")
        return "\n".join(lines)

    lookup = _SourceLookup()
    lines.append("")
    lines.append("path (function entry -> error):")
    for step in steps:
        kind = step["kind"]
        if kind == "elided":
            lines.append(f"    ... {step['count']} step(s) elided ...")
            continue
        site = f"{step['file']}:{step['line']}"
        if kind == "enter":
            note = f"enter {step['function']}"
            if step.get("state"):
                note += f"  [state: {step['state']}]"
        elif kind == "branch":
            note = f"branch taken: {step['taken']}"
            if step.get("fact"):
                note += f"  ({step['fact']})"
        elif kind == "pruned":
            note = (f"infeasible {step['taken']} edge pruned: "
                    f"{step['reason']}")
        elif kind == "transition":
            note = f"state {step['from']} -> {step['to']}"
            if step.get("rule"):
                note += f"  (rule {step['rule']})"
        elif kind == "report":
            note = f"ERROR here  [state: {step['state']}]"
        else:
            note = ""
        text = lookup.line(step["file"], step["line"])
        marker = {"enter": ">>", "branch": "?", "pruned": "x",
                  "transition": "~", "report": "!!"}.get(kind, "|")
        body = f"  {site:<28s} {marker:>2s} {text}"
        if note:
            body += f"{'  ' if text else ' '}// {note}"
        lines.append(body.rstrip())
    return "\n".join(lines)
