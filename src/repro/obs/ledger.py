"""Persistent run ledger: one fsynced JSONL record per analysis run.

The ledger is the run-over-run memory the per-run artifacts (reports,
traces, metrics) individually lack: ``<cache-dir>/ledger.jsonl`` grows
one line per completed ``check``/``metal``/``campaign`` invocation —
run id, configuration fingerprint, engine/frontend/schema versions, a
metrics snapshot, and the full report-id set — so "how does this run
differ from the last one" becomes :func:`diff_runs` instead of a
hand-written JSON diff.

Three consumers:

* ``mc-check history`` lists the recorded runs;
* ``mc-check diff RUN-A RUN-B`` emits the three-part drift report
  (new/lost/changed report ids, counter deltas, wall-time regression)
  with a nonzero exit on drift, so CI can gate on it;
* ``mc-check profile RUN-ID`` resolves a run id to its recorded
  ``--trace`` file.

Design constraints mirror the run journal's: each record is one
``write``+``flush``+``fsync`` line (a killed process leaves at most one
truncated tail, which :func:`read_ledger` skips); an unwritable ledger
never fails the run (appends silently stop); and nothing here is read
on the hot path — the ledger prices a run at one line of disk I/O.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

#: Ledger record schema; bump when the record shape changes.
LEDGER_SCHEMA = 1

#: Default wall-time regression threshold for :func:`diff_runs`: run B
#: must be >25% slower than run A *and* slower by the absolute floor
#: before the diff calls it a regression (scheduler jitter on
#: sub-second runs must never fail a CI gate).
WALL_THRESHOLD = 0.25
WALL_FLOOR_SECONDS = 0.5


def ledger_path(cache_dir: Optional[Path] = None) -> Path:
    """Where the ledger lives: ``<cache-dir>/ledger.jsonl``."""
    from ..mc.cache import default_cache_dir
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / "ledger.jsonl"


def config_fingerprint(config: dict) -> str:
    """Short stable digest of a run's analysis configuration."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def reports_digest(report_ids) -> str:
    """Order-independent digest of a run's report-id set."""
    h = hashlib.sha256()
    for report_id in sorted(report_ids):
        h.update(str(report_id).encode())
        h.update(b"\x00")
    return h.hexdigest()[:16]


def make_record(*, run_id: str, command: str, files, config: dict,
                wall: float, exit_code: int, reports: dict,
                counters: Optional[dict] = None,
                interrupted: bool = False, degraded: bool = False,
                trace: Optional[str] = None,
                now: Optional[float] = None) -> dict:
    """Build one ledger record.

    ``reports`` maps stable report ids to small per-report objects
    (checker, file, line, function, severity, message) — enough for
    :func:`diff_runs` to name what appeared, vanished, or moved without
    re-reading any report document.
    """
    from .. import __version__
    from ..mc.cache import SCHEMA_VERSION, engine_fingerprint
    from ..mc.report import REPORT_JSON_SCHEMA

    return {
        "schema": LEDGER_SCHEMA,
        "run": run_id,
        "t": round(now if now is not None else time.time(), 3),
        "command": command,
        "files": sorted(str(f) for f in files),
        "config": dict(config),
        "config_fp": config_fingerprint(config),
        "versions": {
            "repro": __version__,
            "engine_fp": engine_fingerprint()[:16],
            "report_schema": REPORT_JSON_SCHEMA,
            "payload_schema": SCHEMA_VERSION,
        },
        "wall": round(wall, 6),
        "exit": exit_code,
        "interrupted": bool(interrupted),
        "degraded": bool(degraded),
        "reports": reports,
        "reports_digest": reports_digest(reports),
        "counters": dict(counters or {}),
        "trace": str(trace) if trace else None,
    }


def reports_from_doc(doc: dict) -> dict:
    """The ledger's report map from a ``--format json`` report document
    (``run_to_json``) or a campaign cross-tab document."""
    reports: dict = {}
    for obj in doc.get("reports", ()):
        if not isinstance(obj, dict) or "id" not in obj:
            continue
        entry = {
            "checker": obj.get("checker"),
            "file": obj.get("file"),
            "line": obj.get("line"),
            "function": obj.get("function"),
            "severity": obj.get("severity", "error"),
            "message": obj.get("message"),
        }
        if "verdict" in obj:          # campaign cross-tab entries
            entry["verdict"] = obj["verdict"]
        reports[str(obj["id"])] = entry
    return reports


class RunLedger:
    """Append-only writer for the ledger file.

    Failure-tolerant by construction: an unwritable directory or a full
    disk disables the ledger for the rest of the process instead of
    failing the run that was being recorded.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.disabled = False

    def append(self, record: dict) -> bool:
        """Write one record as a single fsynced line; False if disabled."""
        if self.disabled:
            return False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            self.disabled = True
            return False
        return True


def read_ledger(path) -> list[dict]:
    """Parse the ledger, oldest first, skipping corrupt/truncated lines
    and records from incompatible schemas."""
    records: list[dict] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # truncated tail from a killed run, or stray bytes
        if (isinstance(obj, dict) and obj.get("schema") == LEDGER_SCHEMA
                and isinstance(obj.get("run"), str)):
            records.append(obj)
    return records


def find_run(records: list[dict], run_id: str) -> dict:
    """The unique record whose run id matches ``run_id`` (a unique
    prefix is enough); raises ``ReproError`` otherwise.

    When several records share one run id (a resumed run records again
    on completion), the latest wins — it describes the finished run.
    """
    from ..errors import ReproError

    exact = [r for r in records if r["run"] == run_id]
    if exact:
        return exact[-1]
    matches = {r["run"] for r in records if r["run"].startswith(run_id)}
    if not matches:
        known = ", ".join(r["run"] for r in records[-10:])
        raise ReproError(
            f"no ledger record for run {run_id!r}"
            + (f"; recent runs: {known}" if known else " (ledger is empty)"))
    if len(matches) > 1:
        raise ReproError(
            f"run id prefix {run_id!r} is ambiguous: "
            + ", ".join(sorted(matches)))
    chosen = matches.pop()
    return [r for r in records if r["run"] == chosen][-1]


# -- run-over-run drift -------------------------------------------------------

def _report_identity(entry: dict) -> tuple:
    """What makes a report "the same finding" across runs even when its
    location (and therefore its id) changed: checker + function +
    message.  A lost/new pair sharing this identity is *changed* (it
    moved), not lost-and-found."""
    return (entry.get("checker"), entry.get("function"),
            entry.get("message"))


def diff_runs(a: dict, b: dict, *, wall_threshold: float = WALL_THRESHOLD,
              wall_floor: float = WALL_FLOOR_SECONDS) -> dict:
    """The three-part drift report between two ledger records.

    Part 1 — report drift: ids present only in B (``new``), only in A
    (``lost``), and lost/new pairs with the same (checker, function,
    message) identity folded into ``changed`` (the finding moved).
    Part 2 — counter deltas (informational: cache state legitimately
    differs between byte-identical runs).  Part 3 — wall time, flagged
    as a regression only past both the relative threshold and the
    absolute floor.

    ``drift`` is True iff the report sets differ; ``regression`` adds
    the wall-time verdict.  ``mc-check diff`` exits nonzero on either.
    """
    reports_a = a.get("reports") or {}
    reports_b = b.get("reports") or {}
    new_ids = sorted(set(reports_b) - set(reports_a))
    lost_ids = sorted(set(reports_a) - set(reports_b))

    lost_by_identity: dict[tuple, list[str]] = {}
    for report_id in lost_ids:
        identity = _report_identity(reports_a[report_id])
        lost_by_identity.setdefault(identity, []).append(report_id)
    changed: list[dict] = []
    still_new: list[str] = []
    for report_id in new_ids:
        entry = reports_b[report_id]
        candidates = lost_by_identity.get(_report_identity(entry))
        if candidates:
            old_id = candidates.pop(0)
            old = reports_a[old_id]
            changed.append({
                "id_a": old_id, "id_b": report_id,
                "checker": entry.get("checker"),
                "function": entry.get("function"),
                "from": f"{old.get('file')}:{old.get('line')}",
                "to": f"{entry.get('file')}:{entry.get('line')}",
            })
        else:
            still_new.append(report_id)
    still_lost = [i for ids in lost_by_identity.values() for i in ids]

    counters_a = a.get("counters") or {}
    counters_b = b.get("counters") or {}
    deltas: dict[str, dict] = {}
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0), counters_b.get(name, 0)
        if (isinstance(va, (int, float)) and isinstance(vb, (int, float))
                and va != vb):
            deltas[name] = {"a": va, "b": vb, "delta": vb - va}

    wall_a = float(a.get("wall") or 0.0)
    wall_b = float(b.get("wall") or 0.0)
    regressed = (wall_a > 0
                 and wall_b > wall_a * (1.0 + wall_threshold)
                 and wall_b - wall_a > wall_floor)

    drift = bool(still_new or sorted(still_lost) or changed)
    return {
        "schema": LEDGER_SCHEMA,
        "run_a": a["run"],
        "run_b": b["run"],
        "config_changed": a.get("config_fp") != b.get("config_fp"),
        "reports": {
            "new": [{"id": i, **reports_b[i]} for i in still_new],
            "lost": [{"id": i, **reports_a[i]} for i in sorted(still_lost)],
            "changed": changed,
        },
        "counters": deltas,
        "wall": {
            "a": wall_a, "b": wall_b,
            "delta": round(wall_b - wall_a, 6),
            "threshold": wall_threshold,
            "regression": regressed,
        },
        "drift": drift,
        "regression": drift or regressed,
    }


# -- human rendering ----------------------------------------------------------

def format_history(records: list[dict], limit: int = 20) -> str:
    """The ``mc-check history`` table, newest first."""
    if not records:
        return "(ledger is empty)"
    lines = [f"{'run':24s} {'when':19s} {'command':10s} {'wall':>8s} "
             f"{'exit':>4s} {'reports':>7s}  flags"]
    lines.append("-" * len(lines[0]))
    for record in list(reversed(records))[:limit]:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.localtime(record.get("t", 0)))
        flags = []
        if record.get("interrupted"):
            flags.append("interrupted")
        if record.get("degraded"):
            flags.append("degraded")
        if record.get("trace"):
            flags.append("traced")
        lines.append(
            f"{record['run']:24s} {when:19s} "
            f"{record.get('command', '?'):10s} "
            f"{record.get('wall', 0.0):8.2f} "
            f"{record.get('exit', 0):4d} "
            f"{len(record.get('reports') or {}):7d}  "
            + (",".join(flags) or "-"))
    if len(records) > limit:
        lines.append(f"... {len(records) - limit} older run(s) not shown")
    return "\n".join(lines)


def format_diff(diff: dict) -> str:
    """The ``mc-check diff`` drift report as text."""
    lines = [f"diff: {diff['run_a']} -> {diff['run_b']}"]
    if diff.get("config_changed"):
        lines.append("  note: analysis configuration changed between runs")
    reports = diff["reports"]
    lines.append(f"reports: {len(reports['new'])} new, "
                 f"{len(reports['lost'])} lost, "
                 f"{len(reports['changed'])} changed")
    for entry in reports["new"]:
        lines.append(f"  + {entry['id']} [{entry.get('checker')}] "
                     f"{entry.get('file')}:{entry.get('line')} "
                     f"{entry.get('message')}")
    for entry in reports["lost"]:
        lines.append(f"  - {entry['id']} [{entry.get('checker')}] "
                     f"{entry.get('file')}:{entry.get('line')} "
                     f"{entry.get('message')}")
    for entry in reports["changed"]:
        lines.append(f"  ~ [{entry.get('checker')}] {entry.get('function')}: "
                     f"moved {entry['from']} -> {entry['to']} "
                     f"({entry['id_a']} -> {entry['id_b']})")
    if diff["counters"]:
        lines.append(f"counters: {len(diff['counters'])} changed")
        for name, delta in diff["counters"].items():
            lines.append(f"  {name}: {delta['a']} -> {delta['b']} "
                         f"({delta['delta']:+})")
    wall = diff["wall"]
    verdict = "REGRESSION" if wall["regression"] else "ok"
    lines.append(f"wall: {wall['a']:.3f}s -> {wall['b']:.3f}s "
                 f"({wall['delta']:+.3f}s, threshold "
                 f"{wall['threshold']:.0%}) {verdict}")
    lines.append("drift: " + ("DRIFT detected" if diff["drift"]
                              else "no report drift"))
    return "\n".join(lines)
