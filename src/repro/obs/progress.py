"""Live fleet health: ``--progress`` rendering and worker heartbeats.

Two halves, glued by a directory of tiny JSONL files:

* Workers call :func:`write_heartbeat` at item start/finish — one
  appended line per event in ``<heartbeat-dir>/hb-<pid>.jsonl``.  Like
  the tracer, a heartbeat failure never fails the analysis.
* The parent's :class:`ProgressReporter` renders throttled status
  lines to **stderr** (stdout stays reports-only, per the CLI
  contract): items done, throughput, ETA, per-worker liveness from the
  heartbeat files, and retry/quarantine counts.

Purity: progress output is stderr chatter computed *from* the run; it
feeds nothing back in, so reports stay byte-identical with it on or
off (the CI purity diff includes ``--progress``).

The reporter takes an injectable ``clock`` so tests can drive the
throttle deterministically.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Optional

#: Minimum seconds between rendered progress lines.
DEFAULT_INTERVAL = 1.0

#: A worker whose last heartbeat is older than this (seconds) while it
#: still owns an item is rendered as *stalled* — the human-facing twin
#: of the supervisor's watchdog.
STALL_AFTER = 10.0


def write_heartbeat(heartbeat_dir: Optional[str], item: int, attempt: int,
                    event: str) -> None:
    """Append one heartbeat event from a worker process; never raises."""
    if not heartbeat_dir:
        return
    try:
        path = Path(heartbeat_dir) / f"hb-{os.getpid()}.jsonl"
        with path.open("a") as fh:
            fh.write(json.dumps(
                {"pid": os.getpid(), "t": round(time.time(), 3),
                 "item": item, "attempt": attempt, "event": event},
                separators=(",", ":")) + "\n")
            fh.flush()
    except OSError:
        pass


def read_heartbeats(heartbeat_dir) -> dict[int, dict]:
    """Latest event per worker pid, tolerant of truncated lines."""
    latest: dict[int, dict] = {}
    try:
        paths = sorted(Path(heartbeat_dir).glob("hb-*.jsonl"))
    except OSError:
        return latest
    for path in paths:
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict) and isinstance(obj.get("pid"), int):
                latest[obj["pid"]] = obj
    return latest


class ProgressReporter:
    """Throttled fleet-status lines on stderr.

    ``begin(total, resolved)`` fixes the denominator (``resolved`` items
    never reach the pool: cache hits, journal replays, quarantines);
    ``tick(stats, busy)`` is called from the supervisor's poll loop and
    renders at most once per ``interval``; ``finish(stats)`` renders the
    unconditional final line.
    """

    def __init__(self, stream=None, interval: float = DEFAULT_INTERVAL,
                 clock=time.monotonic,
                 heartbeat_dir: Optional[str] = None,
                 wall_clock=time.time):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        self.wall_clock = wall_clock
        self.heartbeat_dir = heartbeat_dir
        self.total = 0
        self.resolved = 0
        self._t0 = clock()
        self._last_render = float("-inf")
        self.lines_rendered = 0

    # -- lifecycle -----------------------------------------------------------

    def begin(self, total: int, resolved: int = 0) -> None:
        self.total = total
        self.resolved = resolved
        self._t0 = self.clock()
        self._render(done=resolved, busy=0, stats=None, final=False,
                     force=True)

    def tick(self, stats, busy: int = 0) -> None:
        """Throttled render; ``stats`` is the supervisor's RunStats."""
        now = self.clock()
        if now - self._last_render < self.interval:
            return
        done = self.resolved + getattr(stats, "completed", 0) \
            + getattr(stats, "quarantined", 0)
        self._render(done=done, busy=busy, stats=stats, final=False)

    def finish(self, stats=None) -> None:
        done = self.resolved
        if stats is not None:
            done += getattr(stats, "completed", 0) \
                + getattr(stats, "quarantined", 0)
        else:
            done = self.total
        self._render(done=done, busy=0, stats=stats, final=True, force=True)

    # -- rendering -----------------------------------------------------------

    def _worker_health(self) -> Optional[str]:
        if not self.heartbeat_dir:
            return None
        beats = read_heartbeats(self.heartbeat_dir)
        if not beats:
            return None
        now = self.wall_clock()
        live = 0
        stalled = 0
        for beat in beats.values():
            if (beat.get("event") == "start"
                    and now - beat.get("t", now) > STALL_AFTER):
                stalled += 1
            else:
                live += 1
        text = f"workers {live}/{len(beats)} live"
        if stalled:
            text += f" ({stalled} stalled)"
        return text

    def _render(self, *, done: int, busy: int, stats, final: bool,
                force: bool = False) -> None:
        now = self.clock()
        if not force and now - self._last_render < self.interval:
            return
        self._last_render = now
        elapsed = max(now - self._t0, 1e-9)
        fresh_done = max(0, done - self.resolved)
        rate = fresh_done / elapsed
        parts = []
        pct = (100.0 * done / self.total) if self.total else 100.0
        parts.append(f"{done}/{self.total} items ({pct:.0f}%)")
        if final:
            parts.append(f"{rate:.1f} items/s" if fresh_done else "all "
                         "resolved from cache")
        else:
            parts.append(f"{rate:.1f} items/s")
            remaining = max(0, self.total - done)
            if rate > 0 and remaining:
                parts.append(f"eta {remaining / rate:.0f}s")
            if busy:
                parts.append(f"{busy} in flight")
        health = self._worker_health()
        if health:
            parts.append(health)
        if stats is not None:
            retried = getattr(stats, "retried", 0)
            quarantined = getattr(stats, "quarantined", 0)
            if retried:
                parts.append(f"retries {retried}")
            if quarantined:
                parts.append(f"quarantined {quarantined}")
        label = "progress" if not final else "progress(done)"
        try:
            self.stream.write(f"{label}: " + ", ".join(parts) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
        self.lines_rendered += 1
