"""Cost attribution over merged span traces: ``mc-check profile``.

A trace answers "what happened"; this module answers "where did the
time go".  :func:`build_profile` folds a merged JSONL trace (see
:mod:`repro.obs.trace`) into one deterministic cost tree:

* **phases** — ``parse`` (``unit`` spans: parse + sema + CFG
  construction for one translation unit; the frontend runs them as one
  pass, so they are one phase here), ``engine`` (``function`` spans:
  path-sensitive machine execution, path sampling included), and
  ``dispatch`` (work-item self time: scheduling, cache probes, payload
  marshalling — item wall minus its children);
* **checkers** — per-checker wall/CPU/item totals across the fleet;
* **functions** — per ``(checker, function)`` wall, call count, and the
  engine counters (steps, transitions, states, path ends), ranked into
  a top-N **hotspot** list;
* **critical path** — the chain of most-expensive spans from the run
  root down, i.e. the wall-clock floor a perfectly parallel fleet
  cannot beat;
* **cache attribution** — how many items were served by the result
  cache / journal replay vs. freshly executed, plus the run's
  ``cache.*`` and summary-hit counters.

Correctness rule inherited from the supervisor: spans flagged
``orphan`` (attempt crashed before its item span closed) or
``superseded`` (attempt was retried over) are **excluded** — a run
that crashed and retried must profile to the same cost tree as its
clean re-run, counting only the attempts whose results were kept.

Everything keyed or counted here is deterministic given the same
analysis; only wall/CPU numbers vary run to run.
:func:`deterministic_view` strips those, leaving the invariant core
the test suite pins.
"""

from __future__ import annotations

from typing import Optional

#: Profile document schema; bump when the shape changes.
PROFILE_SCHEMA = 1

#: Item-span statuses meaning "resolved parent-side, no worker ran".
_RESOLVED_STATUSES = ("cached", "replayed", "quarantined", "skipped")


def _surviving(records: list[dict]) -> list[dict]:
    """Drop spans from attempts whose results were not kept."""
    kept = []
    for record in records:
        attrs = record.get("attrs") or {}
        if attrs.get("orphan") or attrs.get("superseded"):
            continue
        kept.append(record)
    return kept


def _round(x: float) -> float:
    return round(float(x), 6)


def build_profile(records: list[dict], top: int = 10) -> dict:
    """Aggregate one merged trace into the profile document.

    ``records`` is the output of :func:`repro.obs.trace.read_trace` on
    a merged ``--trace`` file.  Raises :class:`repro.errors.ReproError`
    when the trace holds no usable spans.
    """
    from ..errors import ReproError

    records = _surviving(records)
    if not records:
        raise ReproError("trace contains no usable spans "
                         "(empty, corrupt, or all attempts discarded)")

    run_span: Optional[dict] = None
    items: list[dict] = []
    units: list[dict] = []
    functions: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "run" and run_span is None:
            run_span = record
        elif kind == "checker":
            items.append(record)
        elif kind == "unit":
            units.append(record)
        elif kind == "function":
            functions.append(record)
        parent = record.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(record)

    # -- phases ---------------------------------------------------------------
    # Item self time = item wall minus its direct unit/function children
    # (path spans are children of function spans and already inside the
    # function wall, so they never double-count).
    parse_wall = sum(r.get("wall", 0.0) for r in units)
    parse_cpu = sum(r.get("cpu", 0.0) for r in units)
    engine_wall = sum(r.get("wall", 0.0) for r in functions)
    engine_cpu = sum(r.get("cpu", 0.0) for r in functions)
    dispatch_wall = 0.0
    dispatch_cpu = 0.0
    for item in items:
        child_wall = sum(c.get("wall", 0.0)
                         for c in children.get(item.get("id") or "", ())
                         if c.get("kind") in ("unit", "function"))
        child_cpu = sum(c.get("cpu", 0.0)
                        for c in children.get(item.get("id") or "", ())
                        if c.get("kind") in ("unit", "function"))
        dispatch_wall += max(0.0, item.get("wall", 0.0) - child_wall)
        dispatch_cpu += max(0.0, item.get("cpu", 0.0) - child_cpu)
    phases = {
        "parse": {"wall": _round(parse_wall), "cpu": _round(parse_cpu),
                  "spans": len(units)},
        "engine": {"wall": _round(engine_wall), "cpu": _round(engine_cpu),
                   "spans": len(functions)},
        "dispatch": {"wall": _round(dispatch_wall),
                     "cpu": _round(dispatch_cpu), "spans": len(items)},
    }

    # -- per-checker ----------------------------------------------------------
    checkers: dict[str, dict] = {}
    for item in items:
        name = str(item.get("name") or "?")
        agg = checkers.setdefault(name, {
            "wall": 0.0, "cpu": 0.0, "items": 0,
            "by_status": {},
        })
        agg["wall"] += item.get("wall", 0.0)
        agg["cpu"] += item.get("cpu", 0.0)
        agg["items"] += 1
        status = str(item.get("status") or "ok")
        agg["by_status"][status] = agg["by_status"].get(status, 0) + 1
    for agg in checkers.values():
        agg["wall"] = _round(agg["wall"])
        agg["cpu"] = _round(agg["cpu"])
        agg["by_status"] = dict(sorted(agg["by_status"].items()))

    # -- per-function ---------------------------------------------------------
    func_aggs: dict[tuple[str, str], dict] = {}
    for record in functions:
        attrs = record.get("attrs") or {}
        checker = str(attrs.get("checker") or "?")
        name = str(record.get("name") or "?")
        agg = func_aggs.setdefault((checker, name), {
            "checker": checker, "function": name,
            "wall": 0.0, "cpu": 0.0, "calls": 0, "counters": {},
        })
        agg["wall"] += record.get("wall", 0.0)
        agg["cpu"] += record.get("cpu", 0.0)
        agg["calls"] += 1
        for cname, value in (record.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                agg["counters"][cname] = agg["counters"].get(cname, 0) + value
    function_list = []
    for key in sorted(func_aggs):
        agg = func_aggs[key]
        agg["wall"] = _round(agg["wall"])
        agg["cpu"] = _round(agg["cpu"])
        agg["counters"] = dict(sorted(agg["counters"].items()))
        function_list.append(agg)
    hotspots = sorted(
        function_list,
        key=lambda a: (-a["wall"], a["checker"], a["function"]))[:top]

    # -- critical path --------------------------------------------------------
    # The run's wall-clock floor: the most expensive item, then the most
    # expensive child inside it, recursively.  Worker-side item spans
    # carry parent=None (each worker writes its own file), so the
    # run→item edge is by construction, not by parent pointer.
    critical_path: list[dict] = []
    if run_span is not None:
        critical_path.append({
            "kind": "run", "name": run_span.get("name"),
            "wall": _round(run_span.get("wall", 0.0)),
            "id": run_span.get("id"),
        })
    cursor = max(items, key=lambda r: r.get("wall", 0.0), default=None)
    while cursor is not None:
        critical_path.append({
            "kind": cursor.get("kind"), "name": cursor.get("name"),
            "wall": _round(cursor.get("wall", 0.0)),
            "id": cursor.get("id"),
        })
        kids = children.get(cursor.get("id") or "", [])
        cursor = max(kids, key=lambda r: r.get("wall", 0.0), default=None)

    # -- cache / summary attribution ------------------------------------------
    run_counters = (run_span or {}).get("counters") or {}
    cache = {
        "items_fresh": sum(1 for i in items
                           if i.get("status") not in _RESOLVED_STATUSES),
    }
    for status in _RESOLVED_STATUSES:
        cache[f"items_{status}"] = sum(
            1 for i in items if i.get("status") == status)
    for cname in sorted(run_counters):
        if cname.startswith("cache.") or "summary" in cname:
            value = run_counters[cname]
            if isinstance(value, (int, float)):
                cache[cname] = value

    run_attrs = (run_span or {}).get("attrs") or {}
    return {
        "schema": PROFILE_SCHEMA,
        "run": {
            "run_id": run_attrs.get("run_id"),
            "jobs": run_attrs.get("jobs"),
            "wall": _round((run_span or {}).get("wall", 0.0)),
            "cpu": _round((run_span or {}).get("cpu", 0.0)),
            "status": (run_span or {}).get("status"),
            "spans": len(records),
        },
        "phases": phases,
        "checkers": dict(sorted(checkers.items())),
        "functions": function_list,
        "hotspots": hotspots,
        "critical_path": critical_path,
        "cache": cache,
    }


def deterministic_view(profile: dict) -> dict:
    """The scheduling-invariant core of a profile.

    Strips everything that legitimately varies between byte-identical
    runs: all wall/CPU numbers, ``unit`` spans (parse memoization makes
    their presence depend on which worker got which item), dispatch
    accounting, and the critical path.  What remains — item counts per
    checker and per-function call/engine-counter totals — must be equal
    for a crash-plan run with retries and its clean re-run.
    """
    checkers = {
        name: {"items": agg["items"]}
        for name, agg in profile.get("checkers", {}).items()
    }
    functions = {
        f"{agg['checker']}::{agg['function']}": {
            "calls": agg["calls"],
            "counters": dict(agg.get("counters") or {}),
        }
        for agg in profile.get("functions", ())
    }
    return {"checkers": checkers, "functions": functions}


def format_profile(profile: dict, top: int = 10) -> str:
    """Human rendering of the profile document."""
    run = profile.get("run", {})
    lines = [
        f"profile: run={run.get('run_id') or '-'} "
        f"jobs={run.get('jobs') or '-'} "
        f"wall={run.get('wall', 0.0):.3f}s cpu={run.get('cpu', 0.0):.3f}s "
        f"spans={run.get('spans', 0)}",
        "",
        "phase              wall(s)     cpu(s)   spans",
    ]
    for name, phase in profile.get("phases", {}).items():
        lines.append(f"  {name:14s} {phase['wall']:9.3f} "
                     f"{phase['cpu']:9.3f} {phase['spans']:7d}")

    lines.append("")
    lines.append("checker                        wall(s)   items  statuses")
    for name, agg in profile.get("checkers", {}).items():
        statuses = ",".join(f"{k}={v}" for k, v in agg["by_status"].items())
        lines.append(f"  {name:28s} {agg['wall']:8.3f} {agg['items']:7d}"
                     f"  {statuses}")

    hotspots = profile.get("hotspots", ())[:top]
    if hotspots:
        lines.append("")
        lines.append(f"top {len(hotspots)} hotspots "
                     "(checker :: function, by wall)")
        for agg in hotspots:
            counters = agg.get("counters") or {}
            detail = " ".join(
                f"{k}={counters[k]}" for k in ("steps", "transitions",
                                               "states", "paths")
                if k in counters)
            lines.append(
                f"  {agg['wall']:8.3f}s x{agg['calls']:<3d} "
                f"{agg['checker']} :: {agg['function']}"
                + (f"  [{detail}]" if detail else ""))

    path = profile.get("critical_path", ())
    if path:
        lines.append("")
        lines.append("critical path (wall-clock floor)")
        for depth, node in enumerate(path):
            lines.append(f"  {'  ' * depth}{node['wall']:8.3f}s "
                         f"{node['kind']}: {node['name']}")

    cache = profile.get("cache", {})
    if cache:
        lines.append("")
        lines.append("cache attribution")
        for name in sorted(cache):
            lines.append(f"  {name:28s} {cache[name]}")
    return "\n".join(lines)
