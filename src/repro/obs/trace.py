"""Structured JSONL tracing for the MC engine and checker fleet.

A *trace* is a flat JSONL file of **span** records forming a tree:

``run`` (the whole invocation) → ``checker`` (one (checker, unit-set)
work item) → ``unit`` (parsing one translation unit) / ``function``
(one path-sensitive machine execution) → ``path`` (sampled path ends).

Every record carries wall and CPU time plus a ``counters`` object
(machine steps, transitions fired, states created, path ends) so the
paper's quantitative claims — paths explored per checker, work per
function — can be audited span by span instead of re-run under a
debugger.

Design constraints, in order:

* **near-zero overhead when off** — the module-level active tracer is
  a :data:`NULL_TRACER` singleton whose ``enabled`` flag lets hot code
  skip span construction entirely;
* **crash-tolerant** — each worker process appends to its own file and
  flushes one complete JSON line per closed span, so a killed worker
  loses at most the span it was inside; everything already written
  survives and is flagged ``orphan`` at merge time;
* **deterministic merge** — span ids encode ``(item index, attempt,
  sequence number)``; :func:`merge_trace` orders the combined stream by
  that key, so the merged tree's shape depends only on what ran, never
  on scheduling.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

#: Trace record schema; bump when the span shape changes.  The JSON
#: Schema in ``trace_schema.json`` describes this version.
TRACE_SCHEMA = 1

#: Span kinds, outermost first (see the module docstring).
SPAN_KINDS = ("run", "checker", "unit", "function", "path")

#: The cached engine does not enumerate paths; it samples this many
#: ``path`` spans per function (one per path *end* reached) and counts
#: the rest in the function span's ``paths`` counter.
MAX_PATH_SPANS_PER_FUNCTION = 8


class Span:
    """One open span; becomes a JSONL record when closed."""

    __slots__ = ("tracer", "id", "parent", "kind", "name", "item",
                 "attempt", "seq", "t0", "_w0", "_c0", "status",
                 "counters", "attrs")

    def __init__(self, tracer: "Tracer", span_id: str,
                 parent: Optional[str], kind: str, name: str,
                 item: Optional[int], attempt: Optional[int], seq: int,
                 attrs: Optional[dict] = None):
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.kind = kind
        self.name = name
        self.item = item
        self.attempt = attempt
        self.seq = seq
        self.t0 = time.time()
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        self.status = "ok"
        self.counters: dict[str, int] = {}
        self.attrs: dict = dict(attrs) if attrs else {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def record(self) -> dict:
        return span_record(
            span_id=self.id, parent=self.parent, kind=self.kind,
            name=self.name, item=self.item, attempt=self.attempt,
            seq=self.seq, t0=self.t0,
            wall=time.perf_counter() - self._w0,
            cpu=time.process_time() - self._c0,
            status=self.status, counters=self.counters, attrs=self.attrs,
        )

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None and self.status == "ok":
            self.status = "error"
        self.tracer._close(self)


def span_record(*, span_id: str, parent: Optional[str], kind: str,
                name: str, item: Optional[int], attempt: Optional[int],
                seq: int, t0: float, wall: float, cpu: float,
                status: str, counters: dict, attrs: dict) -> dict:
    """The canonical record shape (field order fixed for readability)."""
    return {
        "schema": TRACE_SCHEMA,
        "id": span_id,
        "parent": parent,
        "kind": kind,
        "name": name,
        "item": item,
        "attempt": attempt,
        "seq": seq,
        "t0": round(t0, 6),
        "wall": round(wall, 6),
        "cpu": round(cpu, 6),
        "status": status,
        "counters": counters,
        "attrs": attrs,
    }


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()
    id = None

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def set(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The inactive tracer: every operation is a no-op.

    ``enabled`` is the cheap guard hot loops check before building span
    names or attribute dicts.
    """

    enabled = False

    def span(self, kind: str, name: str, **attrs):
        return _NULL_SPAN

    def item(self, index: int, attempt: int, name: str, **attrs):
        return _NULL_SPAN

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Writes spans of one process to one append-only JSONL file.

    Span ids are ``i<item>a<attempt>.<seq>`` (the item span itself is
    ``i<item>a<attempt>``), assigned at *open* time so a parent always
    sorts before its children.  Records are written at *close* time,
    one flushed line each.
    """

    enabled = True

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh = None
        self._stack: list[Span] = []
        self._item: Optional[int] = None
        self._attempt: Optional[int] = None
        self._seq = 0

    # -- span construction ---------------------------------------------------

    def item(self, index: int, attempt: int, name: str, **attrs) -> Span:
        """Open the work-item span (kind ``checker``): the per-item root."""
        self._item = index
        self._attempt = attempt
        self._seq = 0
        span = Span(self, f"i{index}a{attempt}", None, "checker", name,
                    index, attempt, self._next_seq(), attrs)
        self._stack.append(span)
        return span

    def span(self, kind: str, name: str, **attrs) -> Span:
        parent = self._stack[-1].id if self._stack else None
        prefix = (f"i{self._item}a{self._attempt}"
                  if self._item is not None else "p")
        seq = self._next_seq()
        span = Span(self, f"{prefix}.{seq}", parent, kind, name,
                    self._item, self._attempt, seq, attrs)
        self._stack.append(span)
        return span

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- record output -------------------------------------------------------

    def _close(self, span: Span) -> None:
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()          # defensive: drop abandoned children
        if self._stack:
            self._stack.pop()
        self._write(span.record())
        if span.item is not None and not self._stack:
            self._item = None
            self._attempt = None

    def _write(self, record: dict) -> None:
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._fh.flush()
        except OSError:
            # A full or revoked trace directory must never fail the
            # analysis; the trace just goes quiet from here on.
            self.enabled = False

    def flush(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            except OSError:  # pragma: no cover
                pass

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
            self._fh = None


# -- the process-wide active tracer ------------------------------------------

_ACTIVE: object = NULL_TRACER


def current_tracer():
    """The process's active tracer (:data:`NULL_TRACER` when off)."""
    return _ACTIVE


def activate_tracer(tracer) -> object:
    """Install ``tracer`` as active; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


# -- deterministic merge -----------------------------------------------------

def _sort_key(record: dict) -> tuple:
    item = record.get("item")
    attempt = record.get("attempt")
    return (
        0 if record.get("kind") == "run" else 1,
        item if item is not None else -1,
        attempt if attempt is not None else -1,
        record.get("seq", 0),
    )


def read_trace(path) -> list[dict]:
    """Parse one trace JSONL file, skipping truncated tail lines."""
    records: list[dict] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # a line cut short by a crashing worker
        if isinstance(obj, dict) and obj.get("schema") == TRACE_SCHEMA:
            records.append(obj)
    return records


def merge_trace(trace_dir: Optional[Path], parent_records: list[dict],
                out_path: Path) -> dict:
    """Merge per-worker span files and parent-side records into one trace.

    Ordering is deterministic: the run span first, then spans keyed by
    ``(item, attempt, seq)``.  Spans from a crashed attempt — children
    whose item span never closed — are kept and flagged ``orphan``;
    item spans from attempts that were retried over are flagged
    ``superseded``.  Returns merge statistics (also stored on the run
    span's attrs by the caller).
    """
    records: list[dict] = list(parent_records)
    if trace_dir is not None:
        for path in sorted(Path(trace_dir).glob("*.jsonl")):
            records.extend(read_trace(path))

    # Which (item, attempt) groups closed their item span?
    closed: dict[int, list[int]] = {}
    for record in records:
        if record.get("kind") == "checker" and record.get("item") is not None:
            if record.get("attempt") is not None:
                closed.setdefault(record["item"], []).append(record["attempt"])

    orphans = 0
    superseded = 0
    for record in records:
        item, attempt = record.get("item"), record.get("attempt")
        if item is None or attempt is None:
            continue
        attempts_closed = closed.get(item, [])
        if attempt not in attempts_closed:
            record["attrs"]["orphan"] = True
            orphans += 1
        elif attempt < max(attempts_closed):
            record["attrs"]["superseded"] = True
            superseded += 1

    records.sort(key=_sort_key)
    stats = {
        "spans": len(records),
        "orphan_spans": orphans,
        "superseded_spans": superseded,
        "items_covered": len({r["item"] for r in records
                              if r.get("item") is not None}),
    }
    for record in records:
        if record.get("kind") == "run":
            record["attrs"].update(stats)
            break
    out_path = Path(out_path)
    if out_path.parent != Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return stats
