"""A zero-dependency JSON Schema checker for the trace format.

CI validates every ``--trace`` line against
``trace_schema.json``; the container image does not ship the
``jsonschema`` package, so this module implements the small subset of
draft-07 the trace schema actually uses: ``type`` (with union lists),
``enum``, ``required``, ``properties``, ``additionalProperties``
(boolean or schema), ``minLength``, and ``items``.

Also runnable as a program::

    python -m repro.obs.schema trace.jsonl

exits 0 when every line validates, 1 with per-line errors otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, type_name: str) -> bool:
    expected = _TYPES[type_name]
    if type_name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; JSON says it is not
    return isinstance(value, expected)


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """Validate ``value`` against ``schema``; returns error strings."""
    errors: list[str] = []
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(value, name) for name in names):
            errors.append(f"{path}: expected {'|'.join(names)}, "
                          f"got {type(value).__name__}")
            return errors  # deeper checks would only cascade
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minLength" in schema and isinstance(value, str):
        if len(value) < schema["minLength"]:
            errors.append(f"{path}: shorter than {schema['minLength']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            sub = properties.get(name)
            if sub is not None:
                errors.extend(validate(item, sub, f"{path}.{name}"))
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(item, additional, f"{path}.{name}"))
    if isinstance(value, list) and isinstance(schema.get("items"), dict):
        for index, item in enumerate(value):
            errors.extend(validate(item, schema["items"],
                                   f"{path}[{index}]"))
    return errors


def trace_schema() -> dict:
    """The checked-in span schema (``trace_schema.json``)."""
    path = Path(__file__).with_name("trace_schema.json")
    return json.loads(path.read_text())


def validate_trace_file(path) -> list[str]:
    """Validate every line of a trace JSONL file; returns error strings."""
    schema = trace_schema()
    errors: list[str] = []
    text = Path(path).read_text()
    seen_any = False
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        seen_any = True
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: invalid JSON: {exc}")
            continue
        for error in validate(record, schema):
            errors.append(f"line {number}: {error}")
    if not seen_any:
        errors.append("trace file is empty")
    return errors


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print("usage: python -m repro.obs.schema TRACE.jsonl...",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = validate_trace_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            count = sum(1 for l in Path(path).read_text().splitlines()
                        if l.strip())
            print(f"{path}: {count} span(s) valid")
    return status


if __name__ == "__main__":
    sys.exit(main())
