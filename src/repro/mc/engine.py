"""The path-sensitive analysis engine — the back half of the xg++ analog.

:func:`run_machine` replays a metal state machine down every execution
path of a function's CFG.  Like xgcc, it memoizes on ``(block, state)``
pairs: once a machine has entered a block in a given state, re-entering
in the same state cannot produce new behaviour, so whole families of
exponentially many paths are covered in linear work.  The
:func:`run_machine_naive` variant enumerates paths explicitly and exists
for the state-cache ablation benchmark (DESIGN.md §5).

Two engine modes share this walker (``--engine``, docs/engine.md):

* ``paths`` — the walk exactly as described above; the oracle.
* ``summary`` (default) — the same walk over a checker-aware slice
  (:mod:`repro.mc.summary`): per-event candidate nodes, dead-tail
  merging, whole-function skipping, and reusable per-function summaries
  (:class:`repro.mc.cache.FunctionSummaryStore`).  Reports, suppressed
  reports, provenance, and confidence are byte-identical to ``paths``;
  work counters and budget charging are not (a budgeted run charges
  only the steps it actually performs).
"""

from __future__ import annotations

from typing import Optional

from ..cfg import Cfg, build_cfg
from ..lang import ast
from ..lang.source import Location
from ..metal.runtime import MatchContext, ReportSink
from ..metal.sm import StateMachine
from ..obs.metrics import current_metrics
from ..obs.provenance import build_steps, report_key
from ..obs.trace import MAX_PATH_SPANS_PER_FUNCTION, current_tracer
from . import feasibility as _feas
from . import summary as _summary
from .cache import FunctionSummary, function_summaries
from .resilience import Budget, Quarantine


def _event_nodes(event: ast.Node):
    """The node stream an event contributes: itself plus subtrees, pre-order."""
    return event.walk()


class _OutOfBudget(Exception):
    """Internal: the active Budget ran out mid-exploration."""


class _Run:
    """Shared pieces of one machine-over-one-function execution.

    Also the accounting point for observability: every run counts its
    machine steps, fired transitions, created (block, state) pairs, and
    path ends (flushed to the active metrics registry and trace span by
    :func:`run_machine`), and tracks enough position — the current
    (block, state) key, event ordinal, and in-block transitions — for
    :mod:`repro.obs.provenance` to reconstruct the trail behind each
    new diagnostic.
    """

    def __init__(self, sm: StateMachine, cfg: Cfg, sink: ReportSink,
                 budget: Optional[Budget] = None,
                 feas: Optional["_feas.FunctionFeasibility"] = None,
                 cfg_slice: Optional["_summary.CfgSlice"] = None):
        self.sm = sm
        self.cfg = cfg
        self.sink = sink
        self.budget = budget
        self.function = cfg.function
        # Feasibility: None when pruning is off for this run.
        self.feas = feas
        self.current_store: Optional[_feas.Store] = None
        # Summary engine: the checker-aware slice, None in paths mode.
        self.cfg_slice = cfg_slice
        # Work counters (see class docstring).
        self.steps = 0
        self.transitions = 0
        self.states = 0
        self.path_ends = 0
        self.pruned_edges = 0
        # Join points: (block, state, store, opaque) points reached again
        # and folded into the first visit instead of being re-explored.
        self.merged = 0
        # Machine states observed at function exits (path ends) — the
        # "entry-state → exit-states" face of a function summary.
        self.exit_states: set[str] = set()
        # Provenance position: where the machine is right now.
        self.parents: dict[tuple, tuple] = {}
        self.block_transitions_by_key: dict[tuple, list] = {}
        self.pruned_by_key: dict[tuple, list] = {}
        self.current_key: Optional[tuple] = None
        self.current_ordinal = 0
        self._block_transitions: Optional[list] = None
        self.tracer = current_tracer()
        # Tolerant frontend: True while the current path has crossed an
        # opaque (unparsed) region — reports fired past that point are
        # held back by :meth:`opaque_gate`.
        self.path_opaque = False
        self._opaque_cache: dict[int, bool] = {}
        self._suppressed_before = len(sink.suppressed)

    def event_has_opaque(self, event: ast.Node) -> bool:
        """Does this (shared) event contain an opaque node?  Memoized."""
        cached = self._opaque_cache.get(id(event))
        if cached is None:
            cached = any(isinstance(n, (ast.OpaqueStmt, ast.OpaqueExpr))
                         for n in event.walk())
            self._opaque_cache[id(event)] = cached
        return cached

    def opaque_gate(self, report) -> Optional[str]:
        """``ReportSink.report_gate`` hook: suppress on opaque paths."""
        return "opaque" if self.path_opaque else None

    def ctx_factory(self, node: ast.Node, bindings: dict, state: str) -> MatchContext:
        facts = None
        if self.feas is not None and self.current_store is not None:
            facts = _feas.FactsView(self.feas, self.current_store)
        return MatchContext(
            checker=self.sm.name,
            node=node,
            bindings=bindings,
            function=self.function,
            sink=self.sink,
            state=state,
            facts=facts,
        )

    def run_block_events(self, block, state: str) -> tuple[str, bool]:
        """Feed one block's events through the machine.

        Returns ``(state_after, stopped)``.  With feasibility on, the
        abstract store is advanced across each event *after* the machine
        has seen it, so checker actions observe the facts established by
        prior events on the path.
        """
        cfg_slice = self.cfg_slice
        if cfg_slice is None:
            for ordinal, event in enumerate(block.events):
                self.current_ordinal = ordinal
                if not self.path_opaque and self.event_has_opaque(event):
                    # Poison the path *before* stepping the machine over
                    # the event, so a rule firing on the opaque region
                    # itself is already held back.
                    self.path_opaque = True
                for node in _event_nodes(event):
                    if (self.budget is not None
                            and not self.budget.charge_step()):
                        raise _OutOfBudget()
                    self.steps += 1
                    result = self.sm.step(state, node, self.ctx_factory)
                    if result.fired is not None:
                        self.transitions += 1
                        if (result.state != state
                                and self._block_transitions is not None):
                            loc = node.location
                            self._block_transitions.append(
                                (ordinal, loc.filename, loc.line, state,
                                 result.state, result.fired.name))
                    state = result.state
                    if result.stopped:
                        return state, True
                if self.feas is not None and self.current_store is not None:
                    self.current_store = self.feas.transfer_event(
                        self.current_store, event)
            return state, False

        # Summary mode feeds the machine only the nodes its patterns
        # could match — stepping any other node is a proven no-op (see
        # repro.mc.summary).  Events are still iterated in full order so
        # ordinals, opaque poisoning, and the feasibility transfer below
        # are identical to paths mode.
        for ordinal, event in enumerate(block.events):
            self.current_ordinal = ordinal
            if not self.path_opaque and cfg_slice.event_opaque(event):
                self.path_opaque = True
            if self.budget is not None:
                # Sliced-out nodes are charged but not stepped, so a
                # budgeted run exhausts at the same work level as the
                # paths engine would.
                for _ in range(cfg_slice.skipped_nodes(event)):
                    if not self.budget.charge_step():
                        raise _OutOfBudget()
            for node in cfg_slice.candidates(event):
                if self.budget is not None and not self.budget.charge_step():
                    raise _OutOfBudget()
                self.steps += 1
                result = self.sm.step(state, node, self.ctx_factory)
                if result.fired is not None:
                    self.transitions += 1
                    if (result.state != state
                            and self._block_transitions is not None):
                        loc = node.location
                        self._block_transitions.append(
                            (ordinal, loc.filename, loc.line, state,
                             result.state, result.fired.name))
                state = result.state
                if result.stopped:
                    return state, True
            if self.feas is not None and self.current_store is not None:
                self.current_store = self.feas.transfer_event(
                    self.current_store, event)
        return state, False

    def at_path_end(self, state: str) -> None:
        self.path_ends += 1
        self.exit_states.add(state)
        if self.sm.path_end_action is None:
            return
        # Past every event ordinal, so provenance keeps the whole block.
        self.current_ordinal = 1 << 30
        marker = ast.Ident(name="<function-exit>",
                           location=self.function.location)
        ctx = self.ctx_factory(marker, {}, state)
        self.sm.path_end_action(state, ctx)

    def attach_provenance(self, report) -> None:
        """Record the trail behind a report the first time it fires."""
        key = report_key(report)
        if key in self.sink.provenance or self.current_key is None:
            return
        try:
            self.sink.provenance[key] = build_steps(
                self.cfg, self.parents, self.block_transitions_by_key,
                self.current_key, self.current_ordinal, report,
                pruned=self.pruned_by_key)
        except Exception:
            # Provenance is best-effort; it must never break analysis.
            pass


def _edge_state(sm: StateMachine, block, state: str, edge) -> str:
    """Apply the machine's edge-sensitive hook, if any.

    The hook only fires for ``true``/``false`` edges out of a block whose
    last event is the branch condition (how conditions are lowered by
    :mod:`repro.cfg.builder`).
    """
    if sm.branch_fn is None or not block.events:
        return state
    if edge.label not in ("true", "false"):
        return state
    override = sm.branch_fn(state, block.events[-1], edge.label)
    return override if override is not None else state


def _flush_run(run: _Run, span, *, naive: bool = False) -> None:
    """Fold one machine execution's counters into the active metrics
    registry and close its trace span (both no-ops when observability
    is off)."""
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("engine.naive_functions" if naive
                    else "engine.functions")
        metrics.inc("engine.steps", run.steps)
        metrics.inc("engine.transitions", run.transitions)
        metrics.inc("engine.states", run.states)
        metrics.inc("engine.paths", run.path_ends)
        if run.pruned_edges:
            metrics.inc("engine.pruned_edges", run.pruned_edges)
        if run.merged:
            metrics.inc("engine.merged_states", run.merged)
        suppressed = len(run.sink.suppressed) - run._suppressed_before
        if suppressed > 0:
            metrics.inc("engine.suppressed_reports", suppressed)
    if span is not None:
        span.counters["steps"] = run.steps
        span.counters["transitions"] = run.transitions
        span.counters["states"] = run.states
        span.counters["paths"] = run.path_ends
        if run.pruned_edges:
            span.counters["pruned"] = run.pruned_edges
        if run.merged:
            span.counters["merged"] = run.merged
        span.__exit__(None, None, None)


def run_machine(sm: StateMachine, cfg: Cfg, sink: ReportSink, *,
                budget: Optional[Budget] = None,
                isolate: bool = False,
                feasibility: Optional[bool] = None,
                engine: Optional[str] = None) -> None:
    """Run ``sm`` over every path of ``cfg`` with (block, state) caching.

    With a ``budget``, exploration stops gracefully when it runs out:
    diagnostics found so far stay in ``sink``, which is marked
    ``degraded``.  With ``isolate=True``, an exception escaping the
    machine (a buggy checker action, a malformed pattern) quarantines
    this (checker, function) pair into ``sink.quarantines`` instead of
    propagating.

    ``feasibility`` controls correlated-branch pruning
    (:mod:`repro.mc.feasibility`): ``None`` defers to the process-wide
    ``--feasibility`` default.  When on, the visited set is keyed on
    ``(block, state, store)`` — stores are restricted to still-relevant
    facts at every edge, so the extra key component stays small — and
    edges whose condition contradicts the path's facts are pruned and
    counted (``engine.pruned_edges``).

    ``engine`` selects ``"paths"`` or ``"summary"`` (``None`` defers to
    the process-wide ``--engine`` default).  Summary mode walks a
    checker-aware slice of the CFG, merges away dead tails, skips
    functions the machine cannot observe, and serves repeat analyses of
    an unchanged function from the process-wide summary store — with
    reports, suppressions, provenance, and confidence byte-identical to
    paths mode (docs/engine.md).  Budgeted runs bypass the store: their
    outcome depends on the budget, not just on content.

    Every execution also records path provenance for each *new* report
    (``sink.provenance``), counts its work into the active metrics
    registry, and — when a tracer is active — emits a ``function`` span
    with a sample of ``path`` spans.
    """
    initial = sm.initial_state(cfg.function)
    if initial is None:
        return
    if engine is None:
        engine = _summary.default_engine()
    if feasibility is None:
        feasibility = _feas.default_enabled()
    cfg_slice = None
    walk_sink = sink
    store = store_key = None
    if engine == "summary":
        cfg_slice = _summary.slice_for(sm, cfg)
        metrics = current_metrics()
        if cfg_slice.full_skip:
            # No pattern of this machine can match anything reachable
            # from the entry, and there is no path-end action: the
            # machine cannot observe this function at all.
            if metrics is not None:
                metrics.inc("engine.functions")
                metrics.inc("engine.skipped_functions")
            return
        if budget is None:
            store = function_summaries()
            store_key = store.key(cfg, entry_state=initial,
                                  feasibility=bool(feasibility))
            cached = store.get(sm, store_key)
            if cached is not None:
                _summary.merge_into(sink, cached)
                if metrics is not None:
                    metrics.inc("engine.functions")
                    metrics.inc("engine.summary_hits")
                return
            if metrics is not None:
                metrics.inc("engine.summary_misses")
            # Walk into a private sink so the summary records this
            # function's *full* emissions, not the delta left after
            # unit-wide de-duplication — a replay into any sink must
            # compose the way a live walk would.
            walk_sink = ReportSink()
    feas = _feas.for_cfg(cfg) if feasibility else None
    run = _Run(sm, cfg, walk_sink, budget, feas, cfg_slice)
    span = (run.tracer.span("function", cfg.name, checker=sm.name)
            if run.tracer.enabled else None)
    previous_hook = walk_sink.on_new_report
    previous_gate = walk_sink.report_gate
    walk_sink.on_new_report = run.attach_provenance
    walk_sink.report_gate = run.opaque_gate
    if budget is not None:
        budget.start_clock()
    completed = False
    try:
        _walk_cached(run, cfg)
        completed = True
    except _OutOfBudget:
        walk_sink.degraded = True
        walk_sink.degradation_notes.append(
            f"[{sm.name}] {cfg.name}: exploration stopped — {budget.note()}"
        )
        if span is not None:
            span.status = "degraded"
    except Exception as exc:
        if span is not None:
            span.status = "error"
        if not isolate:
            raise
        walk_sink.add_quarantine(Quarantine(
            checker=sm.name, function=cfg.name, phase="path-walk",
            error_type=type(exc).__name__, message=str(exc),
        ))
    finally:
        walk_sink.on_new_report = previous_hook
        walk_sink.report_gate = previous_gate
        _flush_run(run, span)
        if walk_sink is not sink:
            _summary.merge_into(sink, walk_sink)
            if (completed and store is not None and not walk_sink.degraded
                    and not walk_sink.quarantines):
                store.put(sm, store_key, FunctionSummary(
                    entry_state=initial,
                    exit_states=tuple(sorted(run.exit_states)),
                    reports=tuple(walk_sink.reports),
                    suppressed=tuple(walk_sink.suppressed),
                    provenance=dict(walk_sink.provenance),
                ))


def _walk_cached(run: _Run, cfg: Cfg) -> None:
    feas = run.feas
    cfg_slice = run.cfg_slice
    initial_store = feas.initial_store() if feas is not None else None
    visited: set[tuple] = set()
    stack: list[tuple] = [
        (cfg.entry, run.sm.initial_state(cfg.function), None, None,
         initial_store, None, False)
    ]
    path_spans = 0
    while stack:
        block, state, pred_key, edge_label, store, fact, opaque = stack.pop()
        # The opaque flag is part of the visited key: a block reached on
        # both a clean and a poisoned path must be explored under both,
        # or clean-path reports past the join would be lost.  Strict
        # parses carry a constant False here, so caching is unchanged.
        if feas is not None:
            key = (block.index, state, store.key(), opaque)
        else:
            key = (block.index, state, opaque)
        if key in visited:
            # A join point: this path reached an abstract state already
            # explored and is merged into the earlier visit.
            run.merged += 1
            continue
        visited.add(key)
        run.states += 1
        run.parents[key] = (pred_key, edge_label, fact)
        run.current_key = key
        run.current_store = store
        run.path_opaque = opaque
        in_block: list = []
        run._block_transitions = in_block
        state, stopped = run.run_block_events(block, state)
        store = run.current_store
        opaque = run.path_opaque
        if in_block:
            run.block_transitions_by_key[key] = in_block
        if stopped:
            continue
        if block is cfg.exit or not block.out_edges:
            # The exit, or a dead end that is not the exit (e.g. an
            # infinite loop body).
            run.at_path_end(state)
            if (run.tracer.enabled
                    and path_spans < MAX_PATH_SPANS_PER_FUNCTION):
                path_spans += 1
                with run.tracer.span("path", f"{cfg.name}#{run.path_ends}",
                                     end_state=state):
                    pass
            continue
        for edge in reversed(block.out_edges):
            if cfg_slice is not None and cfg_slice.skip_edge(edge):
                # Dead-tail merge: no candidate node is reachable past
                # this edge and the machine has no path-end action, so
                # every path through the region is equivalent — don't
                # explore it.  The branch assumption is still evaluated
                # so pruned-edge provenance on this (live) block matches
                # the path engine byte for byte.
                if _edge_assume(run, block, store, edge, key)[0] is not _PRUNED:
                    run.merged += 1
                continue
            next_store, next_fact = _edge_store(run, block, store, edge, key)
            if next_store is _PRUNED:
                continue
            stack.append((edge.dst, _edge_state(run.sm, block, state, edge),
                          key, edge.label, next_store, next_fact, opaque))


#: Sentinel: the edge's condition contradicts the path's facts.
_PRUNED = object()


def _edge_assume(run: _Run, block, store, edge, key):
    """Assume ``edge``'s branch outcome into ``store``.

    Returns ``(store, fact)``, or ``(_PRUNED, None)`` after recording
    the contradiction (metrics counter and provenance) when the edge's
    condition contradicts the path's facts.
    """
    feas = run.feas
    if feas is None:
        return None, None
    fact = None
    if edge.label in ("true", "false") and block.events:
        cond = block.events[-1]
        outcome = feas.assume_edge(store, cond, edge.label)
        if isinstance(outcome, _feas.Contradiction):
            run.pruned_edges += 1
            loc = cond.location
            run.pruned_by_key.setdefault(key, []).append({
                "kind": "pruned", "file": loc.filename, "line": loc.line,
                "taken": edge.label, "reason": outcome.reason,
            })
            return _PRUNED, None
        store, fact = outcome
    return store, fact


def _edge_store(run: _Run, block, store, edge, key):
    """The store carried across ``edge``, or ``(_PRUNED, None)``.

    Branch conditions (``true``/``false`` edges out of a block whose
    last event is the condition) are assumed into the store
    (:func:`_edge_assume`).  Every survivor is restricted to the facts
    still relevant at the destination, which is what keeps the
    ``(block, state, store)`` visited set from outgrowing the plain
    ``(block, state)`` one.
    """
    if run.feas is None:
        return None, None
    store, fact = _edge_assume(run, block, store, edge, key)
    if store is _PRUNED:
        return _PRUNED, None
    return run.feas.restrict(store, edge.dst), fact


def run_machine_naive(sm: StateMachine, cfg: Cfg, sink: ReportSink,
                      max_paths: int = 100000,
                      budget: Optional[Budget] = None,
                      feasibility: Optional[bool] = None) -> int:
    """Run ``sm`` by explicit path enumeration (no state cache).

    Back edges are skipped, as in :mod:`repro.cfg.paths`.  Returns the
    number of paths walked.  Exists to quantify what the state cache buys
    (ablation 1 in DESIGN.md).  Feasibility pruning applies here too
    (same semantics as :func:`run_machine`; pruned paths are simply not
    enumerated), though no provenance is recorded.

    Note: on loop-free CFGs this produces exactly the diagnostics of
    :func:`run_machine`; with loops it can under-approximate, because
    cutting back edges loses the "loop body executed, then exited"
    paths that the cached engine covers by following back edges with
    memoization.
    """
    initial = sm.initial_state(cfg.function)
    if initial is None:
        return 0
    if feasibility is None:
        feasibility = _feas.default_enabled()
    feas = _feas.for_cfg(cfg) if feasibility else None
    run = _Run(sm, cfg, sink, budget, feas)
    span = (run.tracer.span("function", f"{cfg.name} (naive)",
                            checker=sm.name)
            if run.tracer.enabled else None)
    if budget is not None:
        budget.start_clock()
    back = cfg.back_edges()
    paths_walked = 0
    initial_store = feas.initial_store() if feas is not None else None
    previous_gate = sink.report_gate
    sink.report_gate = run.opaque_gate
    stack: list[tuple] = [(cfg.entry, initial, initial_store, False)]
    try:
        while stack:
            block, state, store, opaque = stack.pop()
            run.current_store = store
            run.path_opaque = opaque
            state, stopped = run.run_block_events(block, state)
            store = run.current_store
            opaque = run.path_opaque
            if stopped:
                paths_walked += 1
                continue
            edges = [
                e for e in block.out_edges
                if (block.index, e.dst.index) not in back
            ]
            if block is cfg.exit or not edges:
                run.at_path_end(state)
                paths_walked += 1
                if budget is not None and not budget.charge_path():
                    raise _OutOfBudget()
                if paths_walked > max_paths:
                    raise ValueError(
                        f"{cfg.name}: more than {max_paths} paths")
                continue
            for edge in reversed(edges):
                next_store, _fact = _edge_store(run, block, store, edge,
                                                None)
                if next_store is _PRUNED:
                    continue
                stack.append((edge.dst,
                              _edge_state(sm, block, state, edge),
                              next_store, opaque))
    except _OutOfBudget:
        sink.degraded = True
        sink.degradation_notes.append(
            f"[{sm.name}] {cfg.name}: naive enumeration stopped — "
            f"{budget.note()}"
        )
        if span is not None:
            span.status = "degraded"
    finally:
        sink.report_gate = previous_gate
        _flush_run(run, span, naive=True)
    return paths_walked


def check_function(sm: StateMachine, function: ast.FunctionDef,
                   sink: Optional[ReportSink] = None, *,
                   budget: Optional[Budget] = None,
                   keep_going: bool = False,
                   feasibility: Optional[bool] = None) -> ReportSink:
    """Convenience: build the CFG of ``function`` and run ``sm`` over it."""
    sink = sink if sink is not None else ReportSink()
    run_machine(sm, build_cfg(function), sink, budget=budget,
                isolate=keep_going, feasibility=feasibility)
    return sink


def check_unit(sm: StateMachine, unit: ast.TranslationUnit,
               sink: Optional[ReportSink] = None, *,
               budget: Optional[Budget] = None,
               keep_going: bool = False,
               naive_fallback: bool = True,
               feasibility: Optional[bool] = None) -> ReportSink:
    """Run ``sm`` over every function in a translation unit.

    With ``keep_going``, a crash in one (checker, function) pair —
    whether in CFG construction or in the machine itself — quarantines
    that pair and moves on; the remaining functions still report.  A
    quarantined pair is retried once with the naive path-enumeration
    engine (``naive_fallback``), whose different exploration order can
    dodge state-cache-dependent crashes — unless the ``budget`` is
    already exhausted, in which case retries are skipped: partial
    results now beat complete results never.
    """
    sink = sink if sink is not None else ReportSink()
    for function in unit.functions():
        try:
            cfg = build_cfg(function)
        except Exception as exc:
            if not keep_going:
                raise
            sink.add_quarantine(Quarantine(
                checker=sm.name, function=function.name, phase="cfg-build",
                error_type=type(exc).__name__, message=str(exc),
            ))
            continue
        before = len(sink.quarantines)
        run_machine(sm, cfg, sink, budget=budget, isolate=keep_going,
                    feasibility=feasibility)
        crashed = len(sink.quarantines) > before
        if (crashed and naive_fallback
                and not (budget is not None and budget.exhausted)):
            quarantine = sink.quarantines[-1]
            try:
                run_machine_naive(sm, cfg, sink, budget=budget,
                                  feasibility=feasibility)
            except Exception:
                # The fallback crashed too; the quarantine stands.
                pass
            else:
                sink.drop_quarantine(quarantine)
                sink.degradation_notes.append(
                    f"[{sm.name}] {function.name}: cached engine crashed "
                    f"({quarantine.error_type}); recovered via naive "
                    f"enumeration (loops under-approximated)"
                )
    return sink
