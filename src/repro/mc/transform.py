"""MC as a *transformer*: source-level optimization of protocol code.

The paper positions meta-level compilation as a framework to "check,
transform, and optimize system-level operations" (§3.1), and its §4
notes the FLASH convention that ``WAIT_FOR_DB_FULL`` "is only called
along paths that require access to the buffer contents, and it is called
as late as possible" — synchronization is expensive, so redundant waits
cost parallelism.

:class:`RedundantWaitEliminator` implements that optimization with the
same infrastructure the checkers use: a wait statement is *redundant*
when every path from the function entry to it already performed a wait
(equivalently: it is dominated by blocks whose paths all waited).  The
analysis reuses the path-sensitive engine's semantics in reverse — we
compute, per block, whether all paths into it have synchronized — and
the rewrite drops the statement from the AST, after which
:func:`repro.lang.unparse.unparse_unit` regenerates source.

Safety: removing a dominated wait never changes which reads are
synchronized, so the §4 checker must be clean before and after; tests
and the simulator verify both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg import Cfg, build_cfg
from ..lang import ast

WAIT = "WAIT_FOR_DB_FULL"


def _is_wait_stmt(stmt: ast.Stmt) -> bool:
    return (isinstance(stmt, ast.ExprStmt)
            and isinstance(stmt.expr, ast.Call)
            and stmt.expr.callee_name == WAIT)


@dataclass
class TransformResult:
    """What a transformation pass did to one function."""

    function: str
    removed: list[ast.Node] = field(default_factory=list)

    @property
    def removed_lines(self) -> list[int]:
        return [node.location.line for node in self.removed]


class RedundantWaitEliminator:
    """Remove ``WAIT_FOR_DB_FULL`` calls that every path already made."""

    def transform_function(self, function: ast.FunctionDef) -> TransformResult:
        result = TransformResult(function=function.name)
        cfg = build_cfg(function)
        synced_at = self._synced_before_event(cfg)
        redundant_ids = {
            node_id for node_id, synced in synced_at.items() if synced
        }
        if redundant_ids:
            self._remove_stmts(function.body, redundant_ids, result)
            # The AST changed in place: a function summary fingerprint
            # taken before the rewrite no longer describes this node.
            from .cache import invalidate_fingerprint
            invalidate_fingerprint(function)
        return result

    # -- analysis ------------------------------------------------------------

    @staticmethod
    def _is_wait_event(event: ast.Node) -> bool:
        return (isinstance(event, ast.Call)
                and event.callee_name == WAIT)

    def _synced_before_event(self, cfg: Cfg) -> dict:
        """For each wait event: have *all* paths reaching it already waited?

        Standard forward must-analysis: ``IN[b] = AND over predecessors
        of OUT[p]``, ``OUT[p] = IN[p] or p contains a wait``, initialized
        optimistically (True everywhere but the entry) and iterated to
        the greatest fixed point, so loops are handled soundly (a loop
        cannot unsynchronize a buffer).
        """
        reachable = cfg.reachable_blocks()
        reachable_ids = {b.index for b in reachable}
        synced_in: dict[int, bool] = {b.index: True for b in reachable}
        synced_in[cfg.entry.index] = False

        def out_state(block) -> bool:
            return synced_in[block.index] or self._block_waits(block)

        changed = True
        while changed:
            changed = False
            for block in reachable:
                if block is cfg.entry:
                    continue
                preds = [
                    e.src for e in block.in_edges
                    if e.src.index in reachable_ids
                ]
                new = all(out_state(p) for p in preds) if preds else False
                if new != synced_in[block.index]:
                    synced_in[block.index] = new
                    changed = True

        # Keyed by id() because AST nodes are unhashable by design.
        synced_at_event: dict[int, bool] = {}
        for block in reachable:
            state = synced_in[block.index]
            for event in block.events:
                for node in event.walk():
                    if self._is_wait_event(node):
                        synced_at_event[id(node)] = state
                        state = True
        return synced_at_event

    @staticmethod
    def _block_waits(block) -> bool:
        return any(
            isinstance(node, ast.Call) and node.callee_name == WAIT
            for event in block.events
            for node in event.walk()
        )

    # -- rewriting ---------------------------------------------------------------

    def _remove_stmts(self, block: ast.Block, redundant_ids: set,
                      result: TransformResult) -> None:
        kept: list[ast.Stmt] = []
        for stmt in block.stmts:
            if _is_wait_stmt(stmt) and id(stmt.expr) in redundant_ids:
                result.removed.append(stmt.expr)
                continue
            for child in stmt.children():
                if isinstance(child, ast.Block):
                    self._remove_stmts(child, redundant_ids, result)
            kept.append(stmt)
        block.stmts = kept

    def transform_unit(self, unit: ast.TranslationUnit) -> list[TransformResult]:
        """Transform every function; returns per-function results."""
        return [
            self.transform_function(function)
            for function in unit.functions()
        ]
