"""Inter-procedural analysis helpers (the paper's §7 framework).

xg++'s global framework emitted per-function flow graphs, linked them
into a call graph, and let extensions traverse it.  The generic piece —
processing functions bottom-up so callee summaries exist before callers
need them, with strongly-connected components handled as cycles — lives
here.  The lane checker supplies the per-function summarizer.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

import networkx as nx

from ..cfg.callgraph import CallGraph, FlowGraph

Summary = TypeVar("Summary")


def bottom_up(
    callgraph: CallGraph,
    summarize: Callable[[FlowGraph, dict[str, Summary], set[str]], Summary],
) -> dict[str, Summary]:
    """Compute a summary per function, callees first.

    ``summarize(flowgraph, summaries, cycle_peers)`` receives the
    already-computed summaries of every callee outside the function's own
    SCC, plus the names of functions in the same SCC (``cycle_peers``),
    which the client must treat as fixed points (paper §7: cycles that do
    not send can be ignored; cycles that send are flagged).

    A ``summarize`` whose result is pure in those three inputs can be
    memoized across runs with :class:`repro.mc.cache.AnalysisMemo` —
    key on flow-graph content plus the callee summaries it can consult
    (see the lanes checker) and keep any report emission *outside* the
    memoized computation, since reports are per-run state.
    """
    condensation = nx.condensation(callgraph.nx)
    summaries: dict[str, Summary] = {}
    for scc_id in reversed(list(nx.topological_sort(condensation))):
        members: set[str] = set(condensation.nodes[scc_id]["members"])
        in_cycle = len(members) > 1 or any(
            callgraph.nx.has_edge(m, m) for m in members
        )
        for name in sorted(members):
            graph = callgraph.graphs.get(name)
            if graph is None:
                continue
            peers = members if in_cycle else set()
            summaries[name] = summarize(graph, summaries, peers)
    return summaries


def walk_paths(
    graph: FlowGraph,
    visit: Callable[[int, int, Optional[str], Optional[dict]], None],
) -> None:
    """Visit every (block, event) pair of a flow graph in block order.

    ``visit(block_index, event_index, call_target, annotation)`` — a
    convenience for clients that only need flat iteration rather than
    path sensitivity.
    """
    for node in graph.nodes.values():
        for i, call in enumerate(node.calls):
            visit(node.index, i, call, node.annotations[i])
