"""Parallel checker fleet: fan (checker, translation-unit) work across cores.

The paper's xg++ applies every checker down every path of every
function — embarrassingly parallel work this module schedules as
(checker, unit) **work items** over a :class:`multiprocessing` pool:

* per-function checkers (``Checker.unit_parallel``) get one item per
  translation unit; inter-procedural checkers (lanes, exec-restrict)
  run as a single whole-program item;
* items are scheduled **largest first** (by source size) so the long
  poles start early and tail latency stays low;
* the queue carries *paths and checker names*, never pickled ASTs —
  each worker parses and annotates units locally, once per process,
  through the content-hash memo of :mod:`repro.lang.memo`;
* workers ship back serialised result payloads
  (:func:`repro.mc.cache.result_to_payload`) — quarantine records and
  degradation notes survive the round-trip — and the parent merges
  them into one deterministic report, sorted by
  ``(file, line, column, checker)`` so ``--jobs 4`` output is
  byte-identical to ``--jobs 1``;
* a :class:`repro.mc.cache.ResultCache` short-circuits items whose
  key (content hash × checker fingerprint × engine fingerprint) was
  seen before, so unchanged files are skipped entirely on re-runs;
* a wall-clock budget is one run-wide absolute deadline shared by all
  workers (items starting after it report themselves skipped and
  degraded), not a fresh ``max_seconds`` per process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..errors import SourceError, SourceReadError
from ..faults.plan import FaultPlan
from ..lang import parser as lang_parser
from ..lang.memo import parse_annotated, source_fingerprint
from ..metal.runtime import Report, ReportSink
from .cache import (
    SCHEMA_VERSION,
    CacheStats,
    ResultCache,
    checker_fingerprint,
    engine_fingerprint,
    metal_fingerprint,
    result_from_payload,
    result_to_payload,
    sink_from_payload,
    sink_to_payload,
    work_item_key,
)
from .engine import check_unit
from .resilience import Budget, Quarantine
from .supervisor import RunJournal, RunStats, SupervisorPolicy


def resolve_jobs(value) -> int:
    """``N`` | ``"auto"`` | ``None`` → a concrete worker count (≥ 1)."""
    if value is None:
        return 1
    if isinstance(value, int):
        return max(1, value)
    text = str(value).strip().lower()
    if text in ("", "1"):
        return 1
    if text == "auto":
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-linux
            return max(1, os.cpu_count() or 1)
    return max(1, int(text))


@dataclass(frozen=True)
class WorkItem:
    """One (checker, unit-set) unit of schedulable work."""

    kind: str                 # "checker" (registered) | "metal" (textual)
                              # | "campaign" (simulation shard)
    checker: str              # registered checker name; "" for metal/campaign
    paths: tuple              # one unit, or every unit for global items
    weight: int               # source bytes — schedule largest first
                              # (campaign: runs in the shard)
    index: int                # deterministic merge position
                              # (campaign: the shard index)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs, shipped once at pool start."""

    spec_text: Optional[str] = None
    spec_name: str = "<spec>"
    keep_going: bool = False
    #: Absolute ``time.time()`` deadline shared by the whole run.
    deadline: Optional[float] = None
    #: Per-item step/path caps (metal items; run-wide when serial).
    budget_steps: Optional[int] = None
    budget_paths: Optional[int] = None
    metal_text: Optional[str] = None
    metal_name: str = "<metal>"
    #: Worker-site fault rules (``worker_crash``/``worker_hang``/...)
    #: armed only inside supervised worker processes, never inline.
    fault_plan: Optional[FaultPlan] = None
    #: Directory each worker appends its trace spans into
    #: (``--trace``); ``None`` disables span tracing entirely.
    trace_dir: Optional[str] = None
    #: Collect per-item metrics into the payload's ``obs`` section
    #: (``--trace``/``--metrics-out``); stripped before cache/journal.
    collect_obs: bool = False
    #: Directory supervised workers append heartbeat events into
    #: (``--progress``); ``None`` disables heartbeats.  Like the trace
    #: dir, writes are best-effort and never fail the analysis.
    heartbeat_dir: Optional[str] = None
    #: Infeasible-path pruning (``--feasibility``, repro.mc.feasibility).
    #: Shipped in the config so every execution mode — inline, pooled,
    #: supervised — runs the engine with the same setting.
    feasibility: bool = True
    #: Frontend mode (``--frontend strict|tolerant``): strict parses
    #: raise on the first unsupported construct; tolerant parses recover
    #: (repro.lang.parser) and unrecoverable regions become per-function
    #: ``Quarantine(phase="input")`` entries instead of run failures.
    frontend: str = "strict"
    #: Engine mode (``--engine paths|summary``, repro.mc.summary):
    #: summary walks checker-aware slices with dead-tail merging and
    #: function summaries; paths is the exhaustive oracle.
    engine: str = "summary"
    #: Canonical :class:`repro.campaign.plans.CampaignSpec` JSON for
    #: campaign items (``mc-check campaign``); ``None`` otherwise.
    campaign_spec: Optional[str] = None
    #: Checker-pack directories (``--pack-dir``, repro.packs), resolved
    #: by the parent and re-loaded at worker init so spawned/supervised
    #: workers carry the same registry as the parent.  Loading is
    #: idempotent, and the parent always loads first, so workers can
    #: only re-validate an already-accepted pack.
    pack_dirs: tuple = ()


# -- worker side -------------------------------------------------------------

_CONFIG: Optional[WorkerConfig] = None
_SPEC_MEMO: dict[str, object] = {}
_SM_MEMO: dict[str, object] = {}

#: Worker-level fault injection state.  Armed by the supervisor's
#: worker entry point only, so inline/serial execution (where a
#: ``worker_crash`` would take down the *parent*) never injects.
_WORKER_FAULTS = None
_WORKER_ATTEMPT = 0


def _init_worker(config: WorkerConfig) -> None:
    global _CONFIG
    _CONFIG = config
    # The engine reads the process-wide default; set it here so the flag
    # reaches inline runs, pool workers, and supervised workers alike
    # (the supervisor's _worker_main calls _init_worker too).  The
    # frontend mode travels the same way: every parse in the worker —
    # including the memoized ones — honours ``--frontend``.
    from . import feasibility, summary
    feasibility.set_default_enabled(config.feasibility)
    lang_parser.set_default_mode(config.frontend)
    summary.set_default_engine(config.engine)
    if config.pack_dirs:
        from ..packs import load_packs
        load_packs(Path(d) for d in config.pack_dirs)


def _arm_worker_faults(config: WorkerConfig) -> None:
    """Called in supervised worker processes to enable worker faults."""
    global _WORKER_FAULTS
    if config.fault_plan is not None:
        from ..faults.worker import WorkerFaultInjector
        _WORKER_FAULTS = WorkerFaultInjector(config.fault_plan)


def _maybe_worker_fault(item: "WorkItem") -> None:
    if _WORKER_FAULTS is not None:
        _WORKER_FAULTS.perturb(item.index, _WORKER_ATTEMPT,
                               checker=item.checker)


def _spec_info(config: WorkerConfig):
    if not config.spec_text:
        return None
    info = _SPEC_MEMO.get(config.spec_text)
    if info is None:
        from ..flash.spec import parse_spec
        info = parse_spec(config.spec_text, config.spec_name)
        _SPEC_MEMO[config.spec_text] = info
    return info


def _metal_machine(config: WorkerConfig):
    sm = _SM_MEMO.get(config.metal_text)
    if sm is None:
        from ..metal.parser import parse_metal
        sm = parse_metal(config.metal_text, filename=config.metal_name)
        _SM_MEMO[config.metal_text] = sm
    return sm


def _past_deadline(config: WorkerConfig) -> bool:
    return config.deadline is not None and time.time() >= config.deadline


def _item_label(item: WorkItem, config: WorkerConfig) -> str:
    if item.kind == "checker":
        return item.checker
    if item.kind == "campaign":
        return f"campaign-shard-{item.index}"
    return config.metal_name


def _skipped_payload(item: WorkItem, config: WorkerConfig,
                     note: str) -> dict:
    """A degraded, kind-aware payload for an item that never ran
    (deadline passed before dispatch, run interrupted)."""
    label = _item_label(item, config)
    where = ", ".join(item.paths)
    if item.kind == "metal":
        sink = ReportSink()
        sink.degraded = True
        sink.degradation_notes.append(f"[{label}] {where}: {note}")
        return sink_to_payload(sink)
    if item.kind == "campaign":
        # Degraded: never journaled/cached — the shard reruns on resume.
        return {"schema": SCHEMA_VERSION, "shard": item.index,
                "degraded": True, "outcomes": [],
                "degradation_notes": [f"[{label}] {note}"]}
    from ..checkers.base import CheckerResult
    result = CheckerResult(checker=label, degraded=True)
    result.degradation_notes.append(f"[{label}] {where}: {note}")
    return result_to_payload(result)


def _quarantine_payload(item: WorkItem, config: WorkerConfig,
                        error_type: str, message: str,
                        phase: str = "worker") -> dict:
    """A kind-aware payload carrying a :class:`Quarantine` record —
    poisoned items (``phase="worker"``) and unreadable inputs
    (``phase="input"``) flow into the existing DEGRADED reporting."""
    label = _item_label(item, config)
    where = ", ".join(item.paths)
    quarantine = Quarantine(
        checker=label, function="*", phase=phase,
        error_type=error_type, message=f"{where}: {message}")
    if item.kind == "campaign":
        return {"schema": SCHEMA_VERSION, "shard": item.index,
                "degraded": True, "outcomes": [],
                "quarantines": [{
                    "checker": label, "function": "*", "phase": phase,
                    "error_type": error_type,
                    "message": f"{where}: {message}"}],
                "degradation_notes": [f"[{label}] {where}: {message}"]}
    if item.kind == "metal":
        sink = ReportSink()
        sink.add_quarantine(quarantine)
        sink.degradation_notes.append(f"[{label}] {where}: {message}")
        return sink_to_payload(sink)
    from ..checkers.base import CheckerResult
    result = CheckerResult(checker=label, degraded=True)
    result.quarantines.append(quarantine)
    result.degradation_notes.append(f"[{label}] {where}: {message}")
    return result_to_payload(result)


def _input_quarantines(label: str, units) -> list[Quarantine]:
    """Per-function ``phase="input"`` records for every region the
    tolerant frontend gave up on (``TranslationUnit.quarantined``).

    Each unrecoverable top-level region becomes its own record, named
    after the function the parser guessed it belonged to, so the
    fleet's dedup-on-(checker, function) keeps distinct broken regions
    distinct in the DEGRADED section."""
    records = []
    for unit in units:
        for func, message in getattr(unit, "quarantined", ()):
            records.append(Quarantine(
                checker=label, function=func, phase="input",
                error_type="ParseError", message=message))
    return records


def _run_checker_item(item: WorkItem, config: WorkerConfig) -> dict:
    from ..checkers.base import CheckerResult, get_checker
    from ..project import Program, read_sources

    name = item.checker
    if _past_deadline(config):
        result = CheckerResult(checker=name, degraded=True)
        result.degradation_notes.append(
            f"[{name}] {', '.join(item.paths)}: not analysed — "
            "run deadline exceeded")
        return result_to_payload(result)
    _maybe_worker_fault(item)
    # A unit deleted between dispatch and execution must not kill the
    # worker: it becomes a per-item input quarantine.  In strict mode,
    # parse errors still propagate even under keep_going, exactly as
    # the serial driver treats them: keep-going covers crashing
    # *checkers*, not broken *inputs*.  In tolerant mode the parser is
    # designed never to raise — this net exists so a frontend bug
    # degrades to an input quarantine rather than a crashed run.
    try:
        files = read_sources(item.paths)
    except SourceReadError as exc:
        return _quarantine_payload(item, config, type(exc).__name__,
                                   str(exc), phase="input")
    try:
        program = Program(files, info=_spec_info(config), unit_memo=True)
    except SourceError as exc:
        if config.frontend != "tolerant":
            raise
        return _quarantine_payload(item, config, type(exc).__name__,
                                   str(exc), phase="input")
    checker = get_checker(name)
    try:
        result = checker.check(program)
    except Exception as exc:
        # Pack checkers are sandboxed unconditionally: third-party code
        # raising becomes Quarantine(phase="pack") on that pack's
        # result, never a crashed worker or a failed fleet.  Builtins
        # keep the opt-in keep_going contract.
        from ..checkers.base import is_pack_checker
        from_pack = is_pack_checker(name)
        if not config.keep_going and not from_pack:
            raise
        result = CheckerResult(checker=name, degraded=True)
        result.quarantines.append(Quarantine(
            checker=name, function="*",
            phase="pack" if from_pack else "checker",
            error_type=type(exc).__name__, message=str(exc),
        ))
    for quarantine in _input_quarantines(name, program.units.values()):
        result.quarantines.append(quarantine)
        result.degraded = True
        result.degradation_notes.append(
            f"[{name}] {quarantine.function}: unparseable region "
            f"quarantined — {quarantine.message}")
    return result_to_payload(result)


def _item_budget(config: WorkerConfig) -> Optional[Budget]:
    remaining = None
    if config.deadline is not None:
        remaining = max(0.001, config.deadline - time.time())
    if (config.budget_steps is None and config.budget_paths is None
            and remaining is None):
        return None
    return Budget(max_steps=config.budget_steps,
                  max_paths=config.budget_paths,
                  max_seconds=remaining)


def _run_metal_item(item: WorkItem, config: WorkerConfig,
                    shared_budget: Optional[Budget] = None) -> dict:
    from ..project import read_sources

    path = item.paths[0]
    if _past_deadline(config):
        sink = ReportSink()
        sink.degraded = True
        sink.degradation_notes.append(
            f"[{config.metal_name}] {path}: not analysed — "
            "run deadline exceeded")
        return sink_to_payload(sink)
    _maybe_worker_fault(item)
    sm = _metal_machine(config)
    try:
        text = read_sources(item.paths)[path]
    except SourceReadError as exc:
        return _quarantine_payload(item, config, type(exc).__name__,
                                   str(exc), phase="input")
    try:
        unit, _sema = parse_annotated(path, text)
    except SourceError as exc:
        if config.frontend != "tolerant":
            raise
        return _quarantine_payload(item, config, type(exc).__name__,
                                   str(exc), phase="input")
    budget = shared_budget if shared_budget is not None else _item_budget(config)
    sink = ReportSink()
    check_unit(sm, unit, sink, budget=budget, keep_going=config.keep_going)
    label = _item_label(item, config)
    for quarantine in _input_quarantines(label, [unit]):
        if sink.add_quarantine(quarantine):
            sink.degradation_notes.append(
                f"[{label}] {quarantine.function}: unparseable region "
                f"quarantined — {quarantine.message}")
    return sink_to_payload(sink)


def _execute_item_plain(item: WorkItem, config: WorkerConfig,
                        shared_budget: Optional[Budget] = None) -> dict:
    if item.kind == "metal":
        return _run_metal_item(item, config, shared_budget)
    if item.kind == "campaign":
        from ..campaign.runner import run_campaign_item
        return run_campaign_item(item, config)
    return _run_checker_item(item, config)


#: This process's trace file handle, one per (pid, trace run).  Keyed by
#: pid because forked workers inherit the parent's module state and must
#: not share its file.
_TRACER: Optional[tuple] = None


def _obs_tracer(config: WorkerConfig):
    from ..obs.trace import NULL_TRACER, Tracer

    global _TRACER
    if config.trace_dir is None:
        return NULL_TRACER
    pid = os.getpid()
    if _TRACER is None or _TRACER[0] != pid:
        _TRACER = (pid, Tracer(Path(config.trace_dir)
                               / f"worker-{pid}.jsonl"))
    return _TRACER[1]


def _execute_item(item: WorkItem, config: WorkerConfig,
                  shared_budget: Optional[Budget] = None) -> dict:
    """Execute one work item, observed when the config asks for it.

    Observation wraps — never alters — execution: a per-item metrics
    registry and this process's tracer are activated around
    :func:`_execute_item_plain`, the item's counters/timings ship back
    in the payload's ``obs`` section, and an item span (id
    ``i<index>a<attempt>``) closes into the worker's trace file.
    """
    if not config.collect_obs and config.trace_dir is None:
        return _execute_item_plain(item, config, shared_budget)
    from ..obs.metrics import MetricsRegistry, activate_metrics
    from ..obs.trace import activate_tracer

    tracer = _obs_tracer(config)
    registry = MetricsRegistry()
    previous_metrics = activate_metrics(registry)
    previous_tracer = activate_tracer(tracer)
    span = (tracer.item(item.index, _WORKER_ATTEMPT,
                        _item_label(item, config), units=list(item.paths))
            if tracer.enabled else None)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    try:
        payload = _execute_item_plain(item, config, shared_budget)
    except BaseException as exc:
        if span is not None:
            span.status = "error"
            span.set(error=type(exc).__name__)
            span.__exit__(None, None, None)
        raise
    finally:
        activate_tracer(previous_tracer)
        activate_metrics(previous_metrics)
    if config.collect_obs:
        payload["obs"] = {
            "counters": dict(registry.counters),
            "wall": round(time.perf_counter() - wall0, 6),
            "cpu": round(time.process_time() - cpu0, 6),
        }
    if span is not None:
        if payload.get("quarantines"):
            span.status = "quarantined"
        elif payload.get("degraded"):
            span.status = "degraded"
        span.counters.update(registry.counters)
        span.__exit__(None, None, None)
    return payload


# -- parent side -------------------------------------------------------------

def _mp_context():
    import multiprocessing as mp
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return mp.get_context("spawn")


def _shared_serial_budget(config: WorkerConfig) -> Optional[Budget]:
    """Serial runs keep PR 1's semantics: one Budget across every item."""
    seconds = None
    if config.deadline is not None:
        seconds = max(0.001, config.deadline - time.time())
    if (config.budget_steps is None and config.budget_paths is None
            and seconds is None):
        return None
    return Budget(max_steps=config.budget_steps,
                  max_paths=config.budget_paths,
                  max_seconds=seconds)


def _run_items(items: list, config: WorkerConfig, jobs: int,
               cache: Optional[ResultCache], keys: dict,
               journal: Optional[RunJournal] = None,
               policy: Optional[SupervisorPolicy] = None,
               observation=None,
               ) -> tuple[dict, Optional[Budget], RunStats]:
    """Execute items (journal replay and cache first, then supervised
    pool or inline).

    ``observation`` (a :class:`repro.obs.Observation`, optional) sees
    every item exactly once: fresh completions via ``absorb_payload``,
    everything resolved parent-side — journal replays, cache hits,
    poison quarantines, interruption skips — via ``item_resolved``.

    Returns ``(payloads by item index, shared serial budget or None,
    supervision stats)``.
    """
    from .supervisor import SupervisorUnavailable, supervise_items

    policy = policy if policy is not None else SupervisorPolicy()
    stats = RunStats()
    payloads: dict[int, dict] = {}
    pending: list[WorkItem] = []

    def resolved(item: WorkItem, status: str) -> None:
        if observation is not None:
            observation.item_resolved(item, _item_label(item, config),
                                      status)

    if observation is not None:
        observation.set_item_total(len(items))
    for item in items:
        key = keys.get(item.index)
        payload = None
        if journal is not None and key is not None:
            payload = journal.replay(key)
            if payload is not None:
                stats.replayed += 1
                resolved(item, "replayed")
        if payload is None and cache is not None and key is not None:
            payload = cache.get(key)
            if payload is not None:
                resolved(item, "cached")
        if payload is not None:
            payloads[item.index] = payload
        else:
            pending.append(item)

    def record(item: WorkItem, payload: dict) -> None:
        if observation is not None:
            observation.absorb_payload(item, _item_label(item, config),
                                       payload)
        key = keys.get(item.index)
        if key is None:
            return
        if cache is not None:
            cache.put(key, payload)
        if journal is not None:
            journal.record(key, payload)

    shared_budget: Optional[Budget] = None
    progress = observation.progress if observation is not None else None
    if observation is not None:
        observation.begin_pool(len(pending))
    if not pending:
        if progress is not None:
            progress.finish(stats)
        return payloads, shared_budget, stats
    # Largest units first: the long poles start immediately, the small
    # ones backfill, and the pool drains with minimal tail latency.
    pending.sort(key=lambda it: (-it.weight, it.index))

    def run_inline() -> None:
        nonlocal shared_budget
        from . import feasibility, summary
        # Inline execution runs in the caller's process: restore the
        # caller's feasibility/frontend/engine defaults afterwards so a
        # library user mixing runs is not left with flipped globals.
        previous_feasibility = feasibility.default_enabled()
        previous_mode = lang_parser.default_mode()
        previous_engine = summary.default_engine()
        _init_worker(config)
        shared_budget = _shared_serial_budget(config)
        try:
            for item in pending:
                if item.index in payloads:
                    continue
                if policy.should_stop(stats.completed):
                    if not stats.interrupted:
                        stats.interrupted = True
                        stats.stop_reason = policy.stop_reason()
                    payloads[item.index] = _skipped_payload(
                        item, config,
                        f"not analysed — run interrupted "
                        f"({stats.stop_reason})")
                    resolved(item, "skipped")
                    continue
                payload = _execute_item(item, config, shared_budget)
                payloads[item.index] = payload
                stats.completed += 1
                record(item, payload)
                if progress is not None:
                    progress.tick(stats)
        finally:
            feasibility.set_default_enabled(previous_feasibility)
            lang_parser.set_default_mode(previous_mode)
            summary.set_default_engine(previous_engine)
        if progress is not None:
            progress.finish(stats)

    if jobs <= 1 or len(pending) == 1:
        run_inline()
        return payloads, shared_budget, stats
    def quarantined(item: WorkItem, error_type: str, message: str) -> dict:
        resolved(item, "quarantined")
        return _quarantine_payload(item, config, error_type, message)

    def skipped(item: WorkItem, note: str) -> dict:
        resolved(item, "skipped")
        return _skipped_payload(item, config, note)

    try:
        supervise_items(
            pending, config, jobs, policy, stats, payloads, record,
            quarantine_payload=quarantined,
            skipped_payload=skipped,
            progress=progress,
        )
    except SupervisorUnavailable:
        # No usable multiprocessing here (restricted sandbox, missing
        # semaphores): degrade to in-process execution, results intact.
        run_inline()
    return payloads, shared_budget, stats


def _report_sort_key(report: Report) -> tuple:
    loc = report.location
    return (loc.filename, loc.line, loc.column, report.checker,
            report.message, report.function)


def merge_parts(checker: str, parts: list):
    """Merge per-unit :class:`CheckerResult` parts into one, deterministically.

    Reports are de-duplicated on (checker, message, location) — the same
    identity :class:`ReportSink` uses — and sorted by
    ``(file, line, column, checker)``, so the merge of any partition of
    the work equals the serial result.
    """
    from ..checkers.base import CheckerResult

    merged = CheckerResult(checker=checker)
    seen_reports: set[tuple] = set()
    seen_quarantines: set[tuple] = set()
    for part in parts:
        for report in part.reports:
            key = (report.checker, report.message, report.location)
            if key in seen_reports:
                continue
            seen_reports.add(key)
            merged.reports.append(report)
        merged.applied += part.applied
        merged.annotations.extend(part.annotations)
        for name, value in part.extra.items():
            if (isinstance(value, (int, float))
                    and isinstance(merged.extra.get(name), (int, float))):
                merged.extra[name] += value
            elif (isinstance(value, dict)
                    and isinstance(merged.extra.get(name), dict)):
                # Count maps (e.g. applied_by_function) sum key-wise.
                target = merged.extra[name]
                for k, v in value.items():
                    if isinstance(v, (int, float)):
                        target[k] = target.get(k, 0) + v
                    else:
                        target.setdefault(k, v)
            elif name not in merged.extra:
                # Copy dicts so later parts merge without mutating the
                # part (which may be a cached payload's object).
                merged.extra[name] = dict(value) if isinstance(value, dict) \
                    else value
        for quarantine in part.quarantines:
            key = (quarantine.checker, quarantine.function)
            if key in seen_quarantines:
                continue
            seen_quarantines.add(key)
            merged.quarantines.append(quarantine)
        merged.degraded = merged.degraded or part.degraded
        merged.degradation_notes.extend(part.degradation_notes)
        for key, steps in getattr(part, "provenance", {}).items():
            # First part wins: every part's trail for the same report
            # reaches the same site, and dedup keeps one report anyway.
            merged.provenance.setdefault(key, steps)
    merged.reports.sort(key=_report_sort_key)
    merged.annotations.sort(key=lambda l: (l.filename, l.line, l.column))
    return merged


@dataclass
class CheckRun:
    """A full checker-fleet run: merged results plus run metadata."""

    results: dict                      # checker name -> CheckerResult
    jobs: int = 1
    stats: Optional[CacheStats] = None
    #: Journal identity of this run (``--resume`` takes it), if any.
    run_id: Optional[str] = None
    #: Supervision accounting: retries, crashes, replays, interruption.
    supervision: Optional[RunStats] = None

    @property
    def interrupted(self) -> bool:
        return bool(self.supervision is not None
                    and self.supervision.interrupted)

    def summary_line(self) -> str:
        line = f"run: jobs={self.jobs}"
        if self.stats is not None:
            line += f", {self.stats.line()}, {self.stats.stores} stored"
        if self.supervision is not None and self.supervision.noteworthy():
            from .report import format_run_stats
            line += f", {format_run_stats(self.supervision)}"
        return line


def check_files(paths: list, *, names: Optional[list] = None,
                spec_path: Optional[str] = None,
                jobs: int = 1, cache: Optional[ResultCache] = None,
                keep_going: bool = False,
                deadline: Optional[float] = None,
                journal: Optional[RunJournal] = None,
                policy: Optional[SupervisorPolicy] = None,
                observation=None, feasibility: bool = True,
                frontend: str = "strict",
                engine: str = "summary",
                pack_dirs: tuple = ()) -> CheckRun:
    """Run the registered checker fleet over source files, in parallel.

    The parallel analog of :func:`repro.checkers.base.run_all`: same
    results dict (one merged :class:`CheckerResult` per checker, in
    registration order), computed as (checker, unit) work items over a
    supervised worker pool, short-circuited by ``cache`` and by a
    resumed ``journal`` where content allows.  ``policy`` tunes the
    supervision (per-item timeout, retries, stop requests, injected
    worker faults); the default supervises with no per-item timeout.
    ``observation`` (a :class:`repro.obs.Observation`) turns on span
    tracing and metrics collection; reports are identical with or
    without it.  ``feasibility`` toggles infeasible-path pruning
    (``--feasibility``); ``frontend`` picks the parse mode
    (``--frontend strict|tolerant``); ``engine`` picks the analysis
    engine (``--engine paths|summary``).  All three are part of every
    cache/journal key, so runs with different settings never share
    entries.
    """
    from ..checkers.base import checker_names, get_checker
    from ..project import read_sources

    ordered_paths = list(dict.fromkeys(paths))
    sources = read_sources(ordered_paths)
    spec_text = Path(spec_path).read_text() if spec_path else None
    selected = list(names) if names is not None else checker_names()

    config = WorkerConfig(
        spec_text=spec_text,
        spec_name=spec_path or "<spec>",
        keep_going=keep_going,
        deadline=deadline,
        fault_plan=policy.fault_plan if policy is not None else None,
        trace_dir=(observation.worker_trace_dir
                   if observation is not None else None),
        collect_obs=observation is not None,
        heartbeat_dir=(observation.worker_heartbeat_dir
                       if observation is not None else None),
        feasibility=feasibility,
        frontend=frontend,
        engine=engine,
        pack_dirs=tuple(str(d) for d in pack_dirs),
    )

    items: list[WorkItem] = []
    parts_of: dict[str, list[int]] = {}
    for name in selected:
        checker = get_checker(name)
        parts_of[name] = []
        if checker.unit_parallel:
            for path in ordered_paths:
                items.append(WorkItem(
                    kind="checker", checker=name, paths=(path,),
                    weight=len(sources[path]), index=len(items)))
                parts_of[name].append(items[-1].index)
        else:
            items.append(WorkItem(
                kind="checker", checker=name, paths=tuple(ordered_paths),
                weight=sum(len(t) for t in sources.values()),
                index=len(items)))
            parts_of[name].append(items[-1].index)

    keys: dict[int, str] = {}
    if cache is not None or journal is not None:
        engine_fp = engine_fingerprint()
        digests = {p: source_fingerprint(t) for p, t in sources.items()}
        spec_fp = source_fingerprint(spec_text) if spec_text else ""
        for item in items:
            checker_fp = checker_fingerprint(item.checker)
            if checker_fp is None:
                continue  # checker without locatable source: uncacheable
            keys[item.index] = work_item_key(
                checker_fp=checker_fp,
                units=[(p, digests[p]) for p in item.paths],
                spec_fp=spec_fp, engine_fp=engine_fp,
                config_fp=(f"feasibility={'on' if feasibility else 'off'},"
                           f"frontend={frontend},engine={engine},"
                           f"schema={SCHEMA_VERSION}"),
            )

    payloads, _, run_stats = _run_items(items, config, jobs, cache, keys,
                                        journal=journal, policy=policy,
                                        observation=observation)

    results = {}
    for name in selected:
        parts = [result_from_payload(payloads[i]) for i in parts_of[name]]
        results[name] = merge_parts(name, parts)
    return CheckRun(results=results, jobs=jobs,
                    stats=cache.stats if cache is not None else None,
                    run_id=journal.run_id if journal is not None else None,
                    supervision=run_stats)


@dataclass
class MetalRun:
    """A textual-metal run over many files."""

    sm_name: str
    sinks: list                        # [(path, ReportSink)] in input order
    jobs: int = 1
    stats: Optional[CacheStats] = None
    #: The shared serial budget, when one was used (its ``note()``
    #: explains a DEGRADED footer the way PR 1's CLI did).
    budget: Optional[Budget] = None
    #: Journal identity of this run (``--resume`` takes it), if any.
    run_id: Optional[str] = None
    #: Supervision accounting: retries, crashes, replays, interruption.
    supervision: Optional[RunStats] = None

    @property
    def interrupted(self) -> bool:
        return bool(self.supervision is not None
                    and self.supervision.interrupted)

    def summary_line(self) -> str:
        line = f"run: jobs={self.jobs}"
        if self.stats is not None:
            line += f", {self.stats.line()}, {self.stats.stores} stored"
        if self.supervision is not None and self.supervision.noteworthy():
            from .report import format_run_stats
            line += f", {format_run_stats(self.supervision)}"
        return line


def metal_files(metal_path: str, paths: list, *, jobs: int = 1,
                cache: Optional[ResultCache] = None,
                keep_going: bool = False,
                budget_steps: Optional[int] = None,
                budget_paths: Optional[int] = None,
                budget_seconds: Optional[float] = None,
                journal: Optional[RunJournal] = None,
                policy: Optional[SupervisorPolicy] = None,
                observation=None, feasibility: bool = True,
                frontend: str = "strict",
                engine: str = "summary") -> MetalRun:
    """Run one textual metal checker over files as parallel work items.

    Step/path budgets apply per work item when ``jobs > 1`` (each worker
    explores independently) but stay shared across every file when
    serial, preserving the original semantics; the wall-clock budget is
    a single run-wide deadline either way.  Budgeted runs bypass the
    cache — their results depend on the limits, not just on content —
    and for the same reason a serial step/path-budgeted run disables the
    journal: replaying some items against a journal would hand the live
    items a budget the original run never gave them.
    """
    from ..metal.parser import parse_metal
    from ..project import read_sources

    metal_text = Path(metal_path).read_text()
    sm = parse_metal(metal_text, filename=metal_path)  # validate up front

    budgeted = (budget_steps is not None or budget_paths is not None
                or budget_seconds is not None)
    if budgeted:
        cache = None
    if (jobs <= 1 and (budget_steps is not None
                       or budget_paths is not None)):
        journal = None
    deadline = (time.time() + budget_seconds
                if budget_seconds is not None else None)

    config = WorkerConfig(
        keep_going=keep_going, deadline=deadline,
        budget_steps=budget_steps, budget_paths=budget_paths,
        metal_text=metal_text, metal_name=metal_path,
        fault_plan=policy.fault_plan if policy is not None else None,
        trace_dir=(observation.worker_trace_dir
                   if observation is not None else None),
        collect_obs=observation is not None,
        heartbeat_dir=(observation.worker_heartbeat_dir
                       if observation is not None else None),
        feasibility=feasibility,
        frontend=frontend,
        engine=engine,
    )

    ordered_paths = list(dict.fromkeys(paths))
    sources = read_sources(ordered_paths)
    items = [
        WorkItem(kind="metal", checker="", paths=(path,),
                 weight=len(sources[path]), index=i)
        for i, path in enumerate(ordered_paths)
    ]

    keys: dict[int, str] = {}
    if cache is not None or journal is not None:
        engine_fp = engine_fingerprint()
        metal_fp = metal_fingerprint(metal_text)
        for item in items:
            keys[item.index] = work_item_key(
                checker_fp=metal_fp,
                units=[(item.paths[0], source_fingerprint(sources[item.paths[0]]))],
                engine_fp=engine_fp,
                config_fp=(f"feasibility={'on' if feasibility else 'off'},"
                           f"frontend={frontend},engine={engine},"
                           f"schema={SCHEMA_VERSION}"),
            )

    payloads, shared_budget, run_stats = _run_items(
        items, config, jobs, cache, keys, journal=journal, policy=policy,
        observation=observation)
    sinks = [(path, sink_from_payload(payloads[i]))
             for i, path in enumerate(ordered_paths)]
    return MetalRun(sm_name=sm.name, sinks=sinks, jobs=jobs,
                    stats=cache.stats if cache is not None else None,
                    budget=shared_budget,
                    run_id=journal.run_id if journal is not None else None,
                    supervision=run_stats)
