"""Supervision for the checker fleet: watchdog, retry, journal, resume.

The paper's value proposition is a *whole-program* sweep — every
checker down every path of every function — which at production scale
means runs long enough for the infrastructure itself to fail: a worker
process OOM-killed mid-item, a hung native extension, an operator's
Ctrl-C, a pre-empted batch job.  PR 2's fleet handled none of that: a
dead worker raised ``BrokenProcessPool`` up through the run, and a
killed run lost everything not already cached.  This module wraps the
fleet in a supervisor so the run survives its own machinery:

- **watchdog**: every in-flight item has a wall-clock timeout; a hung
  worker is killed and respawned, a crashed worker (process death, pipe
  EOF) is detected and replaced — the pool never wedges;
- **retry with backoff**: a crashed/hung item is re-dispatched with
  exponential backoff plus seeded jitter; after ``max_retries``
  failures it is poison-quarantined as a ``Quarantine(phase="worker")``
  record flowing into the existing DEGRADED reporting, and the run
  continues;
- **graceful shutdown**: SIGINT/SIGTERM stop dispatch, drain in-flight
  items, flush a partial report, and exit with a distinct code (130);
  a second signal aborts hard;
- **run journal**: an append-only JSONL file
  (``<cache-dir>/runs/<run-id>.jsonl``, one atomic line per completed
  item) makes every run resumable: ``mc-check check --resume RUN-ID``
  replays completed items and re-dispatches only the remainder, with
  the resumed report byte-identical to an uninterrupted run (the same
  determinism contract as ``--jobs``).

Failure taxonomy: worker *death* (crash/hang/timeout) is an
infrastructure failure and is retried; an *exception* inside a worker
(parse error, checker crash without ``--keep-going``) is deterministic
— retrying would only reproduce it — and is re-raised in the parent as
:class:`~repro.errors.WorkerFailure`; an unreadable input is
quarantined per item by the worker itself (``phase="input"``).

Deterministic testing comes from :mod:`repro.faults.worker`: a
``FaultPlan`` with ``worker_crash``/``worker_hang``/``worker_slow``
rules is shipped to the workers and perturbs them on schedule, so every
supervisor behaviour has a seeded, repeatable trigger.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Callable, Optional

from ..errors import ReproError, WorkerFailure
from ..faults.plan import FaultPlan
from .cache import payload_cacheable

#: Journal schema; bump when the record shape changes.
#: v2: header carries the run's configuration (engine/feasibility/
#: frontend) so ``--resume`` can refuse a run replayed under different
#: analysis settings instead of silently mixing results.
JOURNAL_SCHEMA = 2


class SupervisorUnavailable(Exception):
    """No worker process could be spawned (restricted sandbox, missing
    primitives); the caller degrades to inline execution."""


# -- run control -------------------------------------------------------------

class StopFlag:
    """A cooperative stop request, set by signal handlers or tests."""

    def __init__(self) -> None:
        self.stop_requested = False
        self.reason = ""

    def request(self, reason: str = "stop requested") -> None:
        self.stop_requested = True
        self.reason = reason


@contextmanager
def graceful_shutdown(flag: StopFlag):
    """Install SIGINT/SIGTERM handlers that set ``flag`` instead of
    killing the process; a second signal aborts hard.

    Restores the previous handlers on exit.  A no-op where handlers
    cannot be installed (non-main thread).
    """
    previous: dict[int, object] = {}

    def handler(signum, _frame):
        if flag.stop_requested:
            raise KeyboardInterrupt
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        flag.request(f"received {name}")

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        yield flag
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass


@dataclass
class SupervisorPolicy:
    """Everything tunable about supervision, with safe defaults."""

    #: Wall-clock seconds one attempt of one item may run; ``None``
    #: disables the watchdog (workers are still replaced on death).
    item_timeout: Optional[float] = None
    #: Re-dispatches after the first attempt; past that, quarantine.
    max_retries: int = 2
    #: Exponential backoff: ``base * factor**attempt``, plus jitter.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: Jitter fraction; seeded per (item, attempt) so runs repeat.
    backoff_jitter: float = 0.25
    seed: int = 0
    #: Parent poll granularity (result wait, watchdog checks).
    poll_interval: float = 0.05
    #: Worker-site fault rules shipped to every worker (testing).
    fault_plan: Optional[FaultPlan] = None
    #: Signal-driven stop request (see :func:`graceful_shutdown`).
    stop_flag: Optional[StopFlag] = None
    #: Test hook: behave as if a signal arrived after N completions.
    stop_after_items: Optional[int] = None

    def should_stop(self, completed: int) -> bool:
        if self.stop_flag is not None and self.stop_flag.stop_requested:
            return True
        return (self.stop_after_items is not None
                and completed >= self.stop_after_items)

    def stop_reason(self) -> str:
        if self.stop_flag is not None and self.stop_flag.reason:
            return self.stop_flag.reason
        return "stop requested"

    def backoff(self, item_index: int, attempt: int) -> float:
        delay = self.backoff_base * (self.backoff_factor ** attempt)
        jitter = Random(f"{self.seed}:{item_index}:{attempt}").random()
        return delay * (1.0 + self.backoff_jitter * jitter)


@dataclass
class RunStats:
    """Supervision accounting for one run (shown in the summary line)."""

    completed: int = 0      # items executed to a payload this run
    replayed: int = 0       # items served from the run journal (--resume)
    retried: int = 0        # re-dispatches after a crash/hang
    crashes: int = 0        # worker deaths observed
    timeouts: int = 0       # hung workers killed by the watchdog
    quarantined: int = 0    # items poisoned after max_retries failures
    interrupted: bool = False
    stop_reason: str = ""

    def noteworthy(self) -> bool:
        return bool(self.replayed or self.retried or self.crashes
                    or self.timeouts or self.quarantined or self.interrupted)


# -- the run journal ---------------------------------------------------------

def new_run_id() -> str:
    """Sortable-by-time, collision-resistant run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + os.urandom(3).hex()


class RunJournal:
    """Append-only JSONL record of one run's completed work items.

    Line 1 is a header (``{"run", "schema", "created"}``); every later
    line is ``{"key", "payload"}`` where ``key`` is the item's
    content-hash identity (the same SHA-256 the result cache uses, so
    an edited file or upgraded engine silently invalidates its journal
    entries) and ``payload`` is the serialised result.  Each record is
    written as one ``write``+``flush``+``fsync`` of a single line, so a
    run killed mid-append leaves at most one truncated tail line —
    which :meth:`resume` skips.

    Only *complete* payloads are recorded (the cache's purity rule):
    degraded or quarantined results reflect budget/crash luck and must
    be recomputed, never replayed.
    """

    def __init__(self, path: Path, run_id: str,
                 entries: Optional[dict[str, dict]] = None):
        self.path = Path(path)
        self.run_id = run_id
        self._entries: dict[str, dict] = dict(entries or {})
        self._fh = None
        self.disabled = False

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, root: Path, run_id: Optional[str] = None,
               config: Optional[dict] = None) -> Optional["RunJournal"]:
        """Start a fresh journal under ``root``; ``None`` if the
        directory is unwritable (a read-only cache never fails a run).

        ``config`` records the run's analysis settings (engine mode,
        feasibility, frontend) in the header so a later ``--resume``
        under different settings is refused rather than mixing payloads
        computed under two configurations.
        """
        run_id = run_id or new_run_id()
        root = Path(root)
        journal = cls(root / f"{run_id}.jsonl", run_id)
        header = {"run": run_id, "schema": JOURNAL_SCHEMA,
                  "created": time.time()}
        if config:
            header["config"] = dict(config)
        try:
            root.mkdir(parents=True, exist_ok=True)
            journal._append(header)
        except OSError:
            return None
        return journal

    @classmethod
    def resume(cls, root: Path, run_id: str,
               config: Optional[dict] = None) -> "RunJournal":
        """Reopen an interrupted run's journal for replay + append.

        When both the header and the caller supply ``config``, every key
        present in both must agree; a mismatch (e.g. the run was started
        with ``--engine paths`` and resumed with ``--engine summary``)
        raises :class:`ReproError` naming the recorded setting.  Headers
        without a config (or callers passing none) skip the check for
        compatibility with journals written by older schemas' tooling.
        """
        path = Path(root) / f"{run_id}.jsonl"
        try:
            text = path.read_text()
        except OSError as exc:
            raise ReproError(
                f"no journal for run {run_id!r} under {Path(root)}: {exc}"
            ) from None
        entries: dict[str, dict] = {}
        header: Optional[dict] = None
        for line in text.splitlines():
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # truncated tail from a mid-append kill
            if not isinstance(obj, dict):
                continue
            if header is None and "run" in obj:
                header = obj
                continue
            key = obj.get("key")
            payload = obj.get("payload")
            if (isinstance(key, str) and isinstance(payload, dict)
                    and payload_cacheable(payload)):
                entries[key] = payload
        if header is None or header.get("schema") != JOURNAL_SCHEMA:
            raise ReproError(
                f"journal {path} is from an incompatible schema; "
                f"rerun without --resume")
        recorded = header.get("config")
        if config and isinstance(recorded, dict):
            for key in sorted(config):
                if key in recorded and recorded[key] != config[key]:
                    raise ReproError(
                        f"run {run_id!r} was recorded with "
                        f"{key}={recorded[key]!r} but --resume asked for "
                        f"{key}={config[key]!r}; rerun without --resume "
                        f"or restore the original setting")
        return cls(path, run_id, entries)

    # -- replay + append -----------------------------------------------------

    def replay(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def record(self, key: str, payload: dict) -> None:
        if self.disabled or not payload_cacheable(payload):
            return
        if key in self._entries:
            return  # already journaled by the run we resumed
        if "obs" in payload:
            # Timings/counters are observations of *this* run; replaying
            # them would make a resumed report depend on the first run's
            # clock.  Strip before the line hits disk.
            payload = {k: v for k, v in payload.items() if k != "obs"}
        try:
            self._append({"key": key, "payload": payload})
        except OSError:
            # Disk full / journal dir revoked: the run outlives its
            # journal, it just stops being resumable past this point.
            self.disabled = True
            return
        self._entries[key] = payload

    def _append(self, obj: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
            self._fh = None


def default_runs_dir(cache_dir: Optional[Path] = None) -> Path:
    """Where journals live: ``<cache-dir>/runs``."""
    from .cache import default_cache_dir
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / "runs"


# -- the supervised pool -----------------------------------------------------

class _Worker:
    """One supervised worker process and its private pipe."""

    __slots__ = ("process", "conn", "current", "started_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.current = None        # (item, attempt) while busy
        self.started_at = 0.0


def _worker_main(config, conn) -> None:
    """Entry point of a supervised worker process.

    Arms the per-process parse memo, the engine's feasibility default
    (``WorkerConfig.feasibility``, applied by ``_init_worker`` so every
    execution mode — inline, pool, supervised — analyses identically),
    and (if the config carries a plan) worker-level fault injection,
    then serves ``(index, attempt, item)`` requests until the sentinel
    or EOF.  Ignores SIGINT so a terminal Ctrl-C (delivered to the
    whole process group) leaves workers alive for the parent's graceful
    drain.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover
        pass
    from . import parallel
    from ..obs.progress import write_heartbeat
    parallel._init_worker(config)
    parallel._arm_worker_faults(config)
    heartbeat_dir = getattr(config, "heartbeat_dir", None)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, attempt, item = message
        parallel._WORKER_ATTEMPT = attempt
        write_heartbeat(heartbeat_dir, index, attempt, "start")
        try:
            response = (index, "ok", parallel._execute_item(item, config))
        except Exception as exc:
            response = (index, "error", {
                "error_type": type(exc).__name__, "message": str(exc)})
        write_heartbeat(heartbeat_dir, index, attempt, "done")
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            return


def _spawn(ctx, config) -> _Worker:
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_worker_main, args=(config, child_conn),
                          daemon=True)
    process.start()
    child_conn.close()
    return _Worker(process, parent_conn)


def _reap(worker: _Worker, kill: bool = False) -> None:
    """Shut one worker down; escalate terminate → kill as needed."""
    try:
        worker.conn.close()
    except OSError:  # pragma: no cover
        pass
    process = worker.process
    if process.is_alive() and kill:
        process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():
        process.kill()
        process.join(timeout=1.0)


def _pop_ready(queue: list, now: float):
    """First queue entry whose backoff delay has elapsed, or ``None``."""
    for position, entry in enumerate(queue):
        if entry[2] <= now:
            return queue.pop(position)
    return None


def supervise_items(pending: list, config, jobs: int,
                    policy: SupervisorPolicy, stats: RunStats,
                    payloads: dict, record: Callable,
                    quarantine_payload: Callable,
                    skipped_payload: Callable,
                    progress=None) -> None:
    """Run ``pending`` work items under supervision, filling ``payloads``.

    ``record(item, payload)`` persists each fresh completion (cache +
    journal); ``quarantine_payload(item, error_type, message)`` and
    ``skipped_payload(item, note)`` build kind-aware degraded payloads
    for poisoned and interrupted items.  ``progress`` (a
    :class:`repro.obs.progress.ProgressReporter`) receives throttled
    ``tick`` calls from the poll loop and one final ``finish`` — pure
    stderr output, never an input to the analysis.  Raises
    :class:`SupervisorUnavailable` (before consuming any work) when no
    worker can be spawned, and :class:`WorkerFailure` when a worker
    reports a deterministic exception.
    """
    from .parallel import _mp_context

    ctx = _mp_context()
    workers: list[_Worker] = []
    try:
        for _ in range(min(jobs, len(pending))):
            workers.append(_spawn(ctx, config))
    except Exception as exc:
        for worker in workers:
            _reap(worker, kill=True)
        raise SupervisorUnavailable(str(exc)) from None

    import multiprocessing.connection as mp_connection

    #: (item, attempt, not_before) — pending keeps largest-first order;
    #: retries append with their backoff deadline.
    queue: list = [(item, 0, 0.0) for item in pending]
    unresolved = {item.index for item in pending}
    stopping = False

    def fail(worker: _Worker, kind: str) -> None:
        """One attempt died (``crash``) or hung (``timeout``)."""
        nonlocal stopping
        item, attempt = worker.current
        worker.current = None
        if kind == "timeout":
            stats.timeouts += 1
        else:
            stats.crashes += 1
        _reap(worker, kill=True)
        workers.remove(worker)
        if not stopping and unresolved:
            try:
                workers.append(_spawn(ctx, config))
            except Exception:
                pass  # degraded pool; remaining workers carry on
        if stopping:
            return  # the skip sweep below marks it interrupted
        if attempt >= policy.max_retries:
            message = (f"worker {kind} on attempt {attempt + 1}; "
                       f"quarantined after {policy.max_retries} retries")
            payloads[item.index] = quarantine_payload(
                item, "WorkerTimeout" if kind == "timeout" else "WorkerCrash",
                message)
            unresolved.discard(item.index)
            stats.quarantined += 1
        else:
            stats.retried += 1
            queue.append((item, attempt + 1,
                          time.monotonic() + policy.backoff(item.index,
                                                            attempt)))

    try:
        while unresolved:
            now = time.monotonic()
            if not stopping and policy.should_stop(stats.completed):
                stopping = True
                stats.interrupted = True
                stats.stop_reason = policy.stop_reason()
                queue.clear()
            # Dispatch ready work to idle workers.
            if not stopping:
                for worker in list(workers):
                    if worker.current is not None:
                        continue
                    entry = _pop_ready(queue, now)
                    if entry is None:
                        break
                    item, attempt, _ = entry
                    try:
                        worker.conn.send((item.index, attempt, item))
                    except (BrokenPipeError, OSError):
                        # Died while idle: charge the attempt to the
                        # item (fail() requeues or quarantines it) and
                        # replace the worker.
                        worker.current = (item, attempt)
                        fail(worker, "crash")
                        continue
                    worker.current = (item, attempt)
                    worker.started_at = now
            busy = [worker for worker in workers
                    if worker.current is not None]
            if progress is not None:
                progress.tick(stats, busy=len(busy))
            if not busy:
                if stopping or not unresolved:
                    break
                if not queue:  # pragma: no cover - defensive
                    break
                time.sleep(policy.poll_interval)  # everyone backing off
                continue
            try:
                ready = mp_connection.wait(
                    [worker.conn for worker in busy],
                    timeout=policy.poll_interval)
            except OSError:  # pragma: no cover - racing a dead pipe
                ready = []
            now = time.monotonic()
            for worker in busy:
                if worker.conn in ready:
                    try:
                        index, status, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        fail(worker, "crash")
                        continue
                    item, _attempt = worker.current
                    worker.current = None
                    if status == "ok":
                        payloads[index] = payload
                        unresolved.discard(index)
                        stats.completed += 1
                        record(item, payload)
                    else:
                        raise WorkerFailure(
                            f"work item failed with {payload['error_type']}: "
                            f"{payload['message']}")
                elif not worker.process.is_alive():
                    fail(worker, "crash")
                elif (policy.item_timeout is not None
                        and now - worker.started_at > policy.item_timeout):
                    fail(worker, "timeout")
    finally:
        for worker in list(workers):
            if worker.current is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                _reap(worker)
            else:
                _reap(worker, kill=True)

    if stopping:
        note = f"not analysed — run interrupted ({stats.stop_reason})"
        for item in pending:
            if item.index in unresolved:
                payloads[item.index] = skipped_payload(item, note)
    if progress is not None:
        progress.finish(stats)
