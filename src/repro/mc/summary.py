"""The summary engine: checker-aware slicing and join-point merging.

The path engine (:mod:`repro.mc.engine`) replays a state machine over
*every* node of *every* block it visits.  But a metal machine is blind to
almost all of a function: a rule only fires when one of its patterns
unifies at an AST node, and :meth:`repro.metal.sm.StateMachine.step` on a
non-matching node is a state-preserving no-op.  This module computes, per
(machine, CFG) pair, exactly which parts of the function the machine can
observe, and the engine uses that slice three ways:

1. **Event slicing** — within each visited block, only the *candidate*
   nodes (those some pattern of the machine could possibly match, per
   :class:`MachineFilter`) are fed to the machine.  Everything else is a
   proven no-op and is skipped.  Events themselves are still iterated in
   order, so opaque-region poisoning, feasibility transfer, and event
   ordinals (provenance) are untouched.

2. **Dead-tail merging** — a block from which no candidate node is
   reachable can never fire a rule, so (when the machine has no
   ``path_end_action``) every path into it is equivalent to every other:
   the engine merges them all by simply not exploring the region.  This
   is what collapses the ``2^d`` stores built by ``d`` correlated
   branches *after* the last machine-relevant statement into one.
   Branch assumptions on the frontier edges are still evaluated so that
   pruned-edge provenance on live paths stays byte-identical.

3. **Whole-function skipping** — when no candidate is reachable from the
   entry at all, the machine is never run.

The per-checker lattice the ISSUE describes is the engine's visited set:
abstract states are ``(block, sm-state, feasibility-store, opaque)``
points, and two paths reaching the same point are joined (the second is
dropped — counted as ``engine.merged_states``).  Slicing makes the join
*effective* by erasing the store components that only dead code could
distinguish.

All three transformations are exact for reports, suppressions,
provenance trails, and therefore confidence scores — the differential
test in ``tests/test_engine_summary.py`` holds the summary engine to
byte-identical output against the path engine.  They are *not* exact
for work counters (``engine.steps``, ``engine.paths``).  Budget
accounting is kept in parity: sliced-out nodes are charged to the
budget without being stepped (:meth:`CfgSlice.skipped_nodes`), so a
``--budget-steps`` run exhausts at the same work level under either
engine.  Budgeted runs are never cached.
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..lang import ast

#: Engine selector values, mirroring ``--engine``.
ENGINES = ("paths", "summary")

#: Version of the summary-engine semantics; folded into every
#: function-summary key so changing slicing/replay behaviour can never
#: replay a stale record.
ENGINE_SUMMARY_VERSION = 1

_DEFAULT_ENGINE = "summary"


def default_engine() -> str:
    """The process-wide engine mode (the ``--engine`` default)."""
    return _DEFAULT_ENGINE


def set_default_engine(mode: str) -> str:
    """Set the process-wide engine mode; returns the previous one.

    Mirrors :func:`repro.mc.feasibility.set_default_enabled` — the
    parallel workers call this from their initializer, and tests flip it
    around a block and restore the returned value.
    """
    global _DEFAULT_ENGINE
    if mode not in ENGINES:
        raise ValueError(f"unknown engine {mode!r}; expected one of {ENGINES}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = mode
    return previous


# -- the machine filter ------------------------------------------------------

#: AST node kinds whose pattern match requires an equal operator.
_OP_KINDS = ("BinaryOp", "UnaryOp", "PostfixOp", "Assign")


class MachineFilter:
    """Which AST nodes can a machine's patterns possibly match?

    Built once per machine from the *roots* of every pattern of every
    rule (the matcher unifies at the root only; :meth:`Pattern.match`).
    The filter is a sound over-approximation: :meth:`match_possible`
    may say yes for a node no pattern matches, but never no for one a
    pattern would match — the discriminators below only use facts
    ``Pattern._unify`` checks unconditionally at the root:

    * a metavar root accepts any expression (type-class constraints are
      ignored — conservative);
    * a ``Call`` root requires a ``Call`` node, and when the pattern's
      callee is a concrete identifier, one with that callee name;
    * ``Ident`` requires the same name; ``Member`` the same member name;
    * operator kinds require the same operator;
    * everything else discriminates on the node kind alone.
    """

    __slots__ = ("any_expr", "keys")

    def __init__(self, sm):
        self.any_expr = False
        keys: set[tuple[str, Optional[str]]] = set()
        for state in sm.states.values():
            for rule in state.rules:
                for pattern in rule.patterns:
                    self.any_expr |= self._add(pattern, keys)
        self.keys = keys

    @staticmethod
    def _add(pattern, keys: set) -> bool:
        """Fold one pattern root into ``keys``; True if it matches any
        expression (a bare metavariable root)."""
        root = pattern.template
        if isinstance(root, ast.Ident) and root.name in pattern.metavars:
            return True
        kind = type(root).__name__
        if isinstance(root, ast.Call):
            func = root.func
            if isinstance(func, ast.Ident) and func.name not in pattern.metavars:
                keys.add((kind, func.name))
            else:
                keys.add((kind, None))
        elif isinstance(root, ast.Ident):
            keys.add((kind, root.name))
        elif isinstance(root, ast.Member):
            keys.add((kind, root.name))
        elif kind in _OP_KINDS:
            keys.add((kind, root.op))
        else:
            keys.add((kind, None))
        return False

    def match_possible(self, node: ast.Node) -> bool:
        if self.any_expr and isinstance(node, ast.Expr):
            return True
        primary, secondary, _ = node_key(node)
        keys = self.keys
        return (primary in keys
                or (secondary is not None and secondary in keys))


# How a node class's secondary discriminator is derived (see node_key).
_MODE_PLAIN, _MODE_CALL, _MODE_NAME, _MODE_OP = 0, 1, 2, 3

#: node class -> (primary, is_expr, is_opaque, mode, kind, child fields).
#: Everything about a node the discriminators and the fused traversal
#: depend on except its own payload, resolved once per class so the
#: per-node cost in :func:`event_index` is one dict lookup.
_CLS_INFO: dict = {}


def _cls_info(cls) -> tuple:
    info = _CLS_INFO.get(cls)
    if info is None:
        kind = cls.__name__
        if issubclass(cls, ast.Call):
            mode = _MODE_CALL
        elif issubclass(cls, (ast.Ident, ast.Member)):
            mode = _MODE_NAME
        elif kind in _OP_KINDS:
            mode = _MODE_OP
        else:
            mode = _MODE_PLAIN
        info = ((kind, None), issubclass(cls, ast.Expr),
                issubclass(cls, (ast.OpaqueStmt, ast.OpaqueExpr)),
                mode, kind, ast._child_fields(cls))
        _CLS_INFO[cls] = info
    return info


def node_key(node: ast.Node) -> tuple:
    """The discriminator triple ``(primary, secondary, is_expr)`` that
    :meth:`MachineFilter.match_possible` tests a node by.

    ``primary`` is ``(kind, None)`` — the wildcard entry for the node's
    kind; ``secondary`` is the name/operator-refined entry, or ``None``
    when the kind carries no payload the filter discriminates on.
    :func:`event_index` folds these into one set per event, so a
    machine's slice dismisses most events with a single set
    intersection and recomputes per-node triples only for the rest.
    """
    primary, is_expr, _, mode, kind, _ = _cls_info(type(node))
    if mode == _MODE_CALL:
        func = node.func
        secondary = ((kind, func.name)
                     if isinstance(func, ast.Ident) else None)
    elif mode == _MODE_NAME:
        secondary = (kind, node.name)
    elif mode == _MODE_OP:
        secondary = (kind, node.op)
    else:
        secondary = None
    return primary, secondary, is_expr


_FILTERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def filter_for(sm) -> MachineFilter:
    filt = _FILTERS.get(sm)
    if filt is None:
        filt = _FILTERS[sm] = MachineFilter(sm)
    return filt


# -- the CFG slice -----------------------------------------------------------

#: cfg -> {id(event): (nodes, key-set, has_expr, opaque)}.
#: Everything machine-independent about an event — its flat node tuple,
#: the frozenset of every discriminator present, whether any node is an
#: expression, and whether it contains an opaque region — computed once
#: per CFG and shared by every machine's slice (a corpus pass runs six
#: machines over the same CFGs — without this, each re-walks the whole
#: program) and by feasibility's transfer-function builder.  Per-node
#: discriminators are *not* stored: the slice recomputes them only for
#: the few events its fast path cannot dismiss.
_EVENT_INDEX: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def event_index(cfg) -> dict:
    index = _EVENT_INDEX.get(cfg)
    if index is None:
        index = {}
        cls_map = _CLS_INFO
        cls_info = _cls_info
        node_cls = ast.Node
        is_ident = ast.Ident
        seq_types = (list, tuple)
        for block in cfg.blocks:
            for event in block.events:
                # One fused traversal: the flat node tuple (exact
                # ``walk`` pre-order, inlined to skip the generator
                # machinery), the set of all discriminators present,
                # the expression flag, and opaque detection together.
                nodes: list = []
                add_node = nodes.append
                key_set: set = set()
                add = key_set.add
                has_expr = False
                opaque = False
                stack = [event]
                pop = stack.pop
                while stack:
                    n = pop()
                    add_node(n)
                    cls = n.__class__
                    info = cls_map.get(cls)
                    if info is None:
                        info = cls_info(cls)
                    primary, is_expr, is_opaque, mode, kind, names = info
                    add(primary)
                    if mode != _MODE_PLAIN:
                        if mode == _MODE_CALL:
                            func = n.func
                            if isinstance(func, is_ident):
                                add((kind, func.name))
                        elif mode == _MODE_NAME:
                            add((kind, n.name))
                        else:
                            add((kind, n.op))
                    if is_expr:
                        has_expr = True
                    if is_opaque:
                        opaque = True
                    # Children in reverse onto the stack, so pre-order
                    # pops match ``Node.walk`` exactly (candidate order
                    # is part of report byte-identity).
                    i = len(names)
                    while i:
                        i -= 1
                        value = getattr(n, names[i])
                        if isinstance(value, node_cls):
                            stack.append(value)
                        elif isinstance(value, seq_types):
                            for item in reversed(value):
                                if isinstance(item, node_cls):
                                    stack.append(item)
                index[id(event)] = (tuple(nodes), frozenset(key_set),
                                    has_expr, opaque)
        _EVENT_INDEX[cfg] = index
    return index


#: cfg -> {id(event): (discriminator -> node positions, expr positions)}
#: for events at least one machine's fast path could not dismiss.  The
#: inverted map is machine-independent; building it lazily (first live
#: encounter) shares the work across the six machines of a corpus pass,
#: and each machine's slice then costs one set intersection plus a few
#: position lookups instead of a per-node scan.
_EVENT_KEYS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _event_keymap(cfg, eid: int, all_nodes: tuple) -> tuple:
    per_cfg = _EVENT_KEYS.get(cfg)
    if per_cfg is None:
        per_cfg = _EVENT_KEYS[cfg] = {}
    entry = per_cfg.get(eid)
    if entry is None:
        by_key: dict = {}
        expr_positions: list = []
        for pos, n in enumerate(all_nodes):
            primary, secondary, is_expr = node_key(n)
            by_key.setdefault(primary, []).append(pos)
            if secondary is not None:
                by_key.setdefault(secondary, []).append(pos)
            if is_expr:
                expr_positions.append(pos)
        entry = (by_key, tuple(expr_positions))
        per_cfg[eid] = entry
    return entry


class CfgSlice:
    """One machine's view of one CFG.

    ``candidates(event)`` is the (possibly empty) tuple of nodes within
    ``event`` the machine could match.  ``skip_edge(edge)`` says an edge
    leads into a *dead tail* — a region from which no candidate is
    reachable — and may be merged away.  ``full_skip`` says the entry
    itself is dead: the machine cannot observe this function at all.

    Dead-tail and full skipping are disabled when the machine has a
    ``path_end_action``: such machines fire at function exits, so every
    path must actually reach the exit in its precise state.
    """

    __slots__ = ("filter", "_candidates", "_index", "_dead",
                 "use_dead_tail", "full_skip", "live_blocks")

    def __init__(self, sm, cfg):
        filt = filter_for(sm)
        self.filter = filt
        self._candidates: dict[int, tuple] = {}
        index = event_index(cfg)
        self._index = index
        live: list[bool] = []
        any_expr = filt.any_expr
        keys = filt.keys
        candidates = self._candidates
        for block in cfg.blocks:
            block_live = False
            for event in block.events:
                eid = id(event)
                all_nodes, key_set, has_expr, _ = index[eid]
                if keys.isdisjoint(key_set) and not (any_expr and has_expr):
                    # Fast path: no discriminator of any pattern occurs
                    # anywhere in the event — the whole event is sliced
                    # out without touching its nodes.
                    candidates[eid] = ()
                    continue
                by_key, expr_positions = _event_keymap(cfg, eid, all_nodes)
                picked_pos = (set(expr_positions)
                              if any_expr and has_expr else set())
                get = by_key.get
                for key in keys & key_set:
                    picked_pos.update(get(key, ()))
                if picked_pos:
                    candidates[eid] = tuple(
                        all_nodes[i] for i in sorted(picked_pos))
                    block_live = True
                else:
                    candidates[eid] = ()
            live.append(block_live)
        self.live_blocks = sum(live)
        # can_reach_live: reverse reachability from the live blocks.
        can_reach = list(live)
        worklist = [b for b in cfg.blocks if can_reach[b.index]]
        while worklist:
            block = worklist.pop()
            for edge in block.in_edges:
                src = edge.src
                if not can_reach[src.index]:
                    can_reach[src.index] = True
                    worklist.append(src)
        self._dead = [not flag for flag in can_reach]
        self.use_dead_tail = sm.path_end_action is None
        self.full_skip = (self.use_dead_tail
                          and self._dead[cfg.entry.index])

    def candidates(self, event: ast.Node) -> tuple:
        """The machine-visible nodes of one block event, in walk order."""
        nodes = self._candidates.get(id(event))
        if nodes is None:
            # An event not seen at slice time (defensive; block events
            # are fixed once the CFG is built): fall back to all nodes.
            nodes = tuple(event.walk())
        return nodes

    def event_opaque(self, event: ast.Node) -> bool:
        """Does the event contain an opaque node?  Precomputed, so the
        engine's per-visit opaque check costs a dict lookup instead of
        an AST walk."""
        entry = self._index.get(id(event))
        if entry is None:
            return any(isinstance(n, (ast.OpaqueStmt, ast.OpaqueExpr))
                       for n in event.walk())
        return entry[3]

    def skipped_nodes(self, event: ast.Node) -> int:
        """How many of the event's nodes the slice removed (nodes the
        paths engine would have stepped).  Budgeted runs charge these to
        the budget without stepping them, so a ``--budget-steps`` run
        degrades at the same work level under either engine."""
        eid = id(event)
        entry = self._index.get(eid)
        if entry is None:
            return 0
        return len(entry[0]) - len(self._candidates.get(eid, entry[0]))

    def skip_edge(self, edge) -> bool:
        """May exploration across ``edge`` be merged away entirely?"""
        return self.use_dead_tail and self._dead[edge.dst.index]


#: sm -> (cfg -> CfgSlice).  Both levels weak: checker instances build
#: fresh machines per run and Programs memoize CFGs, so neither object's
#: id may be used as a plain dict key without risking stale-id reuse.
_SLICES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def slice_for(sm, cfg) -> CfgSlice:
    per_machine = _SLICES.get(sm)
    if per_machine is None:
        per_machine = _SLICES[sm] = weakref.WeakKeyDictionary()
    sl = per_machine.get(cfg)
    if sl is None:
        sl = per_machine[cfg] = CfgSlice(sm, cfg)
    return sl


# -- summary replay ----------------------------------------------------------

def merge_into(sink, walk_sink, *, provenance_from: Optional[dict] = None):
    """Fold one function's completed walk (or replayed summary) into
    ``sink``.

    ``walk_sink`` holds everything one ``run_machine`` execution
    emitted, isolated from the unit-wide sink.  Replaying its final
    state — reports first (so a clean report beats a suppression from an
    *earlier* function, exactly as a shared-sink walk would resolve it),
    then suppressions, then resilience state — produces the same
    unit-wide sink the path engine builds directly.  Used both when a
    walk just finished and when a cached summary is served.
    """
    from ..obs.provenance import report_key

    provenance = (provenance_from if provenance_from is not None
                  else walk_sink.provenance)
    previous_gate = sink.report_gate
    previous_hook = sink.on_new_report
    sink.report_gate = None
    sink.on_new_report = None
    try:
        for report in walk_sink.reports:
            if sink.add(report):
                steps = provenance.get(report_key(report))
                if steps is not None:
                    sink.provenance.setdefault(report_key(report), steps)
        for report, why in walk_sink.suppressed:
            key = report_key(report)
            if key not in sink._suppressed_seen:
                sink._suppressed_seen.add(key)
                sink.suppressed.append((report, why))
                sink.provenance.setdefault(
                    key,
                    provenance.get(key)
                    or [{"kind": "suppressed", "suppressed_by": why}])
    finally:
        sink.report_gate = previous_gate
        sink.on_new_report = previous_hook
    for quarantine in walk_sink.quarantines:
        sink.add_quarantine(quarantine)
    if walk_sink.degraded:
        sink.degraded = True
    if walk_sink.degradation_notes:
        sink.degradation_notes.extend(walk_sink.degradation_notes)
