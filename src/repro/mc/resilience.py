"""Graceful degradation for the analysis engine: budgets and quarantine.

The ROADMAP goal is running the checkers at production scale over many
protocols; at that scale two failure modes matter that a research
prototype can ignore:

- **a misbehaving checker**: one action that raises must not kill the
  whole run.  The engine isolates the crash to its (checker, function)
  pair and records a structured :class:`Quarantine` diagnostic; every
  other pair still reports (the XCheck-style "tolerate partial input"
  posture, arXiv:2112.08010).
- **a pathological input**: a function whose path space blows past what
  the state cache can tame must not hang the run.  A :class:`Budget`
  bounds machine steps, enumerated paths, and wall time; when it runs
  out the engine stops *that* exploration, keeps everything found so
  far, and marks the result ``degraded`` (bounded exploration in the
  Abe et al. sense, arXiv:1608.05893).

Both are pure data here; the enforcement lives in
:mod:`repro.mc.engine`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

#: How many charged steps pass between wall-clock checks (monotonic()
#: per step would dominate the engine's hot loop).
_TIME_CHECK_INTERVAL = 1024


@dataclass
class Budget:
    """A spending limit shared by every (checker, function) pair of a run.

    ``None`` limits are unlimited.  Charging returns ``False`` once the
    budget is gone; the engine then abandons the current exploration and
    marks its sink degraded.  One Budget can be threaded through many
    ``check_unit`` calls so the limit covers the whole analysis.
    """

    max_steps: Optional[int] = None
    max_paths: Optional[int] = None
    max_seconds: Optional[float] = None
    steps: int = 0
    paths: int = 0
    exhausted_by: Optional[str] = None
    _deadline: Optional[float] = field(default=None, repr=False)

    def start_clock(self) -> None:
        """Arm the wall-clock limit; the first caller wins."""
        if self.max_seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.max_seconds

    @property
    def exhausted(self) -> bool:
        return self.exhausted_by is not None

    def charge_step(self) -> bool:
        """Account one machine step; False when the budget is spent."""
        if self.exhausted_by is not None:
            return False
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            self.exhausted_by = "steps"
            return False
        if (self._deadline is not None
                and self.steps % _TIME_CHECK_INTERVAL == 0
                and time.monotonic() > self._deadline):
            self.exhausted_by = "time"
            return False
        return True

    def charge_path(self) -> bool:
        """Account one completed path; False when the budget is spent."""
        if self.exhausted_by is not None:
            return False
        self.paths += 1
        if self.max_paths is not None and self.paths > self.max_paths:
            self.exhausted_by = "paths"
            return False
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.exhausted_by = "time"
            return False
        return True

    def note(self) -> str:
        limit = {
            "steps": self.max_steps,
            "paths": self.max_paths,
            "time": self.max_seconds,
        }.get(self.exhausted_by or "")
        return (f"budget exhausted by {self.exhausted_by} "
                f"(limit {limit}, charged {self.steps} steps / "
                f"{self.paths} paths)")


@dataclass(frozen=True)
class Quarantine:
    """One (checker, function) pair removed from the run after a crash.

    ``phase`` says *where* the failure happened: an analysis phase
    (``"cfg-build"`` | ``"path-walk"`` | ``"flow-search"`` |
    ``"checker"``), the fleet's own machinery (``"worker"`` — the item
    was poison-quarantined after exhausting the supervisor's retries),
    or the input itself (``"input"`` — a source file vanished or became
    unreadable between dispatch and execution).
    """

    checker: str
    function: str
    phase: str
    error_type: str
    message: str

    def __str__(self) -> str:
        return (f"quarantined [{self.checker}] {self.function} "
                f"during {self.phase}: {self.error_type}: {self.message}")
