"""Persistent content-hash result cache for the checker fleet.

A checker's output over a translation unit is a pure function of three
things: the unit's source text, the checker's own implementation, and
the analysis engine under both.  The cache therefore keys every entry
on ``sha256(engine fingerprint + checker fingerprint + protocol-spec
text + the unit's (filename, content-hash) pairs)`` — unchanged files
are skipped entirely on re-runs, and editing a file, bumping a
checker's source, or upgrading the engine invalidates exactly the
affected entries, with no mtime heuristics to go wrong.

Entries store the *serialised* result payload (the same JSON shape the
parallel workers ship back over the queue, :func:`result_to_payload`),
including quarantine records and degradation notes.  Results that are
degraded or quarantined are never stored: they depend on the run's
budget and luck, not just on content, so replaying them would poison
later unbudgeted runs.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..lang.source import Location
from ..metal.runtime import Report, ReportSink
from ..obs.provenance import provenance_from_obj, provenance_to_obj
from .resilience import Quarantine

#: Bump when the payload shape changes; stale-schema entries are misses.
#: v2 added per-report path provenance to result/sink payloads.
#: v3: feasibility pruning changed provenance steps (fact/pruned) and
#: keys fold in the analysis configuration (``config_fp``).
#: v4: tolerant frontend — payloads gained ``suppressed`` reports, and
#: ``config_fp`` carries ``frontend=`` plus this schema version so
#: switching ``--frontend`` can never replay the other mode's entries.
#: v5: summary engine — ``config_fp`` carries ``engine=paths|summary``
#: so switching ``--engine`` can never replay the other mode's entries,
#: and the run journal header records the run's configuration.
SCHEMA_VERSION = 5


# -- fingerprints ------------------------------------------------------------

def _sha256(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
        h.update(b"\x00")
    return h.hexdigest()


def _module_digest(module) -> str:
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        path = None
    if not path or not os.path.exists(path):
        return f"<no-source:{getattr(module, '__name__', module)!r}>"
    return _sha256(Path(path).read_bytes())


_ENGINE_FILES_FP: Optional[str] = None


def engine_fingerprint() -> str:
    """Hash of every module whose behaviour feeds analysis results.

    Covers the frontend (lexer/parser/sema), CFG construction, the metal
    pattern matcher and state machines, the path-sensitive engine, and
    the built-in FLASH knowledge (headers, machine vocabulary, spec
    parsing).  Combined with ``repro.__version__`` on every call so a
    version bump invalidates even without a source change.
    """
    global _ENGINE_FILES_FP
    if _ENGINE_FILES_FP is None:
        import repro.cfg
        import repro.lang
        import repro.metal
        import repro.mc
        import repro.obs
        import repro.project
        from repro.flash import headers, machine, spec

        # repro.obs is included because provenance trails it builds are
        # part of the cached payloads.
        digests = []
        for package in (repro.lang, repro.cfg, repro.metal, repro.mc,
                        repro.obs):
            root = Path(inspect.getsourcefile(package)).parent
            for path in sorted(root.glob("*.py")):
                digests.append(_sha256(path.read_bytes()))
        for module in (repro.project, headers, machine, spec):
            digests.append(_module_digest(module))
        _ENGINE_FILES_FP = _sha256(*(d.encode() for d in digests))
    import repro
    return _sha256(_ENGINE_FILES_FP.encode(), repro.__version__.encode(),
                   str(SCHEMA_VERSION).encode())


_CHECKER_FP: dict[str, Optional[str]] = {}


def checker_fingerprint(name: str) -> Optional[str]:
    """Hash of one registered checker's implementation, or ``None``.

    ``None`` marks the checker *uncacheable* — its source cannot be
    located (e.g. defined in a ``python -c`` script or a REPL), so there
    is no way to notice when it changes.  The framework (``base.py``)
    and the shared metal listings are folded in: they are part of every
    checker's behaviour.
    """
    if name in _CHECKER_FP:
        return _CHECKER_FP[name]
    from ..checkers import base as checkers_base
    from ..checkers import metal_sources
    from ..checkers.base import _ORIGINS, _REGISTRY

    cls = _REGISTRY.get(name)
    fp: Optional[str] = None
    origin = _ORIGINS.get(name)
    if cls is not None and origin is not None:
        # Pack checkers key on the pack's identity (name@version) plus
        # the implementation file the manifest named — not on the class
        # object, which for metal packs is synthesized inside the
        # loader.  Bumping the pack's version (or editing its source)
        # therefore invalidates exactly that pack's entries; builtin
        # keys are untouched, keeping no-pack and with-pack runs on the
        # same cache lines.
        source = Path(origin.source) if origin.source else None
        if source is not None and source.exists():
            fp = _sha256(
                name.encode(),
                origin.label.encode(),
                source.read_bytes(),
                _module_digest(checkers_base).encode(),
            )
        _CHECKER_FP[name] = fp
        return fp
    if cls is not None:
        try:
            path = inspect.getsourcefile(cls)
        except (OSError, TypeError):
            # No source on disk (python -c, REPL): uncacheable.
            path = None
        if path and os.path.exists(path):
            fp = _sha256(
                name.encode(),
                Path(path).read_bytes(),
                _module_digest(checkers_base).encode(),
                _module_digest(metal_sources).encode(),
            )
    _CHECKER_FP[name] = fp
    return fp


def metal_fingerprint(text: str) -> str:
    """Fingerprint for a textual metal checker: its program text."""
    return _sha256(b"metal", text.encode("utf-8"))


def clear_fingerprint_memo() -> None:
    """Tests: recompute fingerprints after monkeypatching sources."""
    global _ENGINE_FILES_FP
    _ENGINE_FILES_FP = None
    _CHECKER_FP.clear()


# -- payload (de)serialisation ----------------------------------------------

def _location_to_obj(loc: Location) -> list:
    return [loc.filename, loc.line, loc.column]


def _location_from_obj(obj) -> Location:
    return Location(obj[0], int(obj[1]), int(obj[2]))


def report_to_obj(report: Report) -> dict:
    return {
        "checker": report.checker,
        "message": report.message,
        "location": _location_to_obj(report.location),
        "function": report.function,
        "severity": report.severity,
        "backtrace": list(report.backtrace),
    }


def report_from_obj(obj: dict) -> Report:
    return Report(
        checker=obj["checker"],
        message=obj["message"],
        location=_location_from_obj(obj["location"]),
        function=obj.get("function", ""),
        severity=obj.get("severity", "error"),
        backtrace=tuple(obj.get("backtrace", ())),
    )


def quarantine_to_obj(q: Quarantine) -> dict:
    return {
        "checker": q.checker, "function": q.function, "phase": q.phase,
        "error_type": q.error_type, "message": q.message,
    }


def quarantine_from_obj(obj: dict) -> Quarantine:
    return Quarantine(
        checker=obj["checker"], function=obj["function"], phase=obj["phase"],
        error_type=obj["error_type"], message=obj["message"],
    )


def result_to_payload(result) -> dict:
    """Serialise a :class:`repro.checkers.base.CheckerResult` to JSON-able data."""
    return {
        "schema": SCHEMA_VERSION,
        "checker": result.checker,
        "reports": [report_to_obj(r) for r in result.reports],
        "applied": result.applied,
        "annotations": [_location_to_obj(l) for l in result.annotations],
        "extra": dict(result.extra),
        "quarantines": [quarantine_to_obj(q) for q in result.quarantines],
        "degraded": bool(result.degraded),
        "degradation_notes": list(result.degradation_notes),
        "provenance": provenance_to_obj(result.provenance),
        "suppressed": [[report_to_obj(r), why]
                       for r, why in getattr(result, "suppressed", [])],
    }


def result_from_payload(payload: dict):
    from ..checkers.base import CheckerResult

    result = CheckerResult(checker=payload["checker"])
    result.reports = [report_from_obj(o) for o in payload["reports"]]
    result.applied = payload["applied"]
    result.annotations = [_location_from_obj(o) for o in payload["annotations"]]
    result.extra = dict(payload["extra"])
    result.quarantines = [quarantine_from_obj(o) for o in payload["quarantines"]]
    result.degraded = payload["degraded"]
    result.degradation_notes = list(payload["degradation_notes"])
    result.provenance = provenance_from_obj(payload.get("provenance", []))
    result.suppressed = [(report_from_obj(o), why)
                         for o, why in payload.get("suppressed", [])]
    return result


def sink_to_payload(sink: ReportSink) -> dict:
    """Serialise a metal run's :class:`ReportSink` (quarantines and
    degradation notes survive the worker round-trip)."""
    return {
        "schema": SCHEMA_VERSION,
        "reports": [report_to_obj(r) for r in sink.reports],
        "quarantines": [quarantine_to_obj(q) for q in sink.quarantines],
        "degraded": bool(sink.degraded),
        "degradation_notes": list(sink.degradation_notes),
        "provenance": provenance_to_obj(sink.provenance),
        "suppressed": [[report_to_obj(r), why]
                       for r, why in getattr(sink, "suppressed", [])],
    }


def sink_from_payload(payload: dict) -> ReportSink:
    sink = ReportSink()
    for obj in payload["reports"]:
        sink.add(report_from_obj(obj))
    for obj in payload["quarantines"]:
        sink.add_quarantine(quarantine_from_obj(obj))
    # add_quarantine sets degraded; restore the recorded flag exactly.
    sink.degraded = payload["degraded"]
    sink.degradation_notes = list(payload["degradation_notes"])
    prov = provenance_from_obj(payload.get("provenance", []))
    for obj, why in payload.get("suppressed", []):
        report = report_from_obj(obj)
        key = (report.checker, report.message, report.location)
        sink._suppressed_seen.add(key)
        sink.suppressed.append((report, why))
    sink.provenance = prov
    return sink


def payload_cacheable(payload: dict) -> bool:
    """Only complete results are content-pure; partial ones depend on
    the run's budget/crash luck and must not be replayed."""
    return not payload.get("degraded") and not payload.get("quarantines")


def work_item_key(*, checker_fp: str, units: list[tuple[str, str]],
                  spec_fp: str = "", engine_fp: Optional[str] = None,
                  config_fp: str = "") -> str:
    """Content-hash key for one (checker, unit-set) work item.

    ``units`` is a list of ``(filename, content-hash)`` pairs; global
    checkers pass every file of the run, unit-parallel checkers pass
    exactly one.  The run journal keys its records the same way, so a
    journal entry — like a cache entry — is automatically invalidated
    by editing a file, changing a checker, or upgrading the engine.
    ``config_fp`` folds in analysis configuration that changes results
    (``feasibility=on|off``, ``frontend=strict|tolerant``, and the
    payload ``SCHEMA_VERSION``), so runs with different settings — in
    particular a ``--frontend`` switch — never share entries.
    """
    engine = engine_fp if engine_fp is not None else engine_fingerprint()
    chunks = [engine.encode(), checker_fp.encode(), spec_fp.encode(),
              config_fp.encode()]
    for filename, digest in units:
        chunks.append(filename.encode())
        chunks.append(digest.encode())
    return _sha256(*chunks)


# -- in-memory function summaries (the summary engine's third leg) -----------

# The engine fingerprints each function once per store lookup, and a
# corpus pass runs one lookup per checker — six identical sha256 walks
# without a memo.  AST nodes are unhashable by design, so the memo is
# stashed on the node itself (the same idiom feasibility uses for
# ``cfg._feasibility``).  This is safe *after* annotation because
# nothing else mutates an analyzed AST; in-place mutators must call
# :func:`invalidate_fingerprint` (sema runs before any fingerprint can
# exist — Programs annotate at load — and the transform pass
# invalidates explicitly).
_FINGERPRINT_ATTR = "_mc_fingerprint"
#: Set by :func:`invalidate_fingerprint`: the node was mutated in place,
#: so a *source-derived* fingerprint no longer describes it.  Only the
#: AST-walk fingerprint may be memoized from then on.
_FINGERPRINT_DIRTY_ATTR = "_mc_fingerprint_dirty"


def invalidate_fingerprint(function) -> None:
    """Drop ``function``'s memoized fingerprint after an in-place AST
    mutation (see :class:`repro.mc.transform.RedundantWaitEliminator`)."""
    try:
        delattr(function, _FINGERPRINT_ATTR)
    except AttributeError:
        pass
    try:
        setattr(function, _FINGERPRINT_DIRTY_ATTR, True)
    except (AttributeError, TypeError):
        pass


def seed_fingerprints(unit, filename: str, text: str, *,
                      context: str = "") -> None:
    """Stash source-derived fingerprints on every function of a parsed
    unit, replacing the per-function AST walk with one hash of the unit.

    A function's analyzed form is fully determined by the unit's source
    text, its filename (part of report locations), the sema context
    (``context`` — the prelude text, which folds in typedefs and struct
    layouts the same way ``ctype`` payloads did), and the function's
    name and position inside the unit.  Any edit anywhere in the unit
    therefore invalidates every summary of the unit — coarser than the
    AST-walk fingerprint, never stale.

    Functions flagged by :func:`invalidate_fingerprint` (mutated in
    place after parsing, e.g. by the transform pass) are skipped: their
    source text no longer describes them, so they keep using the
    AST-walk fingerprint.  Programs sharing memoized unit ASTs re-seed
    the same value, which is idempotent.
    """
    unit_fp = _sha256(filename.encode(), text.encode(), context.encode())
    for function in unit.functions():
        if getattr(function, _FINGERPRINT_DIRTY_ATTR, False):
            continue
        if getattr(function, _FINGERPRINT_ATTR, None) is not None:
            continue
        loc = function.location
        fp = hashlib.sha256(
            f"{unit_fp}\x00{function.name}\x00{loc.line}\x00{loc.column}"
            .encode()).hexdigest()
        try:
            setattr(function, _FINGERPRINT_ATTR, fp)
        except (AttributeError, TypeError):
            pass


#: The node payload attributes the fingerprint covers.
_PAYLOAD_NAMES = ("name", "op", "value", "text", "arrow",
                  "specifiers", "pointer_depth")

#: node class -> the subset of ``_PAYLOAD_NAMES`` the class can carry
#: (dataclass fields or properties).  Looked up per class instead of
#: probing all seven names on every node.
_PAYLOAD_ATTRS: dict = {}


def _payload_attrs(cls) -> tuple:
    attrs = _PAYLOAD_ATTRS.get(cls)
    if attrs is None:
        fields_ = getattr(cls, "__dataclass_fields__", {})
        attrs = tuple(a for a in _PAYLOAD_NAMES
                      if a in fields_ or hasattr(cls, a))
        _PAYLOAD_ATTRS[cls] = attrs
    return attrs


def function_fingerprint(function) -> str:
    """Content hash of one function's *analyzed* form.

    Covers everything the engine's behaviour over the function can
    depend on: the node kinds and their structural order (pre-order
    walk), identifier/operator/literal/member payloads, declaration type
    spellings, resolved semantic types (``ctype`` — these fold in
    whole-unit context like typedefs and struct layouts, so an edit
    elsewhere in the file that retypes an expression changes the
    fingerprint even when the function's own text did not), and absolute
    source locations including the filename — report locations and
    provenance lines are part of a summary, so replay must be
    position-exact by construction, never rebased.

    Memoized on the node object itself; mutate-in-place callers
    invalidate via :func:`invalidate_fingerprint`.
    """
    cached = getattr(function, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    # Hot: one full-AST pass per function per process.  The payload is
    # accumulated as one list and hashed in a single update — per-node
    # hashlib calls and f-strings are what made the naive version slow.
    parts = [function.location.filename]
    append = parts.append
    for node in function.walk():
        cls = type(node)
        loc = node.location
        append(f"|{cls.__name__}:{loc.line}:{loc.column}")
        for attr in _payload_attrs(cls):
            value = getattr(node, attr, None)
            if value is not None and not hasattr(value, "walk"):
                append(f";{attr}={value!r}")
        ctype = getattr(node, "ctype", None)
        if ctype is not None:
            append(f";t={ctype!r}")
    fp = hashlib.sha256("\x00".join(parts).encode()).hexdigest()
    try:
        setattr(function, _FINGERPRINT_ATTR, fp)
    except (AttributeError, TypeError):  # slotted stand-in (tests)
        pass
    return fp


@dataclass(frozen=True)
class FunctionSummary:
    """One completed (machine, function) analysis: entry state to exit
    states, plus everything the walk emitted.  Shaped like the slice of
    a :class:`ReportSink` one ``run_machine`` call produces, so
    :func:`repro.mc.summary.merge_into` can replay it verbatim."""

    entry_state: str
    exit_states: tuple
    reports: tuple
    suppressed: tuple
    #: Per-report provenance trails for exactly the keys above.
    provenance: dict = field(default_factory=dict)
    # A stored summary is always from a clean, unbudgeted run.
    quarantines: tuple = ()
    degraded: bool = False
    degradation_notes: tuple = ()


class FunctionSummaryStore:
    """In-process store of :class:`FunctionSummary` records.

    Keyed on the machine *object* (weakly — machines built per checker
    run die with it) times :func:`function_fingerprint` times the
    analysis configuration.  Object identity, not a source fingerprint,
    scopes a machine's entries: Python-API machines close over protocol
    spec tables, so two textually identical machines can behave
    differently — identity is the only safe equivalence.  Entries are
    LRU-bounded per machine; a hit replays reports, suppressions, and
    provenance byte-identically (same content hash, same engine
    semantics version, same filename and absolute positions).
    """

    def __init__(self, capacity: int = 4096):
        self._by_machine: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary())
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def key(self, cfg, *, entry_state: str, feasibility: bool) -> tuple:
        from .summary import ENGINE_SUMMARY_VERSION
        return (function_fingerprint(cfg.function), entry_state,
                bool(feasibility), ENGINE_SUMMARY_VERSION)

    def get(self, sm, key: tuple) -> Optional[FunctionSummary]:
        try:
            entries = self._by_machine.get(sm)
        except TypeError:
            return None
        if entries is None:
            self.misses += 1
            return None
        summary = entries.get(key)
        if summary is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return summary

    def put(self, sm, key: tuple, summary: FunctionSummary) -> None:
        try:
            entries = self._by_machine.get(sm)
            if entries is None:
                entries = self._by_machine[sm] = OrderedDict()
        except TypeError:
            return  # an un-weakref-able machine is simply not cached
        entries[key] = summary
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._by_machine = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0


_FUNCTION_SUMMARIES = FunctionSummaryStore()


def function_summaries() -> FunctionSummaryStore:
    """The process-wide function-summary store."""
    return _FUNCTION_SUMMARIES


def clear_function_summaries() -> None:
    """Tests and benchmarks: drop every cached function summary."""
    _FUNCTION_SUMMARIES.clear()


class AnalysisMemo:
    """A small bounded LRU memo for pure interprocedural summaries.

    :func:`repro.mc.interproc.bottom_up` callers use one to skip
    re-summarizing callees whose inputs have not changed (the lanes
    checker keys on flowgraph content plus callee summaries).  Hits and
    misses feed the ``engine.summary_hits``/``engine.summary_misses``
    counters alongside the function-summary store's.
    """

    def __init__(self, capacity: int = 4096):
        self._entries: OrderedDict = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    _MISSING = object()

    def get(self, key):
        value = self._entries.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


# -- the on-disk store -------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting for one run, shown in the CLI summary line."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed on disk but would not parse (truncated by a
    #: crash or power loss mid-write on a non-atomic filesystem, bit
    #: rot, manual tampering).  Each one is also a miss — the item is
    #: recomputed — and the bad file is deleted so it cannot keep
    #: tripping every future run.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def line(self) -> str:
        line = f"cache: {self.hits} hit(s), {self.misses} miss(es)"
        if self.corrupt:
            line += f", {self.corrupt} corrupt"
        return line


def default_cache_dir() -> Path:
    """``$MC_CHECK_CACHE_DIR``, else ``~/.cache/mc-check``."""
    env = os.environ.get("MC_CHECK_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "mc-check"


class ResultCache:
    """Content-addressed store of serialised work-item results.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fanout keeps
    directories small at fleet scale.  Writes are atomic (temp file +
    rename) so concurrent runs sharing a cache directory can only ever
    observe whole entries.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.stats = CacheStats()

    def key_for(self, *, checker_fp: str, units: list[tuple[str, str]],
                spec_fp: str = "", engine_fp: Optional[str] = None,
                config_fp: str = "") -> str:
        """Cache key for one (checker, unit-set) work item
        (see :func:`work_item_key`)."""
        return work_item_key(checker_fp=checker_fp, units=units,
                             spec_fp=spec_fp, engine_fp=engine_fp,
                             config_fp=config_fp)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
        except ValueError:
            # The entry exists but won't parse — a half-written file from
            # a crash on a non-atomic filesystem, or plain corruption.
            # Treat it as a miss, and delete it so it cannot keep biting.
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        if not payload_cacheable(payload):
            return
        if "obs" in payload:
            # Timings and counters are run observations, not content —
            # storing them would make cache entries non-reproducible.
            payload = {k: v for k, v in payload.items() if k != "obs"}
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a read-only or full cache never fails the run
        self.stats.stores += 1
